//! The deployment workflow: train at "design time", persist the model to
//! disk, reload it on the "device", and run a workload defined in a plain
//! CSV file — the artifacts a real integration would ship.
//!
//! ```text
//! cargo run --example deploy_workflow
//! ```

use top_il::prelude::*;
use workloads::replay;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Design time: train and persist --------------------------------
    println!("training ...");
    let scenarios = Scenario::standard_set(12, 7);
    let model = IlTrainer::new(TrainSettings::default()).train(&scenarios, 0);
    let model_path = std::env::temp_dir().join("topil-deployed-model.txt");
    model.save(&model_path)?;
    println!(
        "saved model to {} ({} bytes)",
        model_path.display(),
        std::fs::metadata(&model_path)?.len()
    );

    // ---- A workload shipped as CSV --------------------------------------
    let csv = "at_s,benchmark,qos_kind,qos_value,instructions\n\
               0,bodytrack,max_big,0.35,20000000000\n\
               2,adi,max_big,0.3,20000000000\n\
               5,canneal,max_little,0.8,4000000000\n\
               8,swaptions,max_big,0.45,20000000000\n\
               12,seidel-2d,max_big,0.3,20000000000\n";
    let workload = replay::from_csv(csv)?;
    println!("loaded workload with {} arrivals:", workload.len());
    print!("{}", replay::to_csv(&workload));

    // ---- Run time: reload and govern ------------------------------------
    let deployed = IlModel::load(&model_path)?;
    assert_eq!(deployed, model, "persistence must be lossless");
    std::fs::remove_file(&model_path).ok();

    let sim = SimConfig {
        max_duration: SimDuration::from_secs(600),
        ..SimConfig::default()
    };
    let mut governor = TopIlGovernor::new(deployed);
    let report = Simulator::new(sim).run(&workload, &mut governor);

    println!(
        "\n{}: avg {} peak {}, {} violations of {} apps, {} migrations",
        report.policy,
        report.metrics.avg_temperature(),
        report.metrics.peak_temperature(),
        report.metrics.qos_violations(),
        report.metrics.outcomes().len(),
        report.metrics.migrations(),
    );
    println!("\nper-application outcomes:");
    println!(
        "{:<14} {:>12} {:>12} {:>9} {:>8}",
        "app", "mean IPS", "target", "energy", "ok"
    );
    for outcome in report.metrics.outcomes() {
        println!(
            "{:<14} {:>12} {:>12} {:>9} {:>8}",
            outcome.benchmark,
            format!("{}", outcome.mean_ips),
            format!("{}", outcome.qos_target.ips()),
            format!("{}", outcome.energy),
            if outcome.violated_qos() {
                "VIOLATED"
            } else {
                "met"
            },
        );
    }
    Ok(())
}

//! Quickstart: train a TOP-IL model from oracle demonstrations and let it
//! manage a mixed workload, comparing against the stock Android governor.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use top_il::prelude::*;

fn main() {
    // ---- Design time -----------------------------------------------------
    // Collect oracle demonstrations for random scenarios (AoI + background
    // combinations) and train the imitation-learning model. The paper uses
    // 100 scenarios; a couple of dozen suffice for a demo.
    println!("collecting oracle demonstrations and training the IL model ...");
    let scenarios = Scenario::standard_set(16, 42);
    let model = IlTrainer::new(TrainSettings::default()).train(&scenarios, 0);
    println!(
        "trained: {:?} topology, {} parameters\n",
        model.mlp().layer_sizes(),
        model.mlp().num_params()
    );

    // ---- Run time --------------------------------------------------------
    // A mixed workload: 10 random applications with Poisson arrivals and
    // random QoS targets (an open system).
    let workload_config = MixedWorkloadConfig {
        num_apps: 10,
        mean_interarrival: SimDuration::from_secs(10),
        total_instructions: Some(6_000_000_000),
        ..MixedWorkloadConfig::default()
    };
    let workload = WorkloadGenerator::mixed(&workload_config, &mut StdRng::seed_from_u64(7));

    let sim = SimConfig {
        cooling: Cooling::fan(),
        max_duration: SimDuration::from_secs(600),
        ..SimConfig::default()
    };

    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>11}",
        "policy", "avg temp", "peak temp", "violations", "migrations"
    );
    let print_run = |report: &RunReport| {
        println!(
            "{:<16} {:>10} {:>10} {:>9}/{:<2} {:>11}",
            report.policy,
            format!("{}", report.metrics.avg_temperature()),
            format!("{}", report.metrics.peak_temperature()),
            report.metrics.qos_violations(),
            report.metrics.outcomes().len(),
            report.metrics.migrations(),
        );
    };

    let mut topil = TopIlGovernor::new(model);
    print_run(&Simulator::new(sim).run(&workload, &mut topil));

    let mut ondemand = LinuxGovernor::gts_ondemand();
    print_run(&Simulator::new(sim).run(&workload, &mut ondemand));

    let mut powersave = LinuxGovernor::gts_powersave();
    print_run(&Simulator::new(sim).run(&workload, &mut powersave));

    println!(
        "\nTOP-IL governor stats: {} DVFS invocations, {} migration epochs, {} migrations",
        topil.stats().dvfs_invocations,
        topil.stats().migration_invocations,
        topil.stats().migrations_executed,
    );
}

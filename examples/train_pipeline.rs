//! The full design-time pipeline, step by step: oracle trace collection,
//! training-data extraction with soft labels, NAS over the topology grid,
//! final training, NPU compilation, and isolated model evaluation.
//!
//! ```text
//! cargo run --example train_pipeline
//! ```

use nn::Matrix;
use npu::{HiaiClient, NpuDevice};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use top_il::prelude::*;
use topil::eval::evaluate_model;
use topil::oracle::{extract_cases, ExtractionConfig};
use topil::training::IlTrainer;

fn main() {
    // 1. Scenarios: combinations of AoI and background applications.
    let scenarios = Scenario::standard_set(20, 1234);
    println!(
        "step 1: {} scenarios (AoIs from the 7-benchmark training set)",
        scenarios.len()
    );

    // 2. Trace collection over the reduced V/f grid (fan cooling).
    let collector = TraceCollector::new();
    let traces: Vec<_> = scenarios.iter().map(|s| collector.collect(s)).collect();
    let points: usize = traces
        .iter()
        .map(|t| t.free_cores().len() * t.little_freqs.len() * t.big_freqs.len())
        .sum();
    println!("step 2: collected {points} trace points");

    // 3. Training-data extraction: sweep QoS targets and background V/f
    //    requirements, label with Eq. 4.
    let config = ExtractionConfig::default();
    let cases: Vec<_> = traces
        .iter()
        .flat_map(|t| extract_cases(t, &config))
        .collect();
    let examples: usize = cases.iter().map(|c| c.sources.len()).sum();
    println!(
        "step 3: {} labeled cases -> {examples} training examples",
        cases.len()
    );

    // 4. NAS over depth x width (a reduced grid for the example).
    let settings = TrainSettings::default();
    let trainer = IlTrainer::new(settings.clone());
    let (dataset, _) = IlTrainer::build_dataset(&cases);
    let nas = nn::nas::grid_search(
        topil::FEATURE_COUNT,
        8,
        &[2, 4],
        &[32, 64],
        &dataset,
        &settings.nn,
        &[0],
    );
    for p in &nas.points {
        println!(
            "step 4: topology {}x{:<3} -> val loss {:.4}",
            p.hidden_layers, p.width, p.val_loss
        );
    }
    let best = nas.best();
    println!(
        "step 4: best topology {}x{}",
        best.hidden_layers, best.width
    );

    // 5. Final training (three seeds, like the paper).
    let models: Vec<IlModel> = (0..3)
        .map(|seed| trainer.train_from_cases(&cases, seed))
        .collect();
    println!("step 5: trained {} models", models.len());

    // 6. NPU compilation and a sanity batch inference.
    let mut client = HiaiClient::load(NpuDevice::kirin970(), models[0].mlp());
    let batch = Matrix::from_rows(vec![vec![0.0; topil::FEATURE_COUNT]; 4]);
    let job = client.submit(&batch, SimTime::ZERO);
    let done = client.wait(job);
    println!(
        "step 6: compiled to {} int8 weight bytes; batch-4 inference in {} (host CPU {})",
        client.model().weight_bytes(),
        done.latency,
        done.host_cpu_time,
    );

    // 7. Isolated evaluation on unseen-AoI oracle cases.
    let mut rng = StdRng::seed_from_u64(99);
    let unseen = Benchmark::unseen_set();
    let test_cases: Vec<_> = (0..5)
        .flat_map(|_| {
            let mut s = Scenario::random(&mut rng);
            s.aoi = unseen[rng.random_range(0..unseen.len())];
            extract_cases(&collector.collect(&s), &config)
        })
        .collect();
    for (i, model) in models.iter().enumerate() {
        let result = evaluate_model(model, &test_cases);
        println!(
            "step 7: seed {i}: within 1 °C in {:.0} % of {} decisions, mean excess {:.2} K",
            result.within_1c * 100.0,
            result.decisions,
            result.mean_excess,
        );
    }
}

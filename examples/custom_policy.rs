//! Writing a custom resource-management policy against the platform API.
//!
//! The simulator accepts anything implementing [`Policy`], so the stack
//! doubles as a sandbox for new governors. This example implements a naive
//! "coolest-core" policy (migrate the hottest application's neighbour
//! away... no model, no oracle) and shows how far behind TOP-IL it lands.
//!
//! ```text
//! cargo run --example custom_policy
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use top_il::prelude::*;

/// A hand-written heuristic: every 500 ms, migrate the application with
/// the worst QoS margin to the cluster that should serve it better, and
/// drive both clusters with a simple proportional V/f rule.
struct HeuristicGovernor;

impl Policy for HeuristicGovernor {
    fn name(&self) -> &str {
        "heuristic"
    }

    fn on_tick(&mut self, platform: &mut Platform) {
        let now = platform.now();
        // Proportional DVFS every 50 ms: raise on any violation, lower
        // when everyone has slack.
        if now.is_multiple_of(SimDuration::from_millis(50)) {
            for cluster in Cluster::ALL {
                let snapshots = platform.snapshots();
                let apps: Vec<_> = snapshots
                    .iter()
                    .filter(|s| s.core.cluster() == cluster)
                    .collect();
                let level = platform.cluster_level(cluster);
                if apps.is_empty() {
                    platform.set_cluster_level(cluster, 0);
                } else if apps
                    .iter()
                    .any(|s| s.qos_target.is_violated_by(s.qos_current))
                {
                    platform.set_cluster_level(cluster, level + 1);
                } else if apps
                    .iter()
                    .all(|s| s.qos_current.value() > 1.3 * s.qos_target.ips().value())
                {
                    platform.set_cluster_level(cluster, level.saturating_sub(1));
                }
            }
        }
        // Migration every 500 ms: move the tightest application to a free
        // core on the other cluster if its own cluster looks saturated.
        if now.is_multiple_of(SimDuration::from_millis(500)) {
            let snapshots = platform.snapshots();
            let Some(worst) = snapshots.iter().min_by(|a, b| {
                let ma = a.qos_current.value() - a.qos_target.ips().value();
                let mb = b.qos_current.value() - b.qos_target.ips().value();
                ma.partial_cmp(&mb).expect("finite")
            }) else {
                return;
            };
            if worst.qos_target.is_violated_by(worst.qos_current) {
                let other = worst.core.cluster().other();
                if let Some(free) = platform
                    .free_cores()
                    .into_iter()
                    .find(|c| c.cluster() == other)
                {
                    platform.migrate(worst.id, free);
                }
            }
        }
    }
}

fn main() {
    println!("training TOP-IL for comparison ...");
    let scenarios = Scenario::standard_set(16, 5);
    let model = IlTrainer::new(TrainSettings::default()).train(&scenarios, 0);

    let workload_config = MixedWorkloadConfig {
        num_apps: 12,
        mean_interarrival: SimDuration::from_secs(8),
        total_instructions: Some(20_000_000_000),
        ..MixedWorkloadConfig::default()
    };
    let workload = WorkloadGenerator::mixed(&workload_config, &mut StdRng::seed_from_u64(11));
    let sim = SimConfig {
        max_duration: SimDuration::from_secs(900),
        ..SimConfig::default()
    };

    println!(
        "\n{:<12} {:>10} {:>12} {:>11}",
        "policy", "avg temp", "violations", "migrations"
    );
    for report in [
        Simulator::new(sim).run(&workload, &mut TopIlGovernor::new(model)),
        Simulator::new(sim).run(&workload, &mut HeuristicGovernor),
        Simulator::new(sim).run(&workload, &mut LinuxGovernor::gts_ondemand()),
    ] {
        println!(
            "{:<12} {:>10} {:>9}/{:<2} {:>11}",
            report.policy,
            format!("{}", report.metrics.avg_temperature()),
            report.metrics.qos_violations(),
            report.metrics.outcomes().len(),
            report.metrics.migrations(),
        );
    }
    println!("\nThe heuristic reacts to violations after they happen; the IL model");
    println!("anticipates them from the oracle's demonstrations.");
}

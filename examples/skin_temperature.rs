//! Skin-temperature scenario: the paper's introduction motivates thermal
//! management with mobile user experience — elevated on-chip temperature
//! raises the device's skin temperature. This example runs a bursty
//! interactive-style workload under all four techniques, both with active
//! and passive cooling, and reports the thermal and QoS outcomes.
//!
//! ```text
//! cargo run --example skin_temperature
//! ```

use top_il::prelude::*;

fn main() {
    println!("training the IL model (fan-cooled oracle traces) ...");
    let scenarios = Scenario::standard_set(16, 3);
    let model = IlTrainer::new(TrainSettings::default()).train(&scenarios, 0);
    println!("pre-training the RL baseline ...\n");
    let qtable = TopRlGovernor::pretrain(0, SimDuration::from_secs(900));

    // A burst of interactive work: several applications arriving close
    // together with moderate QoS targets, like a phone coming out of idle.
    let burst: Vec<workloads::ArrivalSpec> = [
        (0u64, Benchmark::Bodytrack, 0.35),
        (1, Benchmark::Ferret, 0.30),
        (2, Benchmark::Blackscholes, 0.40),
        (3, Benchmark::JacobiTwoD, 0.25),
        (10, Benchmark::Fluidanimate, 0.35),
        (12, Benchmark::Swaptions, 0.45),
    ]
    .into_iter()
    .map(|(at, benchmark, q)| workloads::ArrivalSpec {
        at: SimTime::from_secs(at),
        benchmark,
        qos: QosSpec::FractionOfMaxBig(q),
        total_instructions: Some(25_000_000_000),
    })
    .collect();
    let workload = Workload::new(burst);

    for cooling in [Cooling::fan(), Cooling::passive()] {
        println!("--- cooling: {} ---", cooling.name());
        println!(
            "{:<16} {:>10} {:>10} {:>12} {:>10}",
            "policy", "avg temp", "peak temp", "violations", "throttled"
        );
        let sim = SimConfig {
            cooling,
            max_duration: SimDuration::from_secs(600),
            ..SimConfig::default()
        };
        let runs: Vec<RunReport> = vec![
            Simulator::new(sim).run(&workload, &mut TopIlGovernor::new(model.clone())),
            Simulator::new(sim).run(
                &workload,
                &mut TopRlGovernor::with_qtable(qtable.clone(), 1),
            ),
            Simulator::new(sim).run(&workload, &mut LinuxGovernor::gts_ondemand()),
            Simulator::new(sim).run(&workload, &mut LinuxGovernor::gts_powersave()),
        ];
        for report in &runs {
            println!(
                "{:<16} {:>10} {:>10} {:>9}/{:<2} {:>9.1}s",
                report.policy,
                format!("{}", report.metrics.avg_temperature()),
                format!("{}", report.metrics.peak_temperature()),
                report.metrics.qos_violations(),
                report.metrics.outcomes().len(),
                report.metrics.throttled_time().as_secs_f64(),
            );
        }
        println!();
    }
    println!("Note how the IL policy keeps the peak temperature (and hence the");
    println!("skin temperature) down at near-zero QoS violations, with either");
    println!("cooling setup — the model was trained with fan traces only.");
}

//! Shared infrastructure of the trace test suites: the canonical traced
//! runs, golden-fixture I/O with `BLESS=1` regeneration, and the RNG
//! fingerprint that gates fixtures blessed under a different `StdRng`
//! implementation (the offline build substitutes a stub stream).

#![allow(dead_code)]

use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use top_il::prelude::*;
use top_il::trace::Fnv64;
use top_il::workloads::ArrivalSpec;

/// Fingerprint of the ambient `StdRng` stream. Golden fixtures for
/// RNG-sensitive governors record this value; a fixture blessed under a
/// different stream (e.g. the offline stub) is skipped, not failed.
pub fn rng_fingerprint() -> String {
    let mut rng = StdRng::seed_from_u64(0x51D);
    let mut hasher = Fnv64::new();
    for _ in 0..8 {
        hasher.write_u64(rng.next_u64());
    }
    format!("{:016x}", hasher.finish())
}

/// Fingerprint sentinel for runs that draw no random numbers at all.
pub const FINGERPRINT_ANY: &str = "any";

/// The fixed, RNG-free workload every golden run uses: three staggered
/// applications whose optimal mappings differ (adi wants big, seidel-2d
/// wants LITTLE).
pub fn golden_workload() -> Workload {
    Workload::new(vec![
        ArrivalSpec {
            at: SimTime::ZERO,
            benchmark: Benchmark::Adi,
            qos: QosSpec::FractionOfMaxBig(0.3),
            total_instructions: Some(6_000_000_000),
        },
        ArrivalSpec {
            at: SimTime::from_millis(500),
            benchmark: Benchmark::SeidelTwoD,
            qos: QosSpec::FractionOfMaxBig(0.25),
            total_instructions: Some(5_000_000_000),
        },
        ArrivalSpec {
            at: SimTime::from_secs(1),
            benchmark: Benchmark::Syr2k,
            qos: QosSpec::FractionOfMaxBig(0.3),
            total_instructions: Some(6_000_000_000),
        },
    ])
}

/// The shared simulation configuration of every golden run: fixed 10 s,
/// full-granularity tracing, pristine hardware.
pub fn golden_sim() -> SimConfig {
    SimConfig {
        max_duration: SimDuration::from_secs(10),
        stop_when_idle: false,
        trace: TraceConfig::full(),
        ..SimConfig::default()
    }
}

/// A quickly trained IL model (same budget as the determinism suite).
pub fn quick_model(seed: u64) -> IlModel {
    let scenarios = Scenario::standard_set(6, 9);
    let mut settings = TrainSettings::default();
    settings.nn.max_epochs = 30;
    IlTrainer::new(settings).train(&scenarios, seed)
}

/// One parsed golden fixture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fixture {
    /// Policy name as reported by the run.
    pub policy: String,
    /// Expected trace hash (16 hex digits).
    pub hash: String,
    /// Expected number of accepted events.
    pub events: u64,
    /// RNG fingerprint the fixture was blessed under, or `any`.
    pub fingerprint: String,
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn parse_fixture(name: &str, contents: &str) -> Fixture {
    let mut policy = None;
    let mut hash = None;
    let mut events = None;
    let mut fingerprint = None;
    for line in contents.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .unwrap_or_else(|| panic!("malformed fixture line in {name}: {line:?}"));
        match key {
            "policy" => policy = Some(value.to_string()),
            "hash" => hash = Some(value.to_string()),
            "events" => events = Some(value.parse().expect("events must be a number")),
            "fingerprint" => fingerprint = Some(value.to_string()),
            other => panic!("unknown fixture key in {name}: {other:?}"),
        }
    }
    Fixture {
        policy: policy.unwrap_or_else(|| panic!("fixture {name} misses `policy`")),
        hash: hash.unwrap_or_else(|| panic!("fixture {name} misses `hash`")),
        events: events.unwrap_or_else(|| panic!("fixture {name} misses `events`")),
        fingerprint: fingerprint.unwrap_or_else(|| panic!("fixture {name} misses `fingerprint`")),
    }
}

fn render_fixture(fixture: &Fixture) -> String {
    format!(
        "# Golden trace fixture — regenerate with: BLESS=1 cargo test --test golden_traces\n\
         policy={}\nhash={}\nevents={}\nfingerprint={}\n",
        fixture.policy, fixture.hash, fixture.events, fixture.fingerprint
    )
}

/// Runs `run` and compares its trace against `tests/golden/<name>.golden`.
///
/// * `BLESS=1` rewrites the fixture from the current run instead.
/// * `rng_sensitive` marks runs whose trace depends on the `StdRng`
///   stream (model training, ε-greedy exploration); their fixtures are
///   skipped under a different stream rather than failed.
/// * On a mismatch the run is repeated: if the rerun diverges too, the
///   failure is in-process nondeterminism and the report pinpoints the
///   first diverging epoch; otherwise the behavior drifted from the
///   fixture and the message says how to re-bless.
pub fn check_golden(name: &str, rng_sensitive: bool, run: impl Fn() -> RunReport) {
    let path = golden_dir().join(format!("{name}.golden"));
    let report = run();
    let log = report.events.as_ref().expect("golden runs enable tracing");
    let fingerprint = if rng_sensitive {
        rng_fingerprint()
    } else {
        FINGERPRINT_ANY.to_string()
    };

    if std::env::var("BLESS").is_ok_and(|v| v == "1") {
        let fixture = Fixture {
            policy: report.policy.clone(),
            hash: log.hash.to_string(),
            events: log.emitted,
            fingerprint,
        };
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, render_fixture(&fixture)).expect("write fixture");
        eprintln!("blessed {}", path.display());
        return;
    }

    let contents = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate it with \
             `BLESS=1 cargo test --test golden_traces`",
            path.display()
        )
    });
    let fixture = parse_fixture(name, &contents);
    if fixture.fingerprint != FINGERPRINT_ANY && fixture.fingerprint != fingerprint {
        eprintln!(
            "skipping golden trace {name}: fixture blessed under StdRng fingerprint \
             {}, current stream is {fingerprint}",
            fixture.fingerprint
        );
        return;
    }

    let got_hash = log.hash.to_string();
    if fixture.hash == got_hash && fixture.events == log.emitted {
        return;
    }

    // Mismatch: a rerun separates nondeterminism from behavior drift.
    let rerun = run();
    let rerun_log = rerun.events.as_ref().expect("golden runs enable tracing");
    if rerun_log.hash != log.hash {
        let diff = top_il::trace::TraceDiff::new(log, rerun_log);
        panic!(
            "golden trace {name} is nondeterministic: two identical runs diverged.\n{}",
            diff.report()
        );
    }
    panic!(
        "golden trace mismatch for {name} ({}):\n  fixture: hash {} ({} events)\n  \
         current: hash {got_hash} ({} events)\nIf the behavior change is intentional, \
         re-bless with `BLESS=1 cargo test --test golden_traces`.",
        report.policy, fixture.hash, fixture.events, log.emitted
    );
}

//! Generalization tests — the paper's robustness claims: the fan-trained
//! model works without a fan, on unseen applications, and across random
//! initializations.

use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::SeedableRng;
use top_il::prelude::*;

fn models() -> &'static Vec<IlModel> {
    static MODELS: OnceLock<Vec<IlModel>> = OnceLock::new();
    MODELS.get_or_init(|| {
        let scenarios = Scenario::standard_set(12, 55);
        let mut settings = TrainSettings::default();
        settings.nn.max_epochs = 60;
        settings.nn.patience = 12;
        let trainer = IlTrainer::new(settings);
        let cases = trainer.collect_cases(&scenarios);
        (0..3)
            .map(|seed| trainer.train_from_cases(&cases, seed))
            .collect()
    })
}

fn unseen_workload(seed: u64) -> Workload {
    let config = MixedWorkloadConfig {
        num_apps: 8,
        mean_interarrival: SimDuration::from_secs(6),
        benchmarks: Benchmark::unseen_set().to_vec(),
        total_instructions: Some(12_000_000_000),
        ..MixedWorkloadConfig::default()
    };
    WorkloadGenerator::mixed(&config, &mut StdRng::seed_from_u64(seed))
}

/// The model was trained exclusively with fan-cooled oracle traces; it
/// must still beat GTS/ondemand without the fan.
#[test]
fn fan_trained_model_works_without_fan() {
    let workload = unseen_workload(21);
    let sim = SimConfig {
        cooling: Cooling::passive(),
        max_duration: SimDuration::from_secs(900),
        ..SimConfig::default()
    };
    let il = Simulator::new(sim).run(&workload, &mut TopIlGovernor::new(models()[0].clone()));
    let od = Simulator::new(sim).run(&workload, &mut LinuxGovernor::gts_ondemand());
    assert!(
        il.metrics.avg_temperature().value() < od.metrics.avg_temperature().value() - 1.0,
        "no-fan: IL {} vs ondemand {}",
        il.metrics.avg_temperature(),
        od.metrics.avg_temperature()
    );
    assert!(il.metrics.qos_violations() <= 1);
}

/// The workload consists only of benchmarks never seen during training.
#[test]
fn unseen_applications_are_managed_well() {
    let workload = unseen_workload(22);
    let sim = SimConfig {
        max_duration: SimDuration::from_secs(900),
        ..SimConfig::default()
    };
    let report = Simulator::new(sim).run(&workload, &mut TopIlGovernor::new(models()[0].clone()));
    assert_eq!(report.metrics.outcomes().len(), 8);
    assert!(
        report.metrics.qos_violations() <= 1,
        "unseen apps: {} violations",
        report.metrics.qos_violations()
    );
}

/// Three models trained from different random initializations must agree
/// in outcome quality (the paper's seed-robustness protocol).
#[test]
fn different_seeds_agree_in_outcome_quality() {
    let workload = unseen_workload(23);
    let sim = SimConfig {
        max_duration: SimDuration::from_secs(900),
        ..SimConfig::default()
    };
    let temps: Vec<f64> = models()
        .iter()
        .map(|m| {
            Simulator::new(sim)
                .run(&workload, &mut TopIlGovernor::new(m.clone()))
                .metrics
                .avg_temperature()
                .value()
        })
        .collect();
    let mean = temps.iter().sum::<f64>() / temps.len() as f64;
    for t in &temps {
        assert!((t - mean).abs() < 1.0, "seed variance too high: {temps:?}");
    }
}

/// Switching the cooling mid-run: the governor keeps QoS intact while the
/// temperature level shifts.
#[test]
fn cooling_switch_mid_run_is_handled() {
    let sim = SimConfig {
        cooling: Cooling::fan(),
        max_duration: SimDuration::from_secs(300),
        stop_when_idle: false,
        ..SimConfig::default()
    };
    // Drive the platform manually to switch cooling at half time.
    let mut platform = Platform::new(top_il::platform::PlatformConfig {
        cooling: Cooling::fan(),
        ..Default::default()
    });
    let spec = workloads::ArrivalSpec {
        at: SimTime::ZERO,
        benchmark: Benchmark::Syr2k,
        qos: QosSpec::FractionOfMaxBig(0.4),
        total_instructions: Some(u64::MAX),
    };
    let mut governor = TopIlGovernor::new(models()[0].clone());
    platform.admit(&spec, CoreId::new(5));
    let mut fan_temp = 0.0;
    for tick in 0..150_000u64 {
        governor.on_tick(&mut platform);
        platform.tick();
        if tick == 75_000 {
            fan_temp = platform.sensor().value();
            platform.set_cooling(Cooling::passive());
        }
    }
    let nofan_temp = platform.sensor().value();
    assert!(
        nofan_temp > fan_temp + 2.0,
        "passive cooling must run hotter"
    );
    let report = platform.into_report();
    assert_eq!(
        report.qos_violations(),
        0,
        "QoS survives the cooling switch"
    );
    let _ = sim;
}

//! Deployment-artifact integration tests: model persistence and workload
//! replay through the public API.

use top_il::prelude::*;
use workloads::replay;

fn quick_model(seed: u64) -> IlModel {
    let scenarios = Scenario::standard_set(8, 13);
    let mut settings = TrainSettings::default();
    settings.nn.max_epochs = 40;
    settings.nn.patience = 10;
    IlTrainer::new(settings).train(&scenarios, seed)
}

#[test]
fn persisted_model_governs_identically() {
    let model = quick_model(0);
    let path = std::env::temp_dir().join("topil-integration-model.txt");
    model.save(&path).unwrap();
    let reloaded = IlModel::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let workload = Workload::single(Benchmark::Bodytrack, QosSpec::FractionOfMaxBig(0.35));
    let sim = SimConfig {
        max_duration: SimDuration::from_secs(120),
        ..SimConfig::default()
    };
    let original = Simulator::new(sim).run(&workload, &mut TopIlGovernor::new(model));
    let deployed = Simulator::new(sim).run(&workload, &mut TopIlGovernor::new(reloaded));
    assert_eq!(
        original.metrics, deployed.metrics,
        "a reloaded model must reproduce the run bit-for-bit"
    );
}

#[test]
fn csv_workload_replay_reproduces_generated_run() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let config = MixedWorkloadConfig {
        num_apps: 6,
        mean_interarrival: SimDuration::from_secs(4),
        total_instructions: Some(6_000_000_000),
        ..MixedWorkloadConfig::default()
    };
    let generated = WorkloadGenerator::mixed(&config, &mut StdRng::seed_from_u64(5));
    let replayed = replay::from_csv(&replay::to_csv(&generated)).unwrap();

    let model = quick_model(1);
    let sim = SimConfig {
        max_duration: SimDuration::from_secs(400),
        ..SimConfig::default()
    };
    let a = Simulator::new(sim).run(&generated, &mut TopIlGovernor::new(model.clone()));
    let b = Simulator::new(sim).run(&replayed, &mut TopIlGovernor::new(model));
    // Arrival times round-trip at nanosecond precision through the CSV, so
    // the outcomes must be essentially identical.
    assert_eq!(a.metrics.outcomes().len(), b.metrics.outcomes().len());
    assert_eq!(a.metrics.qos_violations(), b.metrics.qos_violations());
    assert!(
        (a.metrics.avg_temperature().value() - b.metrics.avg_temperature().value()).abs() < 0.05
    );
}

#[test]
fn malformed_artifacts_are_rejected_cleanly() {
    // A corrupt model file.
    let path = std::env::temp_dir().join("topil-integration-corrupt.txt");
    std::fs::write(&path, "definitely not a model").unwrap();
    assert!(IlModel::load(&path).is_err());
    std::fs::remove_file(&path).ok();
    // A corrupt workload CSV.
    assert!(replay::from_csv("garbage").is_err());
}

//! Cross-crate integration tests: the full design-time + run-time pipeline
//! through the public umbrella API.

use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::SeedableRng;
use top_il::prelude::*;

/// One shared quick model for all tests in this file.
fn model() -> &'static IlModel {
    static MODEL: OnceLock<IlModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let scenarios = Scenario::standard_set(12, 77);
        let mut settings = TrainSettings::default();
        settings.nn.max_epochs = 90;
        settings.nn.patience = 15;
        IlTrainer::new(settings).train(&scenarios, 3)
    })
}

fn mixed_workload(seed: u64) -> Workload {
    let config = MixedWorkloadConfig {
        num_apps: 10,
        mean_interarrival: SimDuration::from_secs(6),
        total_instructions: Some(15_000_000_000),
        ..MixedWorkloadConfig::default()
    };
    WorkloadGenerator::mixed(&config, &mut StdRng::seed_from_u64(seed))
}

fn sim() -> SimConfig {
    SimConfig {
        max_duration: SimDuration::from_secs(900),
        ..SimConfig::default()
    }
}

#[test]
fn topil_completes_mixed_workload_with_few_violations() {
    let workload = mixed_workload(1);
    let mut governor = TopIlGovernor::new(model().clone());
    let report = Simulator::new(sim()).run(&workload, &mut governor);
    assert_eq!(report.metrics.outcomes().len(), 10);
    assert!(
        report.metrics.qos_violations() <= 1,
        "TOP-IL should violate at most one of ten targets, got {}",
        report.metrics.qos_violations()
    );
    // All applications actually completed within the time cap.
    assert!(report
        .metrics
        .outcomes()
        .iter()
        .all(|o| o.finished_at.is_some()));
}

#[test]
fn topil_is_cooler_than_ondemand_at_comparable_qos() {
    let workload = mixed_workload(2);
    let il = Simulator::new(sim()).run(&workload, &mut TopIlGovernor::new(model().clone()));
    let od = Simulator::new(sim()).run(&workload, &mut LinuxGovernor::gts_ondemand());
    assert!(
        il.metrics.avg_temperature().value() < od.metrics.avg_temperature().value() - 1.0,
        "IL {} should undercut ondemand {}",
        il.metrics.avg_temperature(),
        od.metrics.avg_temperature()
    );
    assert!(il.metrics.qos_violations() <= od.metrics.qos_violations() + 1);
}

#[test]
fn powersave_trades_qos_for_temperature() {
    let workload = mixed_workload(3);
    let il = Simulator::new(sim()).run(&workload, &mut TopIlGovernor::new(model().clone()));
    let ps = Simulator::new(sim()).run(&workload, &mut LinuxGovernor::gts_powersave());
    assert!(ps.metrics.qos_violations() > il.metrics.qos_violations());
    assert!(ps.metrics.avg_temperature().value() <= il.metrics.avg_temperature().value() + 0.5);
}

#[test]
fn governor_overhead_is_negligible() {
    let workload = mixed_workload(4);
    let mut governor = TopIlGovernor::new(model().clone());
    let report = Simulator::new(sim()).run(&workload, &mut governor);
    let overhead =
        report.metrics.governor_time().as_secs_f64() / report.metrics.elapsed().as_secs_f64();
    // The paper reports a total run-time overhead of <= 1.7 %.
    assert!(overhead < 0.02, "governor overhead {overhead:.4} too high");
}

#[test]
fn energy_and_cpu_time_are_accounted() {
    let workload = mixed_workload(5);
    let report = Simulator::new(sim()).run(&workload, &mut TopIlGovernor::new(model().clone()));
    assert!(report.metrics.energy().value() > 0.0);
    let total_busy: f64 = Cluster::ALL
        .iter()
        .flat_map(|&c| report.metrics.cpu_time_distribution(c))
        .map(|d| d.as_secs_f64())
        .sum();
    assert!(
        total_busy > 10.0,
        "ten applications must accumulate busy time"
    );
}

#[test]
fn rl_baseline_runs_the_same_workload() {
    let workload = mixed_workload(6);
    let table = TopRlGovernor::pretrain(1, SimDuration::from_secs(300));
    let mut governor = TopRlGovernor::with_qtable(table, 0);
    let report = Simulator::new(sim()).run(&workload, &mut governor);
    assert_eq!(report.metrics.outcomes().len(), 10);
    assert_eq!(report.policy, "TOP-RL");
}

//! Golden-trace regression suite: every governor runs the same fixed
//! workload under full-granularity tracing, and the resulting trace hash
//! must match the committed fixture in `tests/golden/`.
//!
//! Regenerate fixtures after an intentional behavior change with:
//!
//! ```text
//! BLESS=1 cargo test --test golden_traces
//! ```
//!
//! Fixtures of RNG-sensitive governors (TOP-IL trains a network, TOP-RL
//! explores ε-greedily) additionally record the `StdRng` stream
//! fingerprint they were blessed under and are skipped — with a notice —
//! under a different stream, so they stay portable across the offline
//! stub RNG and the real dependency.

mod common;

use common::{check_golden, golden_sim, golden_workload, quick_model};
use top_il::prelude::*;
use top_il::topil::oracle_governor::OracleGovernor;

#[test]
fn golden_trace_topil() {
    check_golden("topil", true, || {
        let mut governor = TopIlGovernor::new(quick_model(0));
        Simulator::new(golden_sim()).run(&golden_workload(), &mut governor)
    });
}

#[test]
fn golden_trace_toprl() {
    check_golden("toprl", true, || {
        let mut governor = TopRlGovernor::new(7);
        Simulator::new(golden_sim()).run(&golden_workload(), &mut governor)
    });
}

#[test]
fn golden_trace_gts_ondemand() {
    check_golden("gts_ondemand", false, || {
        let mut governor = LinuxGovernor::gts_ondemand();
        Simulator::new(golden_sim()).run(&golden_workload(), &mut governor)
    });
}

#[test]
fn golden_trace_gts_powersave() {
    check_golden("gts_powersave", false, || {
        let mut governor = LinuxGovernor::gts_powersave();
        Simulator::new(golden_sim()).run(&golden_workload(), &mut governor)
    });
}

#[test]
fn golden_trace_oracle() {
    check_golden("oracle", false, || {
        let mut governor = OracleGovernor::new(Cooling::fan());
        Simulator::new(golden_sim()).run(&golden_workload(), &mut governor)
    });
}

//! Golden-trace regression suite: every governor runs the same fixed
//! workload under full-granularity tracing, and the resulting trace hash
//! must match the committed fixture in `tests/golden/`.
//!
//! Regenerate fixtures after an intentional behavior change with:
//!
//! ```text
//! BLESS=1 cargo test --test golden_traces
//! ```
//!
//! Fixtures of RNG-sensitive governors (TOP-IL trains a network, TOP-RL
//! explores ε-greedily) additionally record the `StdRng` stream
//! fingerprint they were blessed under and are skipped — with a notice —
//! under a different stream, so they stay portable across the offline
//! stub RNG and the real dependency.

mod common;

use common::{check_golden, golden_sim, golden_workload, quick_model};
use top_il::prelude::*;
use top_il::topil::oracle_governor::OracleGovernor;

#[test]
fn golden_trace_topil() {
    check_golden("topil", true, || {
        let mut governor = TopIlGovernor::new(quick_model(0));
        Simulator::new(golden_sim()).run(&golden_workload(), &mut governor)
    });
}

#[test]
fn golden_trace_toprl() {
    check_golden("toprl", true, || {
        let mut governor = TopRlGovernor::new(7);
        Simulator::new(golden_sim()).run(&golden_workload(), &mut governor)
    });
}

#[test]
fn golden_trace_gts_ondemand() {
    check_golden("gts_ondemand", false, || {
        let mut governor = LinuxGovernor::gts_ondemand();
        Simulator::new(golden_sim()).run(&golden_workload(), &mut governor)
    });
}

#[test]
fn golden_trace_gts_powersave() {
    check_golden("gts_powersave", false, || {
        let mut governor = LinuxGovernor::gts_powersave();
        Simulator::new(golden_sim()).run(&golden_workload(), &mut governor)
    });
}

#[test]
fn golden_trace_oracle() {
    check_golden("oracle", false, || {
        let mut governor = OracleGovernor::new(Cooling::fan());
        Simulator::new(golden_sim()).run(&golden_workload(), &mut governor)
    });
}

/// Kernel differential: the TOP-IL fixture run repeated with the scalar
/// reference kernel forced must produce the identical FNV-64 trace
/// stream — every decision, logit and migration bit-for-bit. A kernel
/// change that drifts outputs fails here, with a first-divergence diff,
/// instead of surfacing as an opaque hash mismatch in the ci.sh edge
/// gate.
#[test]
fn golden_trace_topil_is_kernel_invariant() {
    let model = quick_model(0);
    let run = |kernel: top_il::npu::KernelMode| {
        let mut governor = TopIlGovernor::new(model.clone()).with_kernel(kernel);
        Simulator::new(golden_sim()).run(&golden_workload(), &mut governor)
    };
    let vectorized = run(top_il::npu::KernelMode::Vectorized);
    let scalar = run(top_il::npu::KernelMode::Scalar);
    let vec_log = vectorized.events.as_ref().expect("tracing enabled");
    let sca_log = scalar.events.as_ref().expect("tracing enabled");
    assert_eq!(vec_log.emitted, sca_log.emitted, "event counts diverged");
    if vec_log.hash != sca_log.hash {
        let diff = top_il::trace::TraceDiff::new(vec_log, sca_log);
        panic!(
            "scalar and vectorized kernels produced different traces:\n{}",
            diff.report()
        );
    }
}

//! Cross-crate crash-recovery proof: storage faults from the `faults`
//! injector are thrown at real checkpoint stores, and every layer that
//! snapshots (raw store, IL training, sweep supervisor) must detect the
//! damage at load time, fall back to the previous good snapshot, and
//! continue to the same result an undamaged run produces — without a panic.

use checkpoint::CheckpointStore;
use faults::{FaultInjector, FaultPlan, StorageFault};
use topil::oracle::Scenario;
use topil::training::IlTrainer;
use topil::CkptConfig;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ckpt-recovery-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Injector-drawn torn writes and bit flips against a raw store: every
/// fault is detected at load and recovery lands on the previous snapshot.
#[test]
fn injected_storage_faults_never_corrupt_recovery() {
    let mut plan = FaultPlan::none(0x0570_7A6E);
    plan.storage.torn_write_rate = 0.5;
    plan.storage.bit_flip_rate = 0.5;
    let mut injector = FaultInjector::new(plan);

    for round in 0..8u64 {
        let dir = tmp_dir(&format!("inject-{round}"));
        let mut store = CheckpointStore::open(&dir, "state", 4).unwrap();
        let good = vec![round as u8; 64];
        let newer = vec![round as u8 ^ 0xFF; 64];
        store.save(&good, 7).unwrap();
        store.save(&newer, 7).unwrap();

        let newest = store.snapshot_paths().unwrap().pop().unwrap();
        let len = std::fs::metadata(&newest).unwrap().len() as usize;
        let fault = injector.storage_write(len);
        let faulted = fault != StorageFault::None;
        fault.apply_to_file(&newest).unwrap();

        let mut store = CheckpointStore::open(&dir, "state", 4).unwrap();
        let recovery = store.load_latest().unwrap();
        if faulted {
            assert_eq!(recovery.skipped.len(), 1, "round {round}: fault undetected");
            let snapshot = recovery.snapshot.expect("previous snapshot survives");
            assert_eq!(snapshot.payload, good);
        } else {
            assert!(recovery.skipped.is_empty());
            assert_eq!(recovery.snapshot.unwrap().payload, newer);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(
        injector.stats().storage_torn_writes + injector.stats().storage_bit_flips > 0,
        "the plan must actually inject faults"
    );
}

/// A torn write on the newest IL-training snapshot: the resumed run falls
/// back one epoch and still converges to the uninterrupted run's model.
#[test]
fn torn_training_snapshot_falls_back_and_reconverges() {
    let settings = topil::training::TrainSettings {
        nn: nn::TrainConfig {
            max_epochs: 6,
            ..nn::TrainConfig::default()
        },
        hidden_layers: 1,
        width: 8,
        ..topil::training::TrainSettings::default()
    };
    let trainer = IlTrainer::new(settings);
    let cases = trainer.collect_cases(&Scenario::standard_set(2, 4));

    let ref_dir = tmp_dir("train-ref");
    let reference = trainer
        .train_checkpointed(&cases, 0, &ref_dir, &CkptConfig::default(), None, None)
        .unwrap();
    let reference_model = reference.model.expect("uninterrupted run completes");

    let dir = tmp_dir("train-torn");
    let first = trainer
        .train_checkpointed(&cases, 0, &dir, &CkptConfig::default(), Some(3), None)
        .unwrap();
    assert!(!first.completed);

    let store = CheckpointStore::open(&dir, topil::ckpt::IL_TRAIN_KIND, 3).unwrap();
    let newest = store.snapshot_paths().unwrap().pop().unwrap();
    let len = std::fs::metadata(&newest).unwrap().len() as usize;
    StorageFault::TornWrite { keep: len / 2 }
        .apply_to_file(&newest)
        .unwrap();

    let resumed = trainer
        .train_checkpointed(&cases, 0, &dir, &CkptConfig::default(), None, None)
        .unwrap();
    assert_eq!(resumed.corrupt_skipped, 1);
    assert!(resumed.resumed_from_seq.is_some());
    let resumed_model = resumed.model.expect("recovered run completes");
    assert_eq!(
        resumed_model.mlp().layer_sizes(),
        reference_model.mlp().layer_sizes()
    );
    for layer in 0..resumed_model.mlp().layer_sizes().len() - 1 {
        assert_eq!(
            resumed_model.mlp().weights(layer).as_slice(),
            reference_model.mlp().weights(layer).as_slice(),
            "layer {layer} weights diverged after torn-write recovery"
        );
    }
    // The quarantined file stays on disk for post-mortems.
    let quarantined = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "corrupt"))
        .count();
    assert_eq!(quarantined, 1);

    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// Flipping a bit in *every byte position* of the newest snapshot (header,
/// seq, payload, checksum) is always detected — the acceptance criterion
/// that no single-byte corruption can smuggle bad state into a resume.
#[test]
fn every_byte_position_of_a_snapshot_is_protected() {
    let dir = tmp_dir("exhaustive");
    let mut store = CheckpointStore::open(&dir, "state", 2).unwrap();
    store.save(b"previous good state", 7).unwrap();
    store.save(b"newest state", 7).unwrap();
    let newest = store.snapshot_paths().unwrap().pop().unwrap();
    let pristine = std::fs::read(&newest).unwrap();

    for offset in 0..pristine.len() {
        let mut damaged = pristine.clone();
        damaged[offset] ^= 0x01;
        std::fs::write(&newest, &damaged).unwrap();

        let mut store = CheckpointStore::open(&dir, "state", 2).unwrap();
        store.set_quarantine(false);
        let recovery = store.load_latest().unwrap();
        assert_eq!(
            recovery.skipped.len(),
            1,
            "bit flip at byte {offset} went undetected"
        );
        assert_eq!(
            recovery.snapshot.as_ref().unwrap().payload,
            b"previous good state",
            "recovery after damage at byte {offset}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

//! Bit-for-bit reproducibility of the full stack: identical seeds must
//! yield identical training artifacts and identical simulation outcomes.

use rand::rngs::StdRng;
use rand::SeedableRng;
use top_il::prelude::*;

fn quick_model(seed: u64) -> IlModel {
    let scenarios = Scenario::standard_set(6, 9);
    let mut settings = TrainSettings::default();
    settings.nn.max_epochs = 30;
    IlTrainer::new(settings).train(&scenarios, seed)
}

#[test]
fn training_is_bit_reproducible() {
    assert_eq!(quick_model(4), quick_model(4));
}

#[test]
fn simulation_is_bit_reproducible() {
    let model = quick_model(0);
    let config = MixedWorkloadConfig {
        num_apps: 6,
        mean_interarrival: SimDuration::from_secs(5),
        total_instructions: Some(8_000_000_000),
        ..MixedWorkloadConfig::default()
    };
    let workload = WorkloadGenerator::mixed(&config, &mut StdRng::seed_from_u64(2));
    let sim = SimConfig {
        max_duration: SimDuration::from_secs(300),
        ..SimConfig::default()
    };
    let a = Simulator::new(sim).run(&workload, &mut TopIlGovernor::new(model.clone()));
    let b = Simulator::new(sim).run(&workload, &mut TopIlGovernor::new(model));
    assert_eq!(a.metrics, b.metrics);
}

#[test]
fn rl_runs_are_seed_deterministic() {
    let workload = Workload::single(Benchmark::Adi, QosSpec::FractionOfMaxBig(0.3));
    let sim = SimConfig {
        max_duration: SimDuration::from_secs(60),
        stop_when_idle: false,
        ..SimConfig::default()
    };
    let run = |seed| {
        let mut governor = TopRlGovernor::new(seed);
        let report = Simulator::new(sim).run(&workload, &mut governor);
        (report.metrics, governor.qtable().clone())
    };
    let (m1, q1) = run(5);
    let (m2, q2) = run(5);
    assert_eq!(m1, m2);
    assert_eq!(q1, q2);
    let (m3, _) = run(6);
    assert_ne!(m1, m3, "different exploration seeds should diverge");
}

#[test]
fn workload_generation_is_seed_deterministic() {
    let config = MixedWorkloadConfig::default();
    let a = WorkloadGenerator::mixed(&config, &mut StdRng::seed_from_u64(10));
    let b = WorkloadGenerator::mixed(&config, &mut StdRng::seed_from_u64(10));
    assert_eq!(a, b);
}

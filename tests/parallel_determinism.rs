//! Cross-cutting bit-identity proof for the `par` execution engine.
//!
//! Every layer that accepts a [`par::Budget`] — checkpointed IL training,
//! the resumable robustness sweep and the fleet simulator — must produce
//! *byte-identical* artifacts at every thread count: same model weights,
//! same checkpoint snapshot bytes on disk, same CSV output, same per-point
//! trace hashes. The budgets include 7 (and odd item counts) on purpose:
//! remainder shards and partial final waves are where order bugs hide.

mod common;

use std::path::PathBuf;

use bench::sweep::{model_fingerprint, run_sweep, GridPoint, SweepConfig, SweepHooks, SWEEP_KIND};
use checkpoint::CheckpointStore;
use par::Budget;
use top_il::prelude::*;
use topil::ckpt::{CkptConfig, IL_TRAIN_KIND};
use topil::oracle::OracleCase;

/// The non-serial budgets every layer is checked against. 2 and 4 divide
/// typical shard counts; 7 does not divide anything in sight.
const BUDGETS: [usize; 3] = [2, 4, 7];

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("par-determinism-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Sorted `(file name, contents)` pairs of every checkpoint snapshot in
/// `dir` — the byte-level identity of a store.
fn snapshot_bytes(dir: &PathBuf, kind: &str) -> Vec<(String, Vec<u8>)> {
    let store = CheckpointStore::open(dir, kind, 16).expect("open store");
    let mut files: Vec<(String, Vec<u8>)> = store
        .snapshot_paths()
        .expect("list snapshots")
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let bytes = std::fs::read(&p).expect("read snapshot");
            (name, bytes)
        })
        .collect();
    files.sort();
    files
}

fn tiny_train_settings() -> TrainSettings {
    TrainSettings {
        nn: nn::TrainConfig {
            max_epochs: 9, // odd epoch count: the last batch is a remainder
            ..nn::TrainConfig::default()
        },
        hidden_layers: 1,
        width: 8,
        ..TrainSettings::default()
    }
}

fn training_cases() -> Vec<OracleCase> {
    // Odd scenario count so `collect_cases`' parallel map has a tail.
    IlTrainer::new(tiny_train_settings()).collect_cases(&Scenario::standard_set(3, 4))
}

#[test]
fn training_checkpoints_are_bit_identical_across_budgets() {
    let cases = training_cases();
    let trainer = IlTrainer::new(tiny_train_settings());

    let serial_dir = tmp_dir("train-serial");
    let config = CkptConfig {
        budget: Budget::serial(),
        ..CkptConfig::default()
    };
    let reference = trainer
        .train_checkpointed(&cases, 11, &serial_dir, &config, None, None)
        .unwrap();
    assert!(reference.completed);
    let reference_model = reference.model.expect("serial run completed");
    let reference_snapshots = snapshot_bytes(&serial_dir, IL_TRAIN_KIND);
    assert!(!reference_snapshots.is_empty());

    for threads in BUDGETS {
        let dir = tmp_dir(&format!("train-t{threads}"));
        let config = CkptConfig {
            budget: Budget::with_threads(threads),
            ..CkptConfig::default()
        };
        let outcome = trainer
            .train_checkpointed(&cases, 11, &dir, &config, None, None)
            .unwrap();
        let model = outcome.model.expect("parallel run completed");
        assert_eq!(
            model_fingerprint(&model),
            model_fingerprint(&reference_model),
            "threads={threads}: model weights diverged from serial"
        );
        assert_eq!(outcome.report, reference.report, "threads={threads}");
        assert_eq!(
            snapshot_bytes(&dir, IL_TRAIN_KIND),
            reference_snapshots,
            "threads={threads}: checkpoint snapshot bytes diverged"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&serial_dir).ok();
}

/// Three grid points: an odd count, so at 2 threads the last wave is a
/// remainder and at 4/7 threads the single wave is under-full.
fn sweep_grid_points() -> Vec<GridPoint> {
    vec![
        GridPoint {
            npu_failure_rate: 0.0,
            sensor_dropout_rate: 0.0,
            ladder: true,
        },
        GridPoint {
            npu_failure_rate: 0.5,
            sensor_dropout_rate: 0.0,
            ladder: true,
        },
        GridPoint {
            npu_failure_rate: 0.0,
            sensor_dropout_rate: 0.3,
            ladder: false,
        },
    ]
}

#[test]
fn sweep_manifest_and_csv_are_bit_identical_across_budgets() {
    let model = common::quick_model(3);

    let serial_dir = tmp_dir("sweep-serial");
    let config = SweepConfig {
        grid: Some(sweep_grid_points()),
        budget: Budget::serial(),
        ..SweepConfig::default()
    };
    let reference = run_sweep(&model, &config, &serial_dir, &SweepHooks::default(), None).unwrap();
    assert!(reference.completed);
    let reference_csv = bench::sweep::sweep_csv(&reference.manifest);
    let reference_snapshots = snapshot_bytes(&serial_dir, SWEEP_KIND);

    for threads in BUDGETS {
        let dir = tmp_dir(&format!("sweep-t{threads}"));
        let config = SweepConfig {
            budget: Budget::with_threads(threads),
            ..config.clone()
        };
        let outcome = run_sweep(&model, &config, &dir, &SweepHooks::default(), None).unwrap();
        assert!(outcome.completed, "threads={threads}");
        // Manifest equality covers every per-point trace hash.
        assert_eq!(outcome.manifest, reference.manifest, "threads={threads}");
        assert_eq!(
            bench::sweep::sweep_csv(&outcome.manifest),
            reference_csv,
            "threads={threads}: sweep CSV bytes diverged"
        );
        assert_eq!(
            snapshot_bytes(&dir, SWEEP_KIND),
            reference_snapshots,
            "threads={threads}: manifest snapshot bytes diverged"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&serial_dir).ok();
}

#[test]
fn fleet_csv_is_bit_identical_across_budgets() {
    let model = common::quick_model(5);
    let config = bench::fleet::FleetConfig {
        boards: 5, // odd: chunked board stepping leaves a remainder
        epochs: 6,
        devices: 2,
        max_batch: 8,
        workers: 2,
        seed: 3,
        budget: Budget::serial(),
        ..bench::fleet::FleetConfig::default()
    };
    let reference = bench::fleet::run_with_model(&model, &config);
    assert_eq!(reference.mismatches, 0);
    let reference_csv = bench::csv::fleet_csv(&reference);

    for threads in BUDGETS {
        let config = bench::fleet::FleetConfig {
            budget: Budget::with_threads(threads),
            ..config
        };
        let report = bench::fleet::run_with_model(&model, &config);
        assert_eq!(
            bench::csv::fleet_csv(&report),
            reference_csv,
            "threads={threads}: fleet CSV bytes diverged"
        );
        // Everything except the budget carried in the config must match.
        assert_eq!(report.boards, reference.boards, "threads={threads}");
        assert_eq!(report.submitted, reference.submitted, "threads={threads}");
        assert_eq!(report.served, reference.served, "threads={threads}");
        assert_eq!(report.batches, reference.batches, "threads={threads}");
        assert_eq!(
            report.batch_histogram, reference.batch_histogram,
            "threads={threads}"
        );
        assert_eq!(report.mismatches, 0, "threads={threads}");
    }
}

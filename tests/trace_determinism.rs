//! Tracing must be an observer, not a participant: identical seeds and
//! configurations produce bit-identical trace hashes, and switching
//! tracing on or off changes nothing about the simulation itself — even
//! with fault injection active.

mod common;

use common::{golden_sim, golden_workload, quick_model};
use faults::FaultPlan;
use top_il::prelude::*;

/// A fault plan with every domain active (nonzero rates).
fn noisy_plan() -> FaultPlan {
    let mut plan = FaultPlan::none(11);
    plan.npu.failure_rate = 0.3;
    plan.npu.timeout_rate = 0.1;
    plan.sensor.dropout_rate = 0.05;
    plan.sensor.spike_rate = 0.02;
    plan.dvfs.reject_rate = 0.05;
    plan
}

#[test]
fn same_seed_same_trace_hash() {
    let run = || {
        let mut governor = LinuxGovernor::gts_ondemand();
        Simulator::new(golden_sim()).run(&golden_workload(), &mut governor)
    };
    let a = run().events.expect("tracing on");
    let b = run().events.expect("tracing on");
    assert_eq!(a.hash, b.hash, "identical runs must hash identically");
    assert_eq!(a.emitted, b.emitted);
}

#[test]
fn same_seed_same_trace_hash_under_faults() {
    let model = quick_model(0);
    let sim = SimConfig {
        fault_plan: Some(noisy_plan()),
        ..golden_sim()
    };
    let run = || {
        let mut governor = TopIlGovernor::new(model.clone()).with_fault_plan(noisy_plan());
        Simulator::new(sim).run(&golden_workload(), &mut governor)
    };
    let a = run().events.expect("tracing on");
    let b = run().events.expect("tracing on");
    assert_eq!(
        a.hash, b.hash,
        "fault streams are seeded: hashes must match"
    );
    assert!(
        a.events
            .iter()
            .any(|e| e.kind() == top_il::trace::EventKind::Fault),
        "the noisy plan must surface as Fault events"
    );
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let model = quick_model(0);
    let run = |trace: TraceConfig| {
        let sim = SimConfig {
            trace,
            ..golden_sim()
        };
        let mut governor = TopIlGovernor::new(model.clone());
        Simulator::new(sim).run(&golden_workload(), &mut governor)
    };
    let traced = run(TraceConfig::full());
    let untraced = run(TraceConfig::off());
    assert_eq!(
        traced.metrics, untraced.metrics,
        "enabling tracing must not change a single metric"
    );
    assert!(traced.events.is_some());
    assert!(untraced.events.is_none());
}

#[test]
fn tracing_does_not_perturb_faulty_runs() {
    // The stricter variant: with faults active, any accidental RNG draw
    // or timing shift on the tracing path would desynchronize the fault
    // schedule and change the metrics.
    let model = quick_model(1);
    let run = |trace: TraceConfig| {
        let sim = SimConfig {
            fault_plan: Some(noisy_plan()),
            trace,
            ..golden_sim()
        };
        let mut governor = TopIlGovernor::new(model.clone()).with_fault_plan(noisy_plan());
        Simulator::new(sim).run(&golden_workload(), &mut governor)
    };
    let traced = run(TraceConfig::full());
    let decisions = run(TraceConfig::decisions());
    let untraced = run(TraceConfig::off());
    assert_eq!(traced.metrics, untraced.metrics);
    assert_eq!(decisions.metrics, untraced.metrics);
    // Decisions granularity is a strict filter of Full: fewer events,
    // never more.
    let full_log = traced.events.expect("full tracing on");
    let dec_log = decisions.events.expect("decision tracing on");
    assert!(dec_log.emitted < full_log.emitted);
    assert!(!dec_log.events.iter().any(|e| matches!(
        e.kind(),
        top_il::trace::EventKind::QosSample | top_il::trace::EventKind::ThermalSample
    )));
}

#[test]
fn different_seeds_diverge_and_diff_pinpoints_the_epoch() {
    // Not a determinism requirement per se, but the tooling contract: two
    // different RL exploration seeds must produce different traces, and
    // `TraceDiff` reports the first diverging epoch.
    let run = |seed| {
        let mut governor = TopRlGovernor::new(seed);
        Simulator::new(golden_sim()).run(&golden_workload(), &mut governor)
    };
    let a = run(1).events.expect("tracing on");
    let b = run(2).events.expect("tracing on");
    assert_ne!(a.hash, b.hash, "different exploration seeds must diverge");
    let diff = TraceDiff::new(&a, &b);
    assert!(!diff.identical());
    let divergence = diff.first_divergence().expect("streams differ");
    assert!(
        divergence.left.is_some() || divergence.right.is_some(),
        "divergence must carry at least one event"
    );
    assert!(diff.report().contains("diverge"));
}

//! Equivalence-proving harness for the `sim-core` event kernel: every
//! simulation that gained an event-driven driver is replayed under both
//! drivers with the same seed and must produce the same bytes.
//!
//! Three layers are covered:
//!
//! * **Governor runs** — each governor drives the golden workload
//!   through [`Simulator::run_with_driver`] twice; the FNV-64 trace
//!   hashes, the exported CSV bytes, and every report field must match.
//! * **Fleet runs** — `bench::fleet` under lockstep barriers vs. the
//!   event kernel: identical [`FleetReport`]s and `fleet_csv` bytes,
//!   plus the sparse-workload regression that the kernel executes
//!   *strictly fewer* board-epoch visits than `epochs x boards`.
//! * **Overload runs** — `bench::overload`'s retry storm on both
//!   drivers: identical reports and `overload_csv` bytes.
//!
//! These tests are the acceptance bar for the kernel: the lockstep
//! loops are the executable specification, and any divergence — event
//! ordering, RNG stream, epoch accounting — shows up as a byte diff.

mod common;

use bench::csv::{fleet_csv, overload_csv};
use bench::fleet::{self, FleetConfig};
use bench::overload::{self, OverloadConfig};
use common::{golden_sim, golden_workload, quick_model};
use top_il::prelude::*;
use top_il::topil::oracle_governor::OracleGovernor;

/// Runs the golden workload under both drivers with freshly-built
/// policies and asserts byte equality of everything observable.
fn assert_drivers_agree(mut lockstep_policy: Box<dyn Policy>, mut event_policy: Box<dyn Policy>) {
    let sim = Simulator::new(golden_sim());
    let workload = golden_workload();
    let lockstep = sim.run_with_driver(&workload, lockstep_policy.as_mut(), SimDriver::Lockstep);
    let event = sim.run_with_driver(&workload, event_policy.as_mut(), SimDriver::EventDriven);

    assert_eq!(lockstep.policy, event.policy);
    let (a, b) = (
        lockstep.events.as_ref().expect("golden runs trace"),
        event.events.as_ref().expect("golden runs trace"),
    );
    assert_eq!(a.hash, b.hash, "FNV-64 trace hashes diverged");
    assert_eq!(a.emitted, b.emitted, "event counts diverged");
    assert_eq!(a.csv(), b.csv(), "exported CSV bytes diverged");
    assert_eq!(a.jsonl(), b.jsonl(), "exported JSONL bytes diverged");
    assert_eq!(lockstep.trace, event.trace, "time-series samples diverged");
    assert_eq!(lockstep.metrics, event.metrics, "run metrics diverged");
    assert_eq!(lockstep.degradation, event.degradation);
}

#[test]
fn equivalence_topil() {
    let model = quick_model(0);
    assert_drivers_agree(
        Box::new(TopIlGovernor::new(model.clone())),
        Box::new(TopIlGovernor::new(model)),
    );
}

#[test]
fn equivalence_toprl() {
    assert_drivers_agree(
        Box::new(TopRlGovernor::new(7)),
        Box::new(TopRlGovernor::new(7)),
    );
}

#[test]
fn equivalence_gts_ondemand() {
    assert_drivers_agree(
        Box::new(LinuxGovernor::gts_ondemand()),
        Box::new(LinuxGovernor::gts_ondemand()),
    );
}

#[test]
fn equivalence_gts_powersave() {
    assert_drivers_agree(
        Box::new(LinuxGovernor::gts_powersave()),
        Box::new(LinuxGovernor::gts_powersave()),
    );
}

#[test]
fn equivalence_oracle() {
    assert_drivers_agree(
        Box::new(OracleGovernor::new(Cooling::fan())),
        Box::new(OracleGovernor::new(Cooling::fan())),
    );
}

#[test]
fn equivalence_fleet_reports_and_csv() {
    let model = fleet::fleet_model(0);
    let config = FleetConfig {
        boards: 6,
        epochs: 16,
        devices: 2,
        max_batch: 8,
        workers: 2,
        seed: 11,
        budget: par::Budget::serial(),
        ..FleetConfig::default()
    };
    let lockstep = fleet::run_with_model_driver(&model, &config, SimDriver::Lockstep);
    let event = fleet::run_with_model_driver(&model, &config, SimDriver::EventDriven);
    assert_eq!(lockstep, event, "fleet reports diverged across drivers");
    assert_eq!(
        fleet_csv(&lockstep),
        fleet_csv(&event),
        "fleet CSV bytes diverged across drivers"
    );
}

/// Sparse-workload regression: with far more barriers than work, the
/// event kernel must *skip* idle board-epochs — strictly fewer handler
/// visits than the lockstep `epochs x boards` grid — while reproducing
/// the lockstep report bit for bit.
#[test]
fn sparse_fleet_skips_idle_barriers() {
    let model = fleet::fleet_model(0);
    // 4 boards x 160 epochs = 80 s of barriers; each board's four apps
    // arrive within the first ~30 s and drain, leaving a long idle tail
    // during which no barrier should fire at all.
    let config = FleetConfig {
        boards: 4,
        epochs: 160,
        devices: 2,
        max_batch: 8,
        workers: 2,
        seed: 5,
        budget: par::Budget::serial(),
        ..FleetConfig::default()
    };
    let lockstep = fleet::run_with_model_driver(&model, &config, SimDriver::Lockstep);
    let (event, kernel) = fleet::run_event_with_stats(&model, &config);

    assert_eq!(lockstep, event, "sparse fleet reports diverged");
    assert_eq!(kernel.lockstep_visits, config.epochs * config.boards as u64);
    assert!(
        kernel.board_epoch_visits < kernel.lockstep_visits,
        "event driver must skip idle board-epochs: visited {} of {}",
        kernel.board_epoch_visits,
        kernel.lockstep_visits,
    );
    assert!(kernel.active_barriers < config.epochs);
    assert_eq!(kernel.handler_invocations, kernel.active_barriers);

    // The aggregates the paper cares about survive the skipping.
    assert_eq!(lockstep.dropped, 0);
    assert_eq!(lockstep.mismatches, 0);
    let (la, ea): (Vec<_>, Vec<_>) = (
        lockstep
            .boards
            .iter()
            .map(|b| (b.avg_temp_c, b.violations))
            .collect(),
        event
            .boards
            .iter()
            .map(|b| (b.avg_temp_c, b.violations))
            .collect(),
    );
    assert_eq!(la, ea, "thermal and QoS aggregates diverged");
}

#[test]
fn equivalence_overload_reports_and_csv() {
    let config = OverloadConfig {
        epochs: 5,
        ..OverloadConfig::default()
    };
    let lockstep = overload::run_with_driver(&config, SimDriver::Lockstep);
    let event = overload::run_with_driver(&config, SimDriver::EventDriven);
    assert_eq!(lockstep, event, "overload reports diverged across drivers");
    assert_eq!(
        overload_csv(&lockstep),
        overload_csv(&event),
        "overload CSV bytes diverged across drivers"
    );
}

//! Cross-governor trace invariants: for every policy in the stack, the
//! recorded event stream must be internally consistent (monotone time,
//! decisions before migrations) and must exactly reconstruct the
//! aggregates the run report publishes (energy, violation time,
//! migrations) — the property that makes traces trustworthy evidence.

mod common;

use common::{golden_sim, golden_workload, quick_model};
use top_il::prelude::*;
use top_il::topil::oracle_governor::OracleGovernor;
use top_il::trace::{EventKind, TraceEvent, TraceLog};

/// Runs every governor on the shared workload and returns `(name, report)`.
fn all_governor_reports() -> Vec<(&'static str, RunReport)> {
    let sim = Simulator::new(golden_sim());
    let workload = golden_workload();
    vec![
        (
            "TOP-IL",
            sim.run(&workload, &mut TopIlGovernor::new(quick_model(0))),
        ),
        ("TOP-RL", sim.run(&workload, &mut TopRlGovernor::new(3))),
        (
            "GTS/ondemand",
            sim.run(&workload, &mut LinuxGovernor::gts_ondemand()),
        ),
        (
            "GTS/powersave",
            sim.run(&workload, &mut LinuxGovernor::gts_powersave()),
        ),
        (
            "Oracle",
            sim.run(&workload, &mut OracleGovernor::new(Cooling::fan())),
        ),
    ]
}

fn log_of(report: &RunReport) -> &TraceLog {
    report
        .events
        .as_ref()
        .expect("tracing enabled in golden_sim")
}

#[test]
fn timestamps_are_monotone_for_every_governor() {
    for (name, report) in all_governor_reports() {
        let log = log_of(&report);
        assert_eq!(log.dropped, 0, "{name}: ring must not drop at this scale");
        let mut last = SimTime::ZERO;
        for event in &log.events {
            assert!(
                event.at() >= last,
                "{name}: event at {:?} before previous {:?}",
                event.at(),
                last
            );
            last = event.at();
        }
    }
}

#[test]
fn every_migration_is_preceded_by_a_decision_in_the_same_epoch() {
    for (name, report) in all_governor_reports() {
        let log = log_of(&report);
        let mut decisions_this_epoch = 0usize;
        let mut saw_epoch = false;
        for event in &log.events {
            match event {
                TraceEvent::EpochTick { .. } => {
                    decisions_this_epoch = 0;
                    saw_epoch = true;
                }
                TraceEvent::Decision { .. } => decisions_this_epoch += 1,
                TraceEvent::Migration { .. } => {
                    assert!(
                        decisions_this_epoch > 0,
                        "{name}: migration at {:?} without a preceding decision \
                         in its epoch",
                        event.at()
                    );
                }
                _ => {}
            }
        }
        assert!(saw_epoch, "{name}: the run must contain epoch ticks");
    }
}

#[test]
fn aggregates_are_reconstructible_from_the_trace() {
    for (name, report) in all_governor_reports() {
        let log = log_of(&report);
        assert_eq!(
            log.dropped, 0,
            "{name}: reconstruction needs the full stream"
        );

        // Migrations: one event per actually executed migration.
        let migration_events = log
            .events
            .iter()
            .filter(|e| e.kind() == EventKind::Migration)
            .count() as u64;
        assert_eq!(
            migration_events,
            report.metrics.migrations(),
            "{name}: migration events must match the metric"
        );

        // Completions: one AppCompleted per outcome, with matching totals.
        let completions: Vec<&TraceEvent> = log
            .events
            .iter()
            .filter(|e| e.kind() == EventKind::AppCompleted)
            .collect();
        assert_eq!(
            completions.len(),
            report.metrics.outcomes().len(),
            "{name}: one completion event per application outcome"
        );
        let traced_violation: f64 = completions
            .iter()
            .map(|e| match e {
                TraceEvent::AppCompleted { violation_time, .. } => violation_time.as_secs_f64(),
                _ => unreachable!("filtered above"),
            })
            .sum();
        let metric_violation: f64 = report
            .metrics
            .outcomes()
            .iter()
            .map(|o| o.violation_time.as_secs_f64())
            .sum();
        assert!(
            (traced_violation - metric_violation).abs() < 1e-12,
            "{name}: violation time {traced_violation} vs metric {metric_violation}"
        );

        // The RunEnd footer repeats the final aggregates verbatim.
        let end = log.events.last().expect("non-empty trace");
        match end {
            TraceEvent::RunEnd {
                energy,
                violation_time,
                migrations,
                ..
            } => {
                assert_eq!(*migrations, report.metrics.migrations(), "{name}");
                assert!(
                    (energy.value() - report.metrics.energy().value()).abs() < 1e-12,
                    "{name}: RunEnd energy {energy:?} vs {:?}",
                    report.metrics.energy()
                );
                assert!(
                    (violation_time.as_secs_f64() - metric_violation).abs() < 1e-12,
                    "{name}: RunEnd violation time mismatch"
                );
            }
            other => panic!("{name}: last event must be RunEnd, got {other:?}"),
        }

        // Admissions: every application entered the trace.
        let admissions = log
            .events
            .iter()
            .filter(|e| e.kind() == EventKind::AppAdmitted)
            .count();
        assert_eq!(
            admissions,
            report.metrics.outcomes().len(),
            "{name}: one admission per outcome"
        );
    }
}

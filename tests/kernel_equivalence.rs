//! Differential harness for the int8 inference kernels: the scalar
//! reference loop, the vectorized fused kernel, and the policy-output
//! cache must produce bit-identical results on every shape, weight,
//! scale, and adversarial rounding-boundary input — the same
//! executable-specification pattern that keeps the `sim-core` event
//! driver honest in `event_kernel_equivalence`.
//!
//! Bit equality here is load-bearing, not cosmetic: the golden-trace
//! fixtures, the fleet/edge CSV diff gates, and the chaos invariant
//! checker all hash policy outputs, so a kernel that is "close enough"
//! in floating point breaks every downstream gate. The kernels are
//! designed to make equality structural (i32 accumulation is associative
//! under any lane split; both paths share one IEEE-754 epilogue), and
//! this suite is the proof.

mod common;

use bench::csv::fleet_csv;
use bench::fleet::{self, FleetConfig};
use common::quick_model;
use nn::kernel::{self, KernelMode};
use nn::{Matrix, Mlp};
use npu::{InferScratch, NpuModel, PolicyCache};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic xorshift stream for adversarial input generation.
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// A value engineered to stress the quantizer: exact half-step
    /// rounding boundaries (`scale * (k - 127.5)`) interleaved with
    /// saturating magnitudes and plain values.
    fn adversarial(&mut self, scale: f32) -> f32 {
        let r = self.next();
        match r % 4 {
            0 => scale * ((r % 256) as f32 - 127.5),
            1 => scale * 127.0 * if r % 8 < 4 { 4.0 } else { -4.0 },
            2 => scale * ((r % 255) as f32 - 127.0),
            _ => ((r % 2_001) as f32 / 1_000.0 - 1.0) * scale * 64.0,
        }
    }
}

/// The fused layer agrees with itself across kernels on randomized
/// shapes — including every lane-tail class (`n_in % 16`) and
/// output-tile remainder (`n_out % 4`) — with rounding-boundary inputs
/// and power-of-two plus irregular scales.
#[test]
fn fused_layer_kernels_agree_on_random_shapes() {
    let mut s = Stream(0x0DDB_1A5E_5BAD_C0DE);
    for case in 0..200 {
        let rows = 1 + (s.next() % 5) as usize;
        let n_in = 1 + (s.next() % 70) as usize;
        let n_out = 1 + (s.next() % 70) as usize;
        let w_scale = [0.25f32, 0.031_25, 1.0, 0.007_874_016][(s.next() % 4) as usize];
        let act_scale = [0.5f32, 0.062_5, 0.011_718_75][(s.next() % 3) as usize];
        let relu = s.next().is_multiple_of(2);

        let input: Vec<f32> = (0..rows * n_in).map(|_| s.adversarial(act_scale)).collect();
        let w_q: Vec<i8> = (0..n_out * n_in)
            .map(|_| ((s.next() % 255) as i64 - 127) as i8)
            .collect();
        let bias: Vec<f32> = (0..n_out)
            .map(|_| (s.next() % 2_001) as f32 / 1_000.0 - 1.0)
            .collect();

        let run = |mode: KernelMode| {
            let mut q = Vec::new();
            let mut out = Vec::new();
            kernel::fused_layer(
                mode, &input, rows, n_in, &w_q, w_scale, n_out, &bias, relu, &mut q, &mut out,
            );
            (q, out)
        };
        let (q_s, out_s) = run(KernelMode::Scalar);
        let (q_v, out_v) = run(KernelMode::Vectorized);
        assert_eq!(q_s, q_v, "quantized codes diverged (case {case})");
        let bits_s: Vec<u32> = out_s.iter().map(|v| v.to_bits()).collect();
        let bits_v: Vec<u32> = out_v.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            bits_s, bits_v,
            "case {case}: rows={rows} n_in={n_in} n_out={n_out} relu={relu}"
        );
    }
}

/// Whole-model differential over randomized topologies: the reference
/// loop, the scalar fused pipeline, and the vectorized fused pipeline
/// agree bit-for-bit on every layer count, width (including odd tails),
/// and batch size.
#[test]
fn model_kernels_agree_on_random_topologies() {
    let mut s = Stream(0xFEED_FACE_CAFE_F00D);
    for case in 0..24 {
        let inputs = 1 + (s.next() % 40) as usize;
        let layers = 1 + (s.next() % 4) as usize;
        let hidden = 1 + (s.next() % 70) as usize;
        let outputs = 1 + (s.next() % 20) as usize;
        let rows = 1 + (s.next() % 6) as usize;
        let mlp = Mlp::with_topology(
            inputs,
            layers,
            hidden,
            outputs,
            &mut StdRng::seed_from_u64(s.next()),
        );
        let model = NpuModel::compile(&mlp);
        let batch = Matrix::from_rows(
            (0..rows)
                .map(|_| (0..inputs).map(|_| s.adversarial(0.031_25)).collect())
                .collect(),
        );
        let reference = model.infer_reference(&batch);
        let scalar = model.infer_with(&batch, KernelMode::Scalar);
        let vectorized = model.infer_with(&batch, KernelMode::Vectorized);
        let bits = |m: &Matrix| -> Vec<u32> { m.as_slice().iter().map(|v| v.to_bits()).collect() };
        assert_eq!(
            bits(&reference),
            bits(&scalar),
            "case {case}: scalar fused pipeline drifted from the reference loop"
        );
        assert_eq!(
            bits(&reference),
            bits(&vectorized),
            "case {case}: vectorized kernel drifted ({inputs}x{layers}x{hidden}x{outputs})"
        );
    }
}

/// The cached path replays bit-identical outputs through hits, misses,
/// FIFO evictions and re-insertions, on both kernels.
#[test]
fn cached_path_is_bit_identical_to_fresh_inference() {
    let mlp = Mlp::with_topology(21, 4, 64, 8, &mut StdRng::seed_from_u64(11));
    let model = NpuModel::compile(&mlp);
    for mode in [KernelMode::Scalar, KernelMode::Vectorized] {
        let mut cache = PolicyCache::new(3);
        let mut scratch = InferScratch::new();
        let mut q = Vec::new();
        let mut s = Stream(0xA11C_ED1D_EA75_0000 | mode as u64);
        for step in 0..60 {
            let which = (s.next() % 7) as usize;
            let rows = 1 + which % 3;
            let group = Matrix::from_rows(
                (0..rows)
                    .map(|r| {
                        (0..21)
                            .map(|c| ((which * 29 + r * 13 + c * 5) % 19) as f32 / 19.0 - 0.5)
                            .collect()
                    })
                    .collect(),
            );
            let scale = model.quantize_input(group.as_slice(), &mut q);
            let cached = match cache.probe(&q, scale, rows) {
                Some(out) => out.to_vec(),
                None => {
                    let out = model
                        .infer_prequant(&q, scale, rows, mode, &mut scratch)
                        .to_vec();
                    cache.insert(&q, scale, rows, &out);
                    out
                }
            };
            let fresh = model.infer_grouped(&group, &[rows]);
            let cached_bits: Vec<u32> = cached.iter().map(|v| v.to_bits()).collect();
            let fresh_bits: Vec<u32> = fresh.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(cached_bits, fresh_bits, "step {step} ({mode:?})");
        }
        let stats = cache.stats();
        assert!(stats.hits > 0, "stream must exercise cache hits");
        assert!(stats.evictions > 0, "stream must exercise eviction");
    }
}

/// End-to-end: a fleet run forced onto the scalar kernel produces the
/// exact CSV bytes of the vectorized default — and the policy cache on
/// or off changes counters only, never a single output byte outside the
/// cache rows.
#[test]
fn fleet_csv_is_kernel_and_cache_invariant() {
    let model = quick_model(0);
    let base = FleetConfig {
        boards: 4,
        epochs: 6,
        devices: 2,
        max_batch: 8,
        workers: 2,
        seed: 5,
        ..FleetConfig::default()
    };
    let run = |kernel: KernelMode, policy_cache: usize| {
        let config = FleetConfig {
            kernel,
            policy_cache,
            ..base
        };
        fleet_csv(&fleet::run_with_model(&model, &config))
    };
    let vectorized = run(KernelMode::Vectorized, base.policy_cache);
    let scalar = run(KernelMode::Scalar, base.policy_cache);
    assert_eq!(
        vectorized, scalar,
        "fleet CSV must not depend on the kernel"
    );
    let uncached = run(KernelMode::Vectorized, 0);
    let strip = |csv: &str| -> String {
        csv.lines()
            .filter(|l| !l.contains(",cache_hits,") && !l.contains(",cache_misses,"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip(&vectorized),
        strip(&uncached),
        "the cache may change hit counters only, never outputs"
    );
    assert!(
        vectorized.contains("summary,,cache_hits,"),
        "cached run must report its hit counter"
    );
}

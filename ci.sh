#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q -p trace
cargo test --workspace -q

#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# Fast tier by default; FULL=1 additionally runs the #[ignore]d soak
# tests (10k-task pool drains) via --include-ignored.
set -euo pipefail
cd "$(dirname "$0")"

# Per-gate wall-clock accounting: every gate runs between gate_begin and
# gate_end "name", and the summary at the bottom prints where CI time went.
gate_timing=""
gate_t0=0
gate_begin() { gate_t0=$(date +%s%N); }
gate_end() {
    local gate_ms=$(( ($(date +%s%N) - gate_t0) / 1000000 ))
    gate_timing="${gate_timing}$(printf '  %-28s %6d ms' "$1" "$gate_ms")"$'\n'
}

gate_begin
cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
gate_end "fmt + clippy"

gate_begin
cargo test -q -p trace
if [ "${FULL:-0}" = "1" ]; then
    cargo test --workspace -q -- --include-ignored
else
    cargo test --workspace -q
fi
gate_end "test suite"

# Crash-recovery gate: an interrupted sweep, resumed, must reproduce the
# uninterrupted run's CSV (incl. per-point trace hashes) byte-for-byte.
gate_begin
cargo build --release -q -p bench --bin experiments
ckpt_tmp="$(mktemp -d)"
trap 'rm -rf "$ckpt_tmp"' EXIT
experiments=target/release/experiments
"$experiments" sweep --points 2 --state "$ckpt_tmp/ref-state" --out "$ckpt_tmp/ref" >/dev/null
set +e
TOPIL_SWEEP_CRASH_AFTER=1 "$experiments" sweep --points 2 \
    --state "$ckpt_tmp/state" --out "$ckpt_tmp/resumed" >/dev/null
status=$?
set -e
if [ "$status" -ne 130 ]; then
    echo "crash-recovery gate: expected exit 130 from interrupted sweep, got $status" >&2
    exit 1
fi
"$experiments" sweep --points 2 --state "$ckpt_tmp/state" --out "$ckpt_tmp/resumed" >/dev/null
diff "$ckpt_tmp/ref/sweep.csv" "$ckpt_tmp/resumed/sweep.csv"
gate_end "crash-recovery gate"
echo "crash-recovery gate passed"

# Fleet smoke + parallel-determinism gate: 16 boards x 200 epochs on the
# shared NPU service must drop zero requests, beat the serial baseline 3x,
# stay bit-exact — and produce byte-identical CSV whether the boards are
# stepped by one thread or four.
gate_begin
"$experiments" fleet --boards 16 --epochs 200 --threads 1 --out "$ckpt_tmp/fleet-a" >/dev/null 2>&1
"$experiments" fleet --boards 16 --epochs 200 --threads 4 --out "$ckpt_tmp/fleet-b" >/dev/null 2>&1
fleet_csv="$ckpt_tmp/fleet-a/fleet.csv"
grep -q '^summary,,dropped,0$' "$fleet_csv" || {
    echo "fleet gate: dropped requests" >&2; exit 1; }
grep -q '^summary,,mismatches,0$' "$fleet_csv" || {
    echo "fleet gate: batched replies diverged from dedicated inference" >&2; exit 1; }
awk -F, '$3 == "speedup_vs_serial" && $4 < 6.0 { exit 1 }' "$fleet_csv" || {
    echo "fleet gate: batched speedup below 6x" >&2; exit 1; }
diff "$fleet_csv" "$ckpt_tmp/fleet-b/fleet.csv" || {
    echo "fleet gate: CSV diverged between --threads 1 and --threads 4" >&2; exit 1; }
gate_end "fleet gate"
echo "fleet smoke + parallel-determinism gate passed"

# Kernel gate: the vectorized int8 kernel, the scalar reference, and the
# policy cache must be interchangeable byte-for-byte. Runs the
# differential suite (scalar vs vectorized vs cached over randomized
# shapes, scales, and rounding-boundary inputs), then forces a 1k-board
# fleet smoke onto the scalar kernel and onto a cache-disabled service
# and diffs the CSVs against the vectorized cached default.
gate_begin
cargo test -q -p nn kernel
cargo test -q -p npu cache
cargo test -q --test kernel_equivalence
kern_args="--boards 1000 --epochs 20 --threads 4"
# shellcheck disable=SC2086
"$experiments" fleet $kern_args --out "$ckpt_tmp/kern-vec" >/dev/null 2>&1
# shellcheck disable=SC2086
"$experiments" fleet $kern_args --kernel scalar \
    --out "$ckpt_tmp/kern-scalar" >/dev/null 2>&1
diff "$ckpt_tmp/kern-vec/fleet.csv" "$ckpt_tmp/kern-scalar/fleet.csv" || {
    echo "kernel gate: fleet CSV diverged between scalar and vectorized kernels" >&2; exit 1; }
# shellcheck disable=SC2086
"$experiments" fleet $kern_args --policy-cache 0 \
    --out "$ckpt_tmp/kern-nocache" >/dev/null 2>&1
awk -F, '$3 == "cache_hits" && $4 == 0 { exit 1 }' "$ckpt_tmp/kern-vec/fleet.csv" || {
    echo "kernel gate: the default fleet run never hit the policy cache" >&2; exit 1; }
grep -v '^summary,,cache_' "$ckpt_tmp/kern-vec/fleet.csv" > "$ckpt_tmp/kern-vec.stripped"
grep -v '^summary,,cache_' "$ckpt_tmp/kern-nocache/fleet.csv" > "$ckpt_tmp/kern-nocache.stripped"
diff "$ckpt_tmp/kern-vec.stripped" "$ckpt_tmp/kern-nocache.stripped" || {
    echo "kernel gate: policy cache changed an output byte outside its counters" >&2; exit 1; }
gate_end "kernel gate"
echo "kernel gate passed (scalar == vectorized == cached, byte-for-byte)"

# Overload gate: 10x open-loop traffic plus a fault storm. Admitted
# requests must never miss a deadline, sheds must stay bounded (the pool
# keeps serving), the breaker must actually cycle, the run must finish
# inside a hard wall-clock budget, and the CSV must be byte-identical
# whether payload generation uses one thread or four.
gate_begin
timeout 300 "$experiments" overload --threads 1 --storm --out "$ckpt_tmp/ov-a" >/dev/null 2>&1 || {
    echo "overload gate: run failed or exceeded the 300s wall-clock budget" >&2; exit 1; }
timeout 300 "$experiments" overload --threads 4 --storm --out "$ckpt_tmp/ov-b" >/dev/null 2>&1 || {
    echo "overload gate: run failed or exceeded the 300s wall-clock budget" >&2; exit 1; }
overload_csv="$ckpt_tmp/ov-a/overload.csv"
grep -q '^summary,,deadline_misses,0$' "$overload_csv" || {
    echo "overload gate: an admitted request was served past its deadline" >&2; exit 1; }
grep -q '^summary,,dropped,0$' "$overload_csv" || {
    echo "overload gate: a ticket vanished without a reply or a typed error" >&2; exit 1; }
awk -F, '$3 == "shed_rate" && $1 == "summary" && ($4 >= 1.0 || $4 <= 0.0) { exit 1 }' "$overload_csv" || {
    echo "overload gate: shed rate unbounded (all or none of the traffic shed)" >&2; exit 1; }
awk -F, '$3 == "served" && $1 == "summary" && $4 == 0 { exit 1 }' "$overload_csv" || {
    echo "overload gate: the pool served nothing under overload" >&2; exit 1; }
awk -F, '$3 == "breaker_opens" && $1 == "summary" && $4 == 0 { exit 1 }' "$overload_csv" || {
    echo "overload gate: the fault storm never tripped a breaker" >&2; exit 1; }
diff "$overload_csv" "$ckpt_tmp/ov-b/overload.csv" || {
    echo "overload gate: CSV diverged between --threads 1 and --threads 4" >&2; exit 1; }
gate_end "overload gate"
echo "overload gate passed"

# Event-kernel gate: the sim-core event driver is now the default loop
# for every simulation. It must reproduce the lockstep reference
# byte-for-byte — in-process (golden traces, fleet/overload reports) and
# from the CLI — and skipping idle barriers on a sparse fleet must not
# cost wall time. (The fleet and overload gates above already exercise
# the event driver: it is the default.)
gate_begin
cargo test -q --test event_kernel_equivalence
"$experiments" overload --threads 1 --storm --driver lockstep \
    --out "$ckpt_tmp/ek-ov" >/dev/null 2>&1
diff "$overload_csv" "$ckpt_tmp/ek-ov/overload.csv" || {
    echo "event-kernel gate: overload CSV diverged between drivers" >&2; exit 1; }
t0=$(date +%s%N)
"$experiments" fleet --boards 4 --epochs 160 --threads 1 --driver lockstep \
    --out "$ckpt_tmp/ek-lock" >/dev/null 2>&1
t1=$(date +%s%N)
"$experiments" fleet --boards 4 --epochs 160 --threads 1 --driver event \
    --out "$ckpt_tmp/ek-event" >/dev/null 2>&1
t2=$(date +%s%N)
diff "$ckpt_tmp/ek-lock/fleet.csv" "$ckpt_tmp/ek-event/fleet.csv" || {
    echo "event-kernel gate: sparse fleet CSV diverged between drivers" >&2; exit 1; }
lock_ms=$(( (t1 - t0) / 1000000 ))
event_ms=$(( (t2 - t1) / 1000000 ))
# Sanity bound, not a benchmark: the event driver may not be
# pathologically slower than the reference on an idle-heavy fleet
# (1.5x + noise slack; both runs include identical model training).
if [ "$event_ms" -gt $(( lock_ms * 3 / 2 + 2000 )) ]; then
    echo "event-kernel gate: sparse fleet took ${event_ms}ms event-driven vs ${lock_ms}ms lockstep" >&2
    exit 1
fi
gate_end "event-kernel gate"
echo "event-kernel gate passed (sparse fleet: ${lock_ms}ms lockstep, ${event_ms}ms event)"

# Chaos gate: a seeded storm grid under the always-on invariant checker.
# Every storm must finish with zero invariant violations, and the CSV
# must be byte-identical across thread budgets (1 vs 4) and across the
# event and lockstep drivers. FULL=1 widens the grid into a soak.
gate_begin
chaos_args="--boards 8 --racks 2 --epochs 24 --seed 11 --threads 1"
storms="crash-wave partition heartbeat slow-tier all"
seeds="11"
if [ "${FULL:-0}" = "1" ]; then
    chaos_args="--boards 12 --racks 3 --epochs 80 --seed 11 --threads 1"
    seeds="11 23 47"
fi
for storm in $storms; do
    for seed in $seeds; do
        args="$(echo "$chaos_args" | sed "s/--seed 11/--seed $seed/")"
        # shellcheck disable=SC2086
        "$experiments" chaos $args --storm "$storm" \
            --out "$ckpt_tmp/chaos-$storm-$seed" >/dev/null 2>&1 || {
            echo "chaos gate: storm $storm seed $seed violated an invariant" >&2; exit 1; }
        chaos_csv="$ckpt_tmp/chaos-$storm-$seed/chaos.csv"
        grep -q '^summary,,invariant_violations,0$' "$chaos_csv" || {
            echo "chaos gate: storm $storm seed $seed reported violations" >&2; exit 1; }
    done
done
# Determinism legs on the full preset: threads 1 vs 4, event vs lockstep.
# shellcheck disable=SC2086
"$experiments" chaos $chaos_args --storm all --threads 4 \
    --out "$ckpt_tmp/chaos-t4" >/dev/null 2>&1
diff "$ckpt_tmp/chaos-all-11/chaos.csv" "$ckpt_tmp/chaos-t4/chaos.csv" || {
    echo "chaos gate: CSV diverged between --threads 1 and --threads 4" >&2; exit 1; }
# shellcheck disable=SC2086
"$experiments" chaos $chaos_args --storm all --driver lockstep \
    --out "$ckpt_tmp/chaos-lock" >/dev/null 2>&1
diff "$ckpt_tmp/chaos-all-11/chaos.csv" "$ckpt_tmp/chaos-lock/chaos.csv" || {
    echo "chaos gate: CSV diverged between event and lockstep drivers" >&2; exit 1; }
gate_end "chaos gate"
echo "chaos gate passed (storms: $storms; seeds: $seeds)"

# Edge-fleet gate: 1k boards of the datacenter-scale simulator (user
# frontier + network model + tiered service, region-sharded). The run
# must finish with zero invariant violations, actually serve traffic,
# and produce byte-identical CSV across thread budgets (1 vs 4) and
# across the event and lockstep drivers.
gate_begin
edge_args="--boards 1000 --racks 8 --epochs 24 --seed 11"
# shellcheck disable=SC2086
"$experiments" edge $edge_args --threads 1 \
    --out "$ckpt_tmp/edge-t1" >/dev/null 2>&1 || {
    echo "edge gate: run failed or violated an invariant" >&2; exit 1; }
edge_csv="$ckpt_tmp/edge-t1/edge.csv"
grep -q '^summary,,invariant_violations,0$' "$edge_csv" || {
    echo "edge gate: invariant violations reported" >&2; exit 1; }
awk -F, '$1 == "summary" && $3 == "replies" && $4 == 0 { exit 1 }' "$edge_csv" || {
    echo "edge gate: the fleet served nothing" >&2; exit 1; }
# shellcheck disable=SC2086
"$experiments" edge $edge_args --threads 4 \
    --out "$ckpt_tmp/edge-t4" >/dev/null 2>&1
diff "$edge_csv" "$ckpt_tmp/edge-t4/edge.csv" || {
    echo "edge gate: CSV diverged between --threads 1 and --threads 4" >&2; exit 1; }
# shellcheck disable=SC2086
"$experiments" edge $edge_args --threads 1 --driver lockstep \
    --out "$ckpt_tmp/edge-lock" >/dev/null 2>&1
diff "$edge_csv" "$ckpt_tmp/edge-lock/edge.csv" || {
    echo "edge gate: CSV diverged between event and lockstep drivers" >&2; exit 1; }
gate_end "edge gate"
echo "edge-fleet gate passed"

printf 'gate timing summary:\n%s' "$gate_timing"

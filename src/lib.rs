//! # TOP-IL — reproduction of "NPU-Accelerated Imitation Learning for
//! Thermal Optimization of QoS-Constrained Heterogeneous Multi-Cores"
//!
//! This umbrella crate re-exports the whole stack:
//!
//! | crate | contents |
//! |---|---|
//! | [`types`] | shared strong types (frequencies, temperatures, IDs, time) |
//! | [`faults`] | deterministic NPU / sensor / DVFS fault injection |
//! | [`thermal`] | RC thermal network of the HiKey 970 SoC |
//! | [`workloads`] | synthetic PARSEC/Polybench models + workload generators |
//! | [`platform`] | full-system big.LITTLE simulator (DVFS, DTM, counters) |
//! | [`nn`] | from-scratch MLP + Adam + NAS |
//! | [`npu`] | Kirin 970 NPU device model with a HiAI-DDK-shaped API |
//! | [`topil`] | the paper's contribution: IL migration + DVFS governor |
//! | [`toprl`] | the multi-agent Q-learning baseline |
//! | [`governors`] | GTS/ondemand and GTS/powersave baselines |
//! | [`trace`] | structured epoch-level event tracing + golden-run hashing |
//! | [`par`] | deterministic parallel execution (ordered map / tree reduction) |
//!
//! # Quickstart
//!
//! ```
//! use top_il::prelude::*;
//!
//! // 1. Design time: collect oracle demonstrations and train the model.
//! let scenarios = Scenario::standard_set(4, 7);
//! let mut settings = TrainSettings::default();
//! settings.nn.max_epochs = 20; // keep the doctest fast
//! let model = IlTrainer::new(settings).train(&scenarios, 0);
//!
//! // 2. Run time: let the governor manage a workload.
//! let workload = Workload::single(Benchmark::Adi, QosSpec::FractionOfMaxBig(0.3));
//! let config = SimConfig { max_duration: SimDuration::from_secs(2), ..SimConfig::default() };
//! let report = Simulator::new(config).run(&workload, &mut TopIlGovernor::new(model));
//! assert_eq!(report.policy, "TOP-IL");
//! ```

pub use faults;
pub use governors;
pub use hikey_platform as platform;
pub use hmc_types as types;
pub use nn;
pub use npu;
pub use par;
pub use sim_core;
pub use thermal;
pub use topil;
pub use toprl;
pub use trace;
pub use workloads;

/// The most common imports for working with the stack.
pub mod prelude {
    pub use faults::{FaultInjector, FaultPlan};
    pub use governors::LinuxGovernor;
    pub use hikey_platform::{
        AppOutcome, Platform, PlatformConfig, Policy, RunMetrics, RunReport, SimConfig, SimDriver,
        Simulator,
    };
    pub use hmc_types::{
        AppId, Celsius, Cluster, CoreId, Frequency, Ips, QosTarget, SimDuration, SimTime, Watts,
    };
    pub use thermal::{Cooling, SocThermal};
    pub use topil::oracle::{Scenario, TraceCollector};
    pub use topil::training::{IlModel, IlTrainer, TrainSettings};
    pub use topil::TopIlGovernor;
    pub use toprl::TopRlGovernor;
    pub use trace::{TraceConfig, TraceDiff, TraceEvent, TraceGranularity, TraceHash, TraceLog};
    pub use workloads::{Benchmark, MixedWorkloadConfig, QosSpec, Workload, WorkloadGenerator};
}

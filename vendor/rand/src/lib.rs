//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access and no
//! registry mirror, so the workspace vendors the *small* slice of the
//! `rand` API it actually uses: [`RngCore`], [`SeedableRng`], [`RngExt`]
//! (`random_range` / `random`), and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `rand`'s StdRng. That is by design an *unspecified*
//! stream upstream too; everything in the workspace that depends on exact
//! streams (golden trace fixtures) gates on an RNG fingerprint and
//! re-blesses when the stream changes.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core random number generation: a source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Default + AsMut<[u8]>;

    /// Build a generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build a generator from a 64-bit seed by expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 step: advances `state` and returns the next output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A type that can be drawn uniformly from a range.
pub trait SampleRange<T> {
    /// Draw one value from `self` using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                ((self.start as i128) + (v as i128)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = ((hi as i128) - (lo as i128)) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                ((lo as i128) + (v as i128)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform unit interval in [0, 1) with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let v = self.start as f64 + unit_f64(rng) * (self.end as f64 - self.start as f64);
        v as f32
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start() as f64, *self.end() as f64);
        assert!(lo <= hi, "cannot sample from empty range");
        (lo + unit_f64(rng) * (hi - lo)) as f32
    }
}

/// A type with a canonical "standard" distribution ([0,1) for floats,
/// full range for integers, fair coin for bool).
pub trait StandardSample {
    /// Draw one value from the standard distribution.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draw a value from the standard distribution of `T`.
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draw a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// The output stream is stable for a given seed but is *not* the same
    /// stream as upstream `rand`'s `StdRng` (which is itself unspecified
    /// across versions).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0, 0, 0, 0] {
                // xoshiro must not start from the all-zero state.
                let mut st = 0x9E37_79B9_7F4A_7C15u64;
                for w in &mut s {
                    *w = splitmix64(&mut st);
                }
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.random_range(0u8..=255);
            let _ = i;
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = rng.random_range(0u64..=u64::MAX);
        let _ = v;
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

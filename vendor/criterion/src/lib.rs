//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's `benches/` targets use
//! (`Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `Bencher::iter` / `iter_batched`, `criterion_group!`,
//! `criterion_main!`). Instead of criterion's statistical machinery it
//! runs each routine `sample_size` times and prints min/mean wall-clock
//! per iteration — enough to eyeball regressions in an offline container.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How batched inputs are sized; accepted for API compatibility, ignored.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Units processed per iteration; enables per-element reporting
/// (mirrors criterion's `Throughput`).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (rows, items) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 10,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing a sample count.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declare the units one iteration processes; subsequent benchmarks
    /// additionally print a per-unit figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark routine and print its timing.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let id = id.as_ref();
        let mut bencher = Bencher {
            samples: self.samples,
            times: Vec::new(),
        };
        f(&mut bencher);
        let (min, mean) = bencher.stats();
        let per_unit = match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if n > 0 => {
                let unit = match self.throughput {
                    Some(Throughput::Bytes(_)) => "byte",
                    _ => "elem",
                };
                format!(", {:.1} ns/{}", mean.as_secs_f64() * 1e9 / n as f64, unit)
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: min {:?}, mean {:?}{} ({} samples)",
            self.name, id, min, mean, per_unit, self.samples
        );
        self
    }

    /// Close the group (no-op; prints nothing).
    pub fn finish(self) {}
}

/// Passed to each benchmark routine to time its inner loop.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.times.push(start.elapsed());
            drop(out);
        }
    }

    /// Time `routine` on inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.times.push(start.elapsed());
            drop(out);
        }
    }

    fn stats(&self) -> (Duration, Duration) {
        if self.times.is_empty() {
            return (Duration::ZERO, Duration::ZERO);
        }
        let min = *self.times.iter().min().expect("non-empty");
        let total: Duration = self.times.iter().sum();
        (min, total / self.times.len() as u32)
    }
}

/// Define a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! Offline stand-in for `serde_derive`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` to document
//! intent — nothing serializes through serde (persistence uses the
//! `checkpoint` crate's own checksummed binary format). These derives
//! therefore accept the input (including `#[serde(...)]` helper
//! attributes) and expand to nothing; the `serde` stub provides blanket
//! trait impls so bounds stay satisfiable.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` as documentation of
//! which types are meant to be serializable, but no code path actually
//! serializes through serde (the `checkpoint` crate has its own format).
//! This stub keeps those derives compiling without network access: the
//! traits are markers with blanket impls, and the `derive` feature
//! re-exports no-op proc-macros.

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker for types the workspace considers serializable.
pub trait Serialize {}

/// Marker for types the workspace considers deserializable.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T> Deserialize<'de> for T {}

//! Offline stand-in for `proptest`.
//!
//! Implements the strategy surface this workspace uses — numeric range
//! strategies, `collection::vec`, `sample::select`, `Just`, the
//! [`proptest!`] macro with optional `#![proptest_config(..)]`, and the
//! `prop_assert*` macros — on top of the vendored `rand` crate.
//!
//! Differences from upstream, deliberately accepted for an offline build:
//! failures are reported by panicking immediately (no shrinking), and
//! `.proptest-regressions` files are ignored (every run draws the same
//! deterministic case sequence from a per-test seed, so runs are
//! reproducible without a persistence file).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{RngExt, SampleRange, SeedableRng};

/// Runner configuration; only `cases` is interpreted.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<T> Strategy for Range<T>
where
    T: Clone,
    Range<T>: SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.clone().sample_from(rng)
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Clone,
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.clone().sample_from(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{RngExt, Strategy, TestRng};

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Strategies choosing among explicit values.
pub mod sample {
    use super::{RngExt, Strategy, TestRng};

    /// Strategy yielding a uniformly selected element of a vector.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.random_range(0..self.items.len());
            self.items[idx].clone()
        }
    }

    /// Uniformly select one of `items`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires at least one item");
        Select { items }
    }
}

/// FNV-1a over a string; used to derive per-test RNG seeds.
pub fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01B3);
    }
    hash
}

/// Deterministic per-case RNG: stable across runs for a given test + case.
pub fn rng_for(seed: u64, case: u32) -> TestRng {
    TestRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Define property tests: each `#[test] fn name(arg in strategy, ..)` runs
/// `cases` times with deterministically seeded random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::rng_for(__seed, __case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        crate::sample::select(vec![0u64, 2, 4, 6])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..17, f in -1.0f64..1.0, b in 0u8..=255) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            let _ = b;
        }

        /// Vec strategies honor exact and ranged sizes.
        #[test]
        fn vec_sizes(fixed in crate::collection::vec(0u32..10, 7), ranged in crate::collection::vec(0u32..10, 2..5)) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!((2..5).contains(&ranged.len()));
        }

        /// Select only yields listed items; Just yields its value.
        #[test]
        fn select_and_just(e in evens(), j in Just(9i32)) {
            prop_assert!(e.is_multiple_of(2));
            prop_assert_ne!(e, 1);
            prop_assert_eq!(j, 9);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..10)
            .map(|c| {
                let mut rng = crate::rng_for(1234, c);
                (0u64..100).sample(&mut rng)
            })
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|c| {
                let mut rng = crate::rng_for(1234, c);
                (0u64..100).sample(&mut rng)
            })
            .collect();
        assert_eq!(a, b);
    }
}

//! Event identities and the delivered-event envelope.

use hmc_types::SimTime;

/// Identity of a registered component — the index assigned by
/// [`crate::Kernel::register`], stable for the lifetime of the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub(crate) u32);

impl ComponentId {
    /// The raw index (also the component's default RNG stream id).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Identity of a scheduled event: its global sequence number.
///
/// Sequence numbers increase monotonically with every
/// [`crate::Scheduler::schedule`] call and double as the final
/// tie-break of the execution order, so two events scheduled for the
/// same `(time, priority)` always execute in scheduling order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// The raw sequence number.
    pub fn seq(self) -> u64 {
        self.0
    }
}

/// One event as delivered to its component handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<P> {
    /// The identity assigned at scheduling time.
    pub id: EventId,
    /// The virtual instant this event fires at (the kernel clock reads
    /// exactly this during the handler).
    pub time: SimTime,
    /// The component the event is addressed to.
    pub dst: ComponentId,
    /// Tie-break rank among events at the same instant: lower fires
    /// first; equal priorities fall back to scheduling order.
    pub priority: u64,
    /// The embedder-defined payload.
    pub payload: P,
}

//! Derived RNG streams, mirroring the `nn`/`checkpoint` resumable
//! training convention: a splitmix64-style finalizer over
//! `(seed, stream, index)` so consecutive indices yield unrelated
//! streams and a component's randomness never depends on scheduling
//! order.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives an independent RNG for `(seed, stream, index)` via a
/// splitmix64-style finalizer — bit-identical to
/// `nn::resume::derive_rng`, so kernel components and resumable
/// training draw from the same stream family.
pub fn derive_rng(seed: u64, stream: u64, index: u64) -> StdRng {
    let mut z = seed ^ stream ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = derive_rng(1, 2, 3);
        let mut b = derive_rng(1, 2, 3);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn adjacent_indices_diverge() {
        let mut a = derive_rng(1, 2, 3);
        let mut b = derive_rng(1, 2, 4);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}

//! Derived RNG streams and the shared splitmix64 family.
//!
//! Every crate in the workspace that needs cheap, stateless, seedable
//! hashing — retry jitter, synthetic payloads, storm schedules, frontier
//! arrivals — uses the same splitmix64 finalizer. This module is the one
//! home for that finalizer; the per-crate copies it replaced are locked
//! against it by bit-identity tests below.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The golden-ratio increment from the splitmix64 reference
/// implementation (Steele, Lea & Flood 2014).
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The splitmix64 finalizer: a bijective avalanche mix of a 64-bit
/// state. Pure and stateless — callers build whatever stream algebra
/// they need (`seed + index * GOLDEN_GAMMA`, xor-folded tuples, …) and
/// finalize with this.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One step of the classic splitmix64 sequence: advance the state by
/// [`GOLDEN_GAMMA`] and finalize. Feeding the output back in as the next
/// input walks the reference stream.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    mix64(x.wrapping_add(GOLDEN_GAMMA))
}

/// Finalizes `seed + index * GOLDEN_GAMMA`: the i-th draw of a seeded
/// stream without materialising the intermediate states. Used for storm
/// schedules and frontier arrivals where draws are indexed, not chained.
#[inline]
pub fn mix_indexed(seed: u64, index: u64) -> u64 {
    mix64(seed.wrapping_add(index.wrapping_mul(GOLDEN_GAMMA)))
}

/// Derives an independent RNG for `(seed, stream, index)` via a
/// splitmix64-style finalizer — bit-identical to
/// `nn::resume::derive_rng`, so kernel components and resumable
/// training draw from the same stream family.
pub fn derive_rng(seed: u64, stream: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(mix64(seed ^ stream ^ index.wrapping_mul(GOLDEN_GAMMA)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = derive_rng(1, 2, 3);
        let mut b = derive_rng(1, 2, 3);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn adjacent_indices_diverge() {
        let mut a = derive_rng(1, 2, 3);
        let mut b = derive_rng(1, 2, 4);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    /// The verbatim splitmix64 copy that used to live in
    /// `npu-serve/src/retry.rs`, `bench/src/overload.rs` and
    /// `bench/src/chaos.rs` before the dedup.
    fn legacy_classic(seed: u64) -> u64 {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The verbatim indexed mix that used to live in
    /// `faults/src/fleet.rs` before the dedup.
    fn legacy_indexed(seed: u64, index: u64) -> u64 {
        let mut z = seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Bit-identity lock: the shared helpers must reproduce every
    /// retired per-crate copy exactly, or previously-published schedules
    /// (retry jitter, storm timings, chaos payloads) silently shift.
    #[test]
    fn shared_helpers_match_retired_per_crate_copies() {
        let probes = [
            0u64,
            1,
            42,
            0xDEAD_BEEF,
            GOLDEN_GAMMA,
            u64::MAX,
            u64::MAX - 1,
            0x0123_4567_89AB_CDEF,
        ];
        for &x in &probes {
            assert_eq!(splitmix64(x), legacy_classic(x), "classic form at {x:#x}");
            for index in [0u64, 1, 7, 1 << 40, u64::MAX] {
                assert_eq!(
                    mix_indexed(x, index),
                    legacy_indexed(x, index),
                    "indexed form at ({x:#x}, {index})"
                );
            }
        }
        // Pin absolute values too, so the lock survives an accidental
        // rewrite of both sides.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        assert_eq!(mix_indexed(0, 0), 0);
        assert_eq!(mix_indexed(1, 0), 0x5692_161D_100B_05E5);
    }

    /// `derive_rng` stayed on the same finalizer through the refactor.
    #[test]
    fn derive_rng_still_uses_the_shared_finalizer() {
        let mut a = derive_rng(7, 11, 13);
        let mut b = StdRng::seed_from_u64(mix64(7 ^ 11 ^ 13u64.wrapping_mul(GOLDEN_GAMMA)));
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

//! The kernel: component registration and the event dispatch loop.

use hmc_types::SimTime;

use crate::event::{ComponentId, Event};
use crate::sched::Scheduler;

/// Boxed component handler: shared state, scheduler access, the event.
type Handler<'h, P, S> = Box<dyn FnMut(&mut S, &mut Scheduler<P>, Event<P>) + 'h>;

/// Counters over the kernel's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Handler invocations (one per executed event).
    pub handler_invocations: u64,
}

/// The discrete-event kernel: a [`Scheduler`] plus the registered
/// component handlers and the dispatch loop.
///
/// `P` is the embedder-defined event payload, `S` the shared state
/// threaded through every handler call. The kernel owns no simulation
/// state of its own beyond the clock and the pending-event set; all
/// domain state lives in `S` (or in the handler closures' captures).
///
/// See the crate docs for a worked example.
pub struct Kernel<'h, P, S> {
    sched: Scheduler<P>,
    handlers: Vec<Handler<'h, P, S>>,
    names: Vec<&'static str>,
    stats: KernelStats,
}

impl<'h, P, S> Kernel<'h, P, S> {
    /// A kernel with the given master seed and no components.
    pub fn new(seed: u64) -> Self {
        Kernel {
            sched: Scheduler::new(seed),
            handlers: Vec::new(),
            names: Vec::new(),
            stats: KernelStats::default(),
        }
    }

    /// Registers a component handler and returns its identity.
    /// Registration order defines [`ComponentId::index`] and therefore
    /// the component's default RNG stream tag.
    pub fn register<F>(&mut self, name: &'static str, handler: F) -> ComponentId
    where
        F: FnMut(&mut S, &mut Scheduler<P>, Event<P>) + 'h,
    {
        let id = ComponentId(u32::try_from(self.handlers.len()).expect("too many components"));
        self.handlers.push(Box::new(handler));
        self.names.push(name);
        id
    }

    /// The registered name of `component`.
    pub fn name_of(&self, component: ComponentId) -> &'static str {
        self.names[component.index() as usize]
    }

    /// Mutable scheduler access, for seeding the initial events and for
    /// driver loops that interleave kernel steps with external work.
    pub fn scheduler(&mut self) -> &mut Scheduler<P> {
        &mut self.sched
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Whether no live event is pending.
    pub fn is_idle(&mut self) -> bool {
        self.sched.is_idle()
    }

    /// The fire time of the next live event, if any.
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.sched.next_time()
    }

    /// Executes the next event: advances the clock to its timestamp and
    /// invokes its component's handler. Returns the `(component, time)`
    /// it delivered to, or `None` when the queue is idle.
    pub fn step(&mut self, state: &mut S) -> Option<(ComponentId, SimTime)> {
        let event = self.sched.pop()?;
        let dst = event.dst;
        let time = event.time;
        self.stats.handler_invocations += 1;
        let handler = self
            .handlers
            .get_mut(dst.index() as usize)
            .expect("event addressed to unregistered component");
        handler(state, &mut self.sched, event);
        Some((dst, time))
    }

    /// Executes every event with `time <= until`, then advances the
    /// clock to at least `until`. Returns the number of events
    /// executed.
    pub fn run_until(&mut self, state: &mut S, until: SimTime) -> u64 {
        let mut executed = 0;
        while matches!(self.sched.next_time(), Some(t) if t <= until) {
            self.step(state);
            executed += 1;
        }
        self.sched.advance_clock(until);
        executed
    }

    /// Executes events until the queue drains. Returns the number of
    /// events executed.
    pub fn run_to_idle(&mut self, state: &mut S) -> u64 {
        let mut executed = 0;
        while self.step(state).is_some() {
            executed += 1;
        }
        executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::SimDuration;
    use rand::RngCore;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn clock_follows_events_and_run_until_advances() {
        let mut kernel: Kernel<u32, Vec<(u32, SimTime)>> = Kernel::new(0);
        let sink = kernel.register("sink", |log: &mut Vec<(u32, SimTime)>, _, e| {
            log.push((e.payload, e.time));
        });
        kernel.scheduler().schedule(ms(30), sink, 0, 3);
        kernel.scheduler().schedule(ms(10), sink, 0, 1);
        kernel.scheduler().schedule(ms(20), sink, 0, 2);
        let mut log = Vec::new();
        assert_eq!(kernel.run_until(&mut log, ms(20)), 2);
        assert_eq!(kernel.now(), ms(20));
        assert_eq!(log, vec![(1, ms(10)), (2, ms(20))]);
        assert_eq!(kernel.run_until(&mut log, ms(100)), 1);
        assert_eq!(kernel.now(), ms(100), "clock advances past the last event");
        assert_eq!(kernel.stats().handler_invocations, 3);
    }

    #[test]
    fn handlers_can_cancel_and_reschedule() {
        let mut kernel: Kernel<&'static str, Vec<&'static str>> = Kernel::new(0);
        let sink = kernel.register("sink", |log: &mut Vec<&'static str>, _, e| {
            log.push(e.payload);
        });
        let doomed = kernel.scheduler().schedule(ms(5), sink, 0, "doomed");
        let killer = kernel.register("killer", move |_: &mut Vec<&'static str>, sched, e| {
            assert!(sched.cancel(doomed));
            sched.schedule(e.time + SimDuration::from_millis(1), sink, 0, "replacement");
        });
        kernel.scheduler().schedule(ms(1), killer, 0, "go");
        let mut log = Vec::new();
        kernel.run_to_idle(&mut log);
        assert_eq!(log, vec!["replacement"]);
        assert_eq!(kernel.now(), ms(2));
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut kernel: Kernel<u8, Vec<SimTime>> = Kernel::new(0);
        let sink = kernel.register("sink", |log: &mut Vec<SimTime>, sched, e| {
            log.push(e.time);
            if e.payload == 0 {
                // A handler asking for the past gets "now" instead.
                sched.schedule(SimTime::ZERO, e.dst, 0, 1);
            }
        });
        kernel.scheduler().schedule(ms(7), sink, 0, 0);
        let mut log = Vec::new();
        kernel.run_to_idle(&mut log);
        assert_eq!(log, vec![ms(7), ms(7)]);
    }

    #[test]
    fn component_rng_matches_nn_derivation() {
        let kernel: Kernel<u8, ()> = Kernel::new(0xF1EE7);
        let mut a = kernel.sched.derive_rng(2, 9);
        let mut b = crate::rng::derive_rng(0xF1EE7, 2, 9);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

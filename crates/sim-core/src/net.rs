//! Network-link primitives whose transit times become kernel events.
//!
//! A [`Link`] is the stateless latency/bandwidth model of `dslab-network`
//! style simulators: transit = propagation latency + serialization delay
//! (`bytes / bandwidth`). A [`FifoLink`] adds the one piece of state a
//! shared medium needs — the instant the link frees up — so back-to-back
//! sends queue behind each other instead of overlapping.
//!
//! The structs carry no event machinery of their own: callers compute a
//! delivery instant and [`Scheduler::schedule`](crate::Scheduler::schedule)
//! the payload at it, which keeps link transits ordered by the kernel's
//! deterministic `(time, priority, seq)` key like every other event.
//!
//! # Examples
//!
//! ```
//! use hmc_types::{SimDuration, SimTime};
//! use sim_core::{FifoLink, Link};
//!
//! let link = Link::new(SimDuration::from_millis(2), 125_000_000); // 1 Gbps
//! assert_eq!(link.serialization(125), SimDuration::from_nanos(1_000));
//!
//! let mut fifo = FifoLink::new(link);
//! let a = fifo.send(SimTime::ZERO, 125_000_000); // occupies the wire 1 s
//! let b = fifo.send(SimTime::ZERO, 125_000_000); // queues behind `a`
//! assert_eq!(b.since(a), SimDuration::from_secs(1));
//! ```

use hmc_types::{SimDuration, SimTime};

/// Integer nanoseconds per second, for exact serialization arithmetic.
const NANOS_PER_SEC: u128 = 1_000_000_000;

/// A point-to-point link: fixed propagation latency plus a serialization
/// rate. Stateless — two sends never interact; see [`FifoLink`] for a
/// shared medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Serialization bandwidth in bytes per second. `0` means infinite
    /// (serialization is free), so a pure-latency link is expressible.
    pub bytes_per_sec: u64,
}

impl Link {
    /// A link with the given propagation latency and bandwidth.
    pub const fn new(latency: SimDuration, bytes_per_sec: u64) -> Self {
        Link {
            latency,
            bytes_per_sec,
        }
    }

    /// Time the wire is occupied pushing `bytes` onto it. Exact integer
    /// arithmetic (`ceil(bytes * 1e9 / rate)` nanoseconds), so transit
    /// times are reproducible across platforms.
    pub fn serialization(&self, bytes: u64) -> SimDuration {
        if self.bytes_per_sec == 0 || bytes == 0 {
            return SimDuration::ZERO;
        }
        let ns = (u128::from(bytes) * NANOS_PER_SEC).div_ceil(u128::from(self.bytes_per_sec));
        SimDuration::from_nanos(ns.min(u128::from(u64::MAX)) as u64)
    }

    /// End-to-end transit of a `bytes`-sized message on an idle link:
    /// serialization followed by propagation.
    pub fn transit(&self, bytes: u64) -> SimDuration {
        self.latency + self.serialization(bytes)
    }
}

/// A [`Link`] with FIFO occupancy: each send seizes the wire for its
/// serialization time, and later sends queue behind it. Delivery instants
/// are therefore a deterministic function of the send sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoLink {
    /// The underlying latency/bandwidth model.
    pub link: Link,
    busy_until: SimTime,
}

impl FifoLink {
    /// An idle FIFO link over the given model.
    pub const fn new(link: Link) -> Self {
        FifoLink {
            link,
            busy_until: SimTime::ZERO,
        }
    }

    /// The instant the wire next frees up (never before `now` when
    /// queried after a send at `now`).
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Enqueues a `bytes`-sized message at `now` and returns its delivery
    /// instant: serialization starts when the wire frees up, propagation
    /// follows. Schedule the payload event at the returned instant.
    pub fn send(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        self.busy_until = start + self.link.serialization(bytes);
        self.busy_until + self.link.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_is_exact_and_rounds_up() {
        let link = Link::new(SimDuration::ZERO, 3);
        // 1 byte at 3 B/s = 333_333_333.3 ns, rounded up.
        assert_eq!(link.serialization(1), SimDuration::from_nanos(333_333_334));
        assert_eq!(link.serialization(0), SimDuration::ZERO);
    }

    #[test]
    fn zero_bandwidth_means_free_serialization() {
        let link = Link::new(SimDuration::from_millis(5), 0);
        assert_eq!(link.transit(1 << 40), SimDuration::from_millis(5));
    }

    #[test]
    fn fifo_sends_queue_behind_each_other() {
        let link = Link::new(SimDuration::from_millis(1), 1_000); // 1 kB/s
        let mut fifo = FifoLink::new(link);
        let first = fifo.send(SimTime::ZERO, 500); // 0.5 s on the wire
        assert_eq!(first, SimTime::from_nanos(501_000_000));
        let second = fifo.send(SimTime::ZERO, 500); // waits for the first
        assert_eq!(second, SimTime::from_nanos(1_001_000_000));
        // After the wire drains, a later send sees an idle link again.
        let later = fifo.send(SimTime::from_secs(10), 500);
        assert_eq!(later, SimTime::from_secs(10) + link.transit(500));
    }
}

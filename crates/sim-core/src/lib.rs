//! Discrete-event simulation kernel for the TOP-IL stack.
//!
//! Every layer of the reproduction used to advance in lockstep epochs:
//! the platform ticked fixed steps, the fleet ran boards between
//! barriers, the overload harness drained a hand-rolled attempt heap.
//! This crate factors the common core out into a small, deterministic
//! discrete-event kernel in the style of `dslab-core`/`simcore`:
//!
//! * a **virtual-time event queue** ([`Scheduler`]) — a binary heap of
//!   monotonically-stamped events ordered by the deterministic key
//!   `(time, priority, seq)`, where `seq` is a global, monotonically
//!   increasing schedule counter, so ties between simultaneous events
//!   are broken first by an explicit priority and then by scheduling
//!   order — never by heap internals or hash iteration;
//! * **component handler registration** ([`Kernel::register`]) — each
//!   component owns a handler closure invoked for events addressed to
//!   it, with mutable access to the embedder's shared state and to the
//!   scheduler (so handlers can post, cancel and reschedule events);
//! * **cancel/reschedule** ([`Scheduler::cancel`]) — events are
//!   tombstoned by id and skipped on pop, so adaptive components (a
//!   dynamic batcher tracking its earliest dispatch deadline, say) can
//!   move their wake-ups without perturbing the order of everyone
//!   else's;
//! * a **seeded RNG context derived per component**
//!   ([`Scheduler::derive_rng`]) — the same splitmix64 derivation the
//!   `nn`/`checkpoint` resumable-training path uses, so a component's
//!   stream depends only on `(master seed, component, stream index)`
//!   and never on scheduling order.
//!
//! Determinism is the design bar, not a best effort: given the same
//! seed and the same schedule of [`Scheduler::schedule`] calls, the
//! kernel executes the same events in the same order with the same
//! clock readings — the property the lockstep↔event-driven equivalence
//! harness (`tests/event_kernel_equivalence.rs` at the workspace root)
//! proves for every ported driver.
//!
//! # Examples
//!
//! ```
//! use hmc_types::SimTime;
//! use sim_core::Kernel;
//!
//! // Shared state the handlers mutate; the kernel never touches it.
//! #[derive(Default)]
//! struct State {
//!     fired: Vec<(u64, SimTime)>,
//! }
//!
//! let mut kernel: Kernel<u64, State> = Kernel::new(7);
//! let bell = kernel.register("bell", |state: &mut State, sched, event| {
//!     state.fired.push((event.payload, event.time));
//!     if event.payload < 3 {
//!         // Handlers post follow-up events through the scheduler.
//!         let next = event.time + hmc_types::SimDuration::from_millis(10);
//!         sched.schedule(next, event.dst, 0, event.payload + 1);
//!     }
//! });
//! let mut state = State::default();
//! kernel.scheduler().schedule(SimTime::ZERO, bell, 0, 1);
//! kernel.run_to_idle(&mut state);
//! assert_eq!(state.fired.len(), 3);
//! assert_eq!(kernel.now(), SimTime::from_millis(20));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod event;
mod kernel;
pub mod net;
mod queue;
pub mod rng;
mod sched;

pub use event::{ComponentId, Event, EventId};
pub use kernel::{Kernel, KernelStats};
pub use net::{FifoLink, Link};
pub use queue::{EventQueue, QueueStats};
pub use rng::{derive_rng, mix64, mix_indexed, splitmix64, GOLDEN_GAMMA};
pub use sched::Scheduler;

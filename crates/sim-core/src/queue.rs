//! The virtual-time event queue: a binary heap ordered by the
//! deterministic key `(time, priority, seq)` with tombstone
//! cancellation.

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashSet};

use hmc_types::SimTime;

use crate::event::{ComponentId, Event, EventId};

/// One heap entry. Ordering ignores the payload entirely: the execution
/// order of a schedule is a pure function of `(time, priority, seq)`.
struct Entry<P> {
    time: SimTime,
    priority: u64,
    seq: u64,
    dst: ComponentId,
    payload: P,
}

impl<P> Entry<P> {
    fn key(&self) -> (SimTime, u64, u64) {
        (self.time, self.priority, self.seq)
    }
}

impl<P> PartialEq for Entry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<P> Eq for Entry<P> {}

impl<P> PartialOrd for Entry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<P> Ord for Entry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

/// Counters over the queue's lifetime (monotonic, never reset).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events accepted by [`EventQueue::push`].
    pub scheduled: u64,
    /// Events handed out by [`EventQueue::pop`].
    pub executed: u64,
    /// Events tombstoned by [`EventQueue::cancel`] before they fired.
    pub cancelled: u64,
}

/// A deterministic pending-event set.
///
/// Events pop in strictly non-decreasing `(time, priority, seq)` order;
/// cancellation tombstones an event by id without disturbing the heap,
/// and tombstones are discarded lazily on pop.
///
/// # Examples
///
/// ```
/// use hmc_types::SimTime;
/// use sim_core::{ComponentId, EventQueue};
///
/// let mut queue: EventQueue<&str> = EventQueue::new();
/// let dst = ComponentId::default_for_tests();
/// queue.push(SimTime::from_millis(5), dst, 1, "late");
/// let early = queue.push(SimTime::from_millis(5), dst, 0, "early");
/// assert_eq!(queue.len(), 2);
/// assert_eq!(queue.next_time(), Some(SimTime::from_millis(5)));
/// assert!(queue.cancel(early));
/// assert_eq!(queue.pop().unwrap().payload, "late");
/// assert!(queue.is_empty());
/// ```
pub struct EventQueue<P> {
    heap: BinaryHeap<Reverse<Entry<P>>>,
    /// Seqs of live (pending, not cancelled) events — O(1) cancel.
    pending: HashSet<u64>,
    tombstones: HashSet<u64>,
    next_seq: u64,
    stats: QueueStats,
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> EventQueue<P> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            tombstones: HashSet::new(),
            next_seq: 0,
            stats: QueueStats::default(),
        }
    }

    /// Pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no live event is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// The fire time of the next live event, if any.
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.discard_tombstones();
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Schedules an event and returns its identity.
    pub fn push(&mut self, time: SimTime, dst: ComponentId, priority: u64, payload: P) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry {
            time,
            priority,
            seq,
            dst,
            payload,
        }));
        self.pending.insert(seq);
        self.stats.scheduled += 1;
        EventId(seq)
    }

    /// Tombstones a pending event. Returns `false` when the event
    /// already fired, was already cancelled, or never existed.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.pending.remove(&id.0) {
            return false;
        }
        self.tombstones.insert(id.0);
        self.stats.cancelled += 1;
        true
    }

    /// Pops the next live event in `(time, priority, seq)` order.
    pub fn pop(&mut self) -> Option<Event<P>> {
        self.discard_tombstones();
        let Reverse(entry) = self.heap.pop()?;
        self.pending.remove(&entry.seq);
        self.stats.executed += 1;
        Some(Event {
            id: EventId(entry.seq),
            time: entry.time,
            dst: entry.dst,
            priority: entry.priority,
            payload: entry.payload,
        })
    }

    /// Drops tombstoned entries sitting at the top of the heap.
    fn discard_tombstones(&mut self) {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.tombstones.remove(&entry.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

impl ComponentId {
    /// A fixed component id for doctests and queue-level tests that
    /// exercise the queue without a kernel.
    pub fn default_for_tests() -> Self {
        ComponentId(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn pops_in_time_priority_seq_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        let c = ComponentId(0);
        q.push(t(5), c, 1, 0);
        q.push(t(3), c, 9, 1);
        q.push(t(5), c, 0, 2);
        q.push(t(5), c, 0, 3);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec![1, 2, 3, 0]);
    }

    #[test]
    fn cancel_skips_events_and_reports_liveness() {
        let mut q: EventQueue<u32> = EventQueue::new();
        let c = ComponentId(0);
        let a = q.push(t(1), c, 0, 10);
        let b = q.push(t(2), c, 0, 20);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel must be refused");
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_time(), Some(t(2)));
        let fired = q.pop().unwrap();
        assert_eq!(fired.id, b);
        assert!(!q.cancel(b), "cancelling a fired event must be refused");
        assert!(q.is_empty());
        assert_eq!(
            q.stats(),
            QueueStats {
                scheduled: 2,
                executed: 1,
                cancelled: 1
            }
        );
    }
}

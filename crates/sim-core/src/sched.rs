//! The scheduler: the event queue plus the virtual clock and the
//! master seed. Handlers receive `&mut Scheduler` so they can post,
//! cancel and reschedule events and derive component RNG streams.

use hmc_types::{SimDuration, SimTime};
use rand::rngs::StdRng;

use crate::event::{ComponentId, Event, EventId};
use crate::queue::{EventQueue, QueueStats};
use crate::rng::derive_rng;

/// Virtual clock, deterministic event queue and master seed.
///
/// The clock only ever moves forward: it is set to each event's
/// timestamp as the event fires, and [`Scheduler::schedule`] clamps
/// requested fire times to the current instant so no event can fire in
/// the past.
pub struct Scheduler<P> {
    queue: EventQueue<P>,
    clock: SimTime,
    seed: u64,
}

impl<P> Scheduler<P> {
    pub(crate) fn new(seed: u64) -> Self {
        Scheduler {
            queue: EventQueue::new(),
            clock: SimTime::ZERO,
            seed,
        }
    }

    /// The current virtual instant. During a handler this reads exactly
    /// the firing event's timestamp.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The master seed the kernel was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Schedules an event for `at` (clamped to now — events cannot fire
    /// in the past) addressed to `dst`, with `priority` breaking ties
    /// at equal instants (lower fires first) and scheduling order
    /// breaking ties at equal priority.
    pub fn schedule(
        &mut self,
        at: SimTime,
        dst: ComponentId,
        priority: u64,
        payload: P,
    ) -> EventId {
        let at = at.max(self.clock);
        self.queue.push(at, dst, priority, payload)
    }

    /// Schedules an event `delay` after the current instant.
    pub fn schedule_after(
        &mut self,
        delay: SimDuration,
        dst: ComponentId,
        priority: u64,
        payload: P,
    ) -> EventId {
        self.queue.push(self.clock + delay, dst, priority, payload)
    }

    /// Tombstones a pending event. Returns `false` when the event
    /// already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// The fire time of the next live event, if any.
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.queue.next_time()
    }

    /// Live (non-cancelled) pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether no live event is pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Lifetime queue counters.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Derives an independent RNG stream from the master seed — the
    /// same splitmix64 family as `nn::resume::derive_rng`, so a
    /// component's randomness depends only on `(seed, stream, index)`
    /// and never on event ordering.
    pub fn derive_rng(&self, stream: u64, index: u64) -> StdRng {
        derive_rng(self.seed, stream, index)
    }

    /// Derives the RNG stream conventionally owned by `component`,
    /// using its registration index as the stream tag.
    pub fn component_rng(&self, component: ComponentId, index: u64) -> StdRng {
        self.derive_rng(u64::from(component.index()), index)
    }

    /// Pops the next event and advances the clock to its timestamp.
    pub(crate) fn pop(&mut self) -> Option<Event<P>> {
        let event = self.queue.pop()?;
        debug_assert!(event.time >= self.clock, "event queue went backwards");
        self.clock = event.time;
        Some(event)
    }

    /// Moves the clock forward to `to` without firing anything (no-op
    /// when `to` is in the past).
    pub(crate) fn advance_clock(&mut self, to: SimTime) {
        self.clock = self.clock.max(to);
    }
}

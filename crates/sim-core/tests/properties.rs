//! Property-based tests of the kernel's ordering guarantees: events
//! never execute out of timestamp order, tie-breaking is stable under
//! arbitrary insertion order, cancel/reschedule preserves determinism,
//! and the queue always drains empty.

use hmc_types::SimTime;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sim_core::{ComponentId, EventQueue, Kernel};

/// Decodes a raw draw into a (time, priority) key with plenty of
/// deliberate collisions so tie-breaking is actually exercised.
fn key_of(raw: u64) -> (SimTime, u64) {
    (SimTime::from_millis(raw % 40), (raw / 40) % 5)
}

/// Fisher–Yates driven by a seeded StdRng (the vendored rand has no
/// shuffle helper).
fn shuffled<T>(mut items: Vec<T>, seed: u64) -> Vec<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
    items
}

proptest! {
    /// Pop order is exactly the stable sort of push order by
    /// `(time, priority)` — timestamps never regress, and equal keys
    /// fire in scheduling order.
    #[test]
    fn pops_follow_time_priority_seq(raws in proptest::collection::vec(0u64..2_000, 1..80)) {
        let dst = ComponentId::default_for_tests();
        let mut queue: EventQueue<usize> = EventQueue::new();
        for (i, &raw) in raws.iter().enumerate() {
            let (t, p) = key_of(raw);
            queue.push(t, dst, p, i);
        }
        let mut expected: Vec<usize> = (0..raws.len()).collect();
        expected.sort_by_key(|&i| key_of(raws[i]));
        let mut popped = Vec::new();
        let mut last = (SimTime::ZERO, 0u64);
        while let Some(event) = queue.pop() {
            prop_assert!((event.time, event.priority) >= last, "queue went backwards");
            last = (event.time, event.priority);
            popped.push(event.payload);
        }
        prop_assert_eq!(popped, expected);
        prop_assert!(queue.is_empty());
        prop_assert_eq!(queue.len(), 0);
    }

    /// For events with pairwise-distinct `(time, priority)` keys the
    /// execution order is independent of insertion order.
    #[test]
    fn distinct_keys_ignore_insertion_order(
        raws in proptest::collection::vec(0u64..10_000, 1..60),
        perm_seed in 0u64..1_000_000,
    ) {
        let dst = ComponentId::default_for_tests();
        let mut keys: Vec<(SimTime, u64)> = raws.iter().map(|&r| key_of(r)).collect();
        keys.sort();
        keys.dedup();
        let pop_keys = |order: Vec<(SimTime, u64)>| {
            let mut queue: EventQueue<(SimTime, u64)> = EventQueue::new();
            for &(t, p) in &order {
                queue.push(t, dst, p, (t, p));
            }
            std::iter::from_fn(move || queue.pop().map(|e| e.payload)).collect::<Vec<_>>()
        };
        let a = pop_keys(keys.clone());
        let b = pop_keys(shuffled(keys.clone(), perm_seed));
        prop_assert_eq!(&a, &b, "insertion order leaked into execution order");
        prop_assert_eq!(a, keys, "execution order is the sorted key order");
    }

    /// Cancellation removes exactly the cancelled events, twice-built
    /// queues drain identically, and the bookkeeping adds up.
    #[test]
    fn cancel_preserves_determinism(
        raws in proptest::collection::vec(0u64..2_000, 1..60),
        mask in proptest::collection::vec(0u64..4, 1..60),
    ) {
        let dst = ComponentId::default_for_tests();
        let build_and_drain = || {
            let mut queue: EventQueue<usize> = EventQueue::new();
            let ids: Vec<_> = raws
                .iter()
                .enumerate()
                .map(|(i, &raw)| {
                    let (t, p) = key_of(raw);
                    queue.push(t, dst, p, i)
                })
                .collect();
            let mut cancelled = Vec::new();
            for (i, id) in ids.iter().enumerate() {
                if mask.get(i % mask.len()) == Some(&0) {
                    assert!(queue.cancel(*id));
                    assert!(!queue.cancel(*id), "double cancel accepted");
                    cancelled.push(i);
                }
            }
            let order: Vec<usize> = std::iter::from_fn(|| queue.pop().map(|e| e.payload)).collect();
            (order, cancelled, queue.stats(), queue.is_empty())
        };
        let (order_a, cancelled, stats, drained) = build_and_drain();
        let (order_b, ..) = build_and_drain();
        prop_assert_eq!(&order_a, &order_b, "same construction, different drain order");
        for i in &cancelled {
            prop_assert!(!order_a.contains(i), "cancelled event {i} fired anyway");
        }
        let mut expected: Vec<usize> =
            (0..raws.len()).filter(|i| !cancelled.contains(i)).collect();
        expected.sort_by_key(|&i| key_of(raws[i]));
        prop_assert_eq!(order_a, expected);
        prop_assert!(drained, "queue did not drain empty");
        prop_assert_eq!(stats.scheduled, raws.len() as u64);
        prop_assert_eq!(stats.executed + stats.cancelled, stats.scheduled);
    }

    /// `Kernel::run_until` executes exactly the events at or before the
    /// boundary, the clock lands on the boundary, and rescheduling via
    /// cancel+schedule behaves identically across runs.
    #[test]
    fn kernel_run_until_respects_boundary(
        raws in proptest::collection::vec(0u64..2_000, 1..50),
        boundary_ms in 0u64..40,
    ) {
        let run = || {
            let mut kernel: Kernel<usize, Vec<(usize, SimTime)>> = Kernel::new(42);
            let sink = kernel.register("sink", |log: &mut Vec<(usize, SimTime)>, _, e| {
                log.push((e.payload, e.time));
            });
            let ids: Vec<_> = raws
                .iter()
                .enumerate()
                .map(|(i, &raw)| {
                    let (t, p) = key_of(raw);
                    kernel.scheduler().schedule(t, sink, p, i)
                })
                .collect();
            // Reschedule every fourth event one tick later.
            for (i, id) in ids.iter().enumerate() {
                if i % 4 == 0 {
                    let (t, p) = key_of(raws[i]);
                    assert!(kernel.scheduler().cancel(*id));
                    kernel
                        .scheduler()
                        .schedule(t + hmc_types::SimDuration::from_millis(1), sink, p, i);
                }
            }
            let boundary = SimTime::from_millis(boundary_ms);
            let mut log = Vec::new();
            let early = kernel.run_until(&mut log, boundary);
            assert_eq!(kernel.now(), boundary);
            assert!(log.iter().all(|&(_, t)| t <= boundary));
            assert_eq!(early, log.len() as u64);
            let late = kernel.run_to_idle(&mut log);
            assert!(kernel.is_idle());
            assert_eq!(early + late, raws.len() as u64);
            assert_eq!(kernel.stats().handler_invocations, raws.len() as u64);
            log
        };
        let a = run();
        prop_assert_eq!(a.len(), raws.len(), "an event was lost or duplicated");
        prop_assert_eq!(a, run(), "same schedule, different execution");
    }

    /// Cancel-then-repost interleavings: an event may be cancelled and
    /// replaced (possibly at the same key) at any point between pops.
    /// After every single operation the ledger balances —
    /// `scheduled == fired + cancelled + pending` — the cancelled
    /// original never fires, and the whole interleaving is deterministic.
    #[test]
    fn cancel_then_repost_balances_the_ledger(
        raws in proptest::collection::vec(0u64..2_000, 2..60),
        ops in proptest::collection::vec(0u64..6, 2..60),
    ) {
        let dst = ComponentId::default_for_tests();
        let run = || {
            let mut queue: EventQueue<usize> = EventQueue::new();
            let mut alive: Vec<(sim_core::EventId, usize)> = Vec::new();
            let mut cancelled_payloads = Vec::new();
            let mut fired = Vec::new();
            let mut next_payload = raws.len();
            let balanced = |q: &EventQueue<usize>| {
                let s = q.stats();
                s.scheduled == s.executed + s.cancelled + q.len() as u64
            };
            for (i, &raw) in raws.iter().enumerate() {
                let (t, p) = key_of(raw);
                alive.push((queue.push(t, dst, p, i), i));
                assert!(balanced(&queue), "ledger broke after push");
                match ops[i % ops.len()] {
                    // Cancel the oldest live event, then repost a
                    // replacement at the same key under a fresh payload.
                    0 => {
                        let (id, payload) = alive.remove(0);
                        assert!(queue.cancel(id), "live event refused cancellation");
                        assert!(!queue.cancel(id), "double cancel accepted");
                        cancelled_payloads.push(payload);
                        assert!(balanced(&queue), "ledger broke after cancel");
                        alive.push((queue.push(t, dst, p, next_payload), next_payload));
                        next_payload += 1;
                        assert!(balanced(&queue), "ledger broke after repost");
                    }
                    // Cancel the newest live event without a replacement.
                    1 => {
                        let (id, payload) = alive.pop().expect("just pushed");
                        assert!(queue.cancel(id));
                        cancelled_payloads.push(payload);
                        assert!(balanced(&queue), "ledger broke after cancel");
                    }
                    // Pop one event mid-stream.
                    2 | 3 => {
                        if let Some(event) = queue.pop() {
                            alive.retain(|&(id, _)| id != event.id);
                            fired.push(event.payload);
                        }
                        assert!(balanced(&queue), "ledger broke after pop");
                    }
                    _ => {}
                }
            }
            while let Some(event) = queue.pop() {
                fired.push(event.payload);
                assert!(balanced(&queue), "ledger broke during the final drain");
            }
            let stats = queue.stats();
            assert!(queue.is_empty(), "drain left pendings");
            assert_eq!(stats.executed + stats.cancelled, stats.scheduled);
            (fired, cancelled_payloads, stats)
        };
        let (fired, cancelled_payloads, stats) = run();
        for payload in &cancelled_payloads {
            prop_assert!(!fired.contains(payload), "cancelled event {payload} fired anyway");
        }
        prop_assert_eq!(
            fired.len() + cancelled_payloads.len(),
            stats.scheduled as usize,
            "an event neither fired nor was cancelled"
        );
        let mut unique = fired.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), fired.len(), "an event fired twice");
        prop_assert_eq!(run().0, fired, "same interleaving, different fire order");
    }

    /// Tombstone-drain interleavings: cancellations bury tombstones deep
    /// in the heap and pops discard them lazily. However pops and late
    /// cancels interleave, tombstoned events never surface, live pops
    /// never regress in `(time, priority)`, and
    /// `scheduled == fired + cancelled + pending` holds at every step.
    #[test]
    fn tombstone_drain_balances_the_ledger(
        raws in proptest::collection::vec(0u64..2_000, 1..80),
        mask in proptest::collection::vec(0u64..3, 1..80),
        late_mask in proptest::collection::vec(0u64..4, 1..80),
    ) {
        let dst = ComponentId::default_for_tests();
        let mut queue: EventQueue<usize> = EventQueue::new();
        let ids: Vec<_> = raws
            .iter()
            .enumerate()
            .map(|(i, &raw)| {
                let (t, p) = key_of(raw);
                queue.push(t, dst, p, i)
            })
            .collect();
        let balanced = |q: &EventQueue<usize>| {
            let s = q.stats();
            s.scheduled == s.executed + s.cancelled + q.len() as u64
        };
        // First wave: tombstone a subset while everything is pending.
        let mut dead: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if mask[i % mask.len()] == 0 {
                prop_assert!(queue.cancel(*id));
                dead.push(i);
                prop_assert!(balanced(&queue), "ledger broke while tombstoning");
            }
        }
        // Drain with late cancellations racing the pops.
        let mut fired = Vec::new();
        let mut last = (SimTime::ZERO, 0u64);
        let mut step = 0usize;
        while !queue.is_empty() {
            if late_mask[step % late_mask.len()] == 0 {
                // Cancel the first still-pending event; `cancel` itself is
                // the liveness test (it refuses fired or dead events).
                if let Some(i) = (0..ids.len()).find(|&i| queue.cancel(ids[i])) {
                    dead.push(i);
                    prop_assert!(balanced(&queue), "ledger broke on a late cancel");
                    step += 1;
                    continue;
                }
            }
            if let Some(event) = queue.pop() {
                prop_assert!(
                    (event.time, event.priority) >= last,
                    "a tombstone drain made time regress"
                );
                last = (event.time, event.priority);
                fired.push(event.payload);
                prop_assert!(balanced(&queue), "ledger broke on a pop");
            }
            step += 1;
        }
        for i in &dead {
            prop_assert!(!fired.contains(i), "tombstoned event {i} surfaced");
        }
        let stats = queue.stats();
        prop_assert_eq!(stats.scheduled, raws.len() as u64);
        prop_assert_eq!(stats.executed, fired.len() as u64);
        prop_assert_eq!(stats.cancelled, dead.len() as u64);
        prop_assert_eq!(stats.executed + stats.cancelled, stats.scheduled);
        prop_assert_eq!(queue.len(), 0);
        prop_assert_eq!(queue.next_time(), None);
    }
}

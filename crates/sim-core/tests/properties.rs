//! Property-based tests of the kernel's ordering guarantees: events
//! never execute out of timestamp order, tie-breaking is stable under
//! arbitrary insertion order, cancel/reschedule preserves determinism,
//! and the queue always drains empty.

use hmc_types::SimTime;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sim_core::{ComponentId, EventQueue, Kernel};

/// Decodes a raw draw into a (time, priority) key with plenty of
/// deliberate collisions so tie-breaking is actually exercised.
fn key_of(raw: u64) -> (SimTime, u64) {
    (SimTime::from_millis(raw % 40), (raw / 40) % 5)
}

/// Fisher–Yates driven by a seeded StdRng (the vendored rand has no
/// shuffle helper).
fn shuffled<T>(mut items: Vec<T>, seed: u64) -> Vec<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
    items
}

proptest! {
    /// Pop order is exactly the stable sort of push order by
    /// `(time, priority)` — timestamps never regress, and equal keys
    /// fire in scheduling order.
    #[test]
    fn pops_follow_time_priority_seq(raws in proptest::collection::vec(0u64..2_000, 1..80)) {
        let dst = ComponentId::default_for_tests();
        let mut queue: EventQueue<usize> = EventQueue::new();
        for (i, &raw) in raws.iter().enumerate() {
            let (t, p) = key_of(raw);
            queue.push(t, dst, p, i);
        }
        let mut expected: Vec<usize> = (0..raws.len()).collect();
        expected.sort_by_key(|&i| key_of(raws[i]));
        let mut popped = Vec::new();
        let mut last = (SimTime::ZERO, 0u64);
        while let Some(event) = queue.pop() {
            prop_assert!((event.time, event.priority) >= last, "queue went backwards");
            last = (event.time, event.priority);
            popped.push(event.payload);
        }
        prop_assert_eq!(popped, expected);
        prop_assert!(queue.is_empty());
        prop_assert_eq!(queue.len(), 0);
    }

    /// For events with pairwise-distinct `(time, priority)` keys the
    /// execution order is independent of insertion order.
    #[test]
    fn distinct_keys_ignore_insertion_order(
        raws in proptest::collection::vec(0u64..10_000, 1..60),
        perm_seed in 0u64..1_000_000,
    ) {
        let dst = ComponentId::default_for_tests();
        let mut keys: Vec<(SimTime, u64)> = raws.iter().map(|&r| key_of(r)).collect();
        keys.sort();
        keys.dedup();
        let pop_keys = |order: Vec<(SimTime, u64)>| {
            let mut queue: EventQueue<(SimTime, u64)> = EventQueue::new();
            for &(t, p) in &order {
                queue.push(t, dst, p, (t, p));
            }
            std::iter::from_fn(move || queue.pop().map(|e| e.payload)).collect::<Vec<_>>()
        };
        let a = pop_keys(keys.clone());
        let b = pop_keys(shuffled(keys.clone(), perm_seed));
        prop_assert_eq!(&a, &b, "insertion order leaked into execution order");
        prop_assert_eq!(a, keys, "execution order is the sorted key order");
    }

    /// Cancellation removes exactly the cancelled events, twice-built
    /// queues drain identically, and the bookkeeping adds up.
    #[test]
    fn cancel_preserves_determinism(
        raws in proptest::collection::vec(0u64..2_000, 1..60),
        mask in proptest::collection::vec(0u64..4, 1..60),
    ) {
        let dst = ComponentId::default_for_tests();
        let build_and_drain = || {
            let mut queue: EventQueue<usize> = EventQueue::new();
            let ids: Vec<_> = raws
                .iter()
                .enumerate()
                .map(|(i, &raw)| {
                    let (t, p) = key_of(raw);
                    queue.push(t, dst, p, i)
                })
                .collect();
            let mut cancelled = Vec::new();
            for (i, id) in ids.iter().enumerate() {
                if mask.get(i % mask.len()) == Some(&0) {
                    assert!(queue.cancel(*id));
                    assert!(!queue.cancel(*id), "double cancel accepted");
                    cancelled.push(i);
                }
            }
            let order: Vec<usize> = std::iter::from_fn(|| queue.pop().map(|e| e.payload)).collect();
            (order, cancelled, queue.stats(), queue.is_empty())
        };
        let (order_a, cancelled, stats, drained) = build_and_drain();
        let (order_b, ..) = build_and_drain();
        prop_assert_eq!(&order_a, &order_b, "same construction, different drain order");
        for i in &cancelled {
            prop_assert!(!order_a.contains(i), "cancelled event {i} fired anyway");
        }
        let mut expected: Vec<usize> =
            (0..raws.len()).filter(|i| !cancelled.contains(i)).collect();
        expected.sort_by_key(|&i| key_of(raws[i]));
        prop_assert_eq!(order_a, expected);
        prop_assert!(drained, "queue did not drain empty");
        prop_assert_eq!(stats.scheduled, raws.len() as u64);
        prop_assert_eq!(stats.executed + stats.cancelled, stats.scheduled);
    }

    /// `Kernel::run_until` executes exactly the events at or before the
    /// boundary, the clock lands on the boundary, and rescheduling via
    /// cancel+schedule behaves identically across runs.
    #[test]
    fn kernel_run_until_respects_boundary(
        raws in proptest::collection::vec(0u64..2_000, 1..50),
        boundary_ms in 0u64..40,
    ) {
        let run = || {
            let mut kernel: Kernel<usize, Vec<(usize, SimTime)>> = Kernel::new(42);
            let sink = kernel.register("sink", |log: &mut Vec<(usize, SimTime)>, _, e| {
                log.push((e.payload, e.time));
            });
            let ids: Vec<_> = raws
                .iter()
                .enumerate()
                .map(|(i, &raw)| {
                    let (t, p) = key_of(raw);
                    kernel.scheduler().schedule(t, sink, p, i)
                })
                .collect();
            // Reschedule every fourth event one tick later.
            for (i, id) in ids.iter().enumerate() {
                if i % 4 == 0 {
                    let (t, p) = key_of(raws[i]);
                    assert!(kernel.scheduler().cancel(*id));
                    kernel
                        .scheduler()
                        .schedule(t + hmc_types::SimDuration::from_millis(1), sink, p, i);
                }
            }
            let boundary = SimTime::from_millis(boundary_ms);
            let mut log = Vec::new();
            let early = kernel.run_until(&mut log, boundary);
            assert_eq!(kernel.now(), boundary);
            assert!(log.iter().all(|&(_, t)| t <= boundary));
            assert_eq!(early, log.len() as u64);
            let late = kernel.run_to_idle(&mut log);
            assert!(kernel.is_idle());
            assert_eq!(early + late, raws.len() as u64);
            assert_eq!(kernel.stats().handler_invocations, raws.len() as u64);
            log
        };
        let a = run();
        prop_assert_eq!(a.len(), raws.len(), "an event was lost or duplicated");
        prop_assert_eq!(a, run(), "same schedule, different execution");
    }
}

//! Property tests: the fault schedule is a pure function of the plan.

use faults::{FaultInjector, FaultPlan};
use hmc_types::{Celsius, SimTime};
use proptest::prelude::*;

fn plan(seed: u64, npu: f64, dropout: f64, reject: f64) -> FaultPlan {
    let mut plan = FaultPlan::none(seed);
    plan.npu.failure_rate = npu;
    plan.npu.timeout_rate = npu / 2.0;
    plan.sensor.dropout_rate = dropout;
    plan.sensor.spike_rate = dropout / 2.0;
    plan.dvfs.reject_rate = reject;
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Two injectors built from the same plan produce identical fault
    /// schedules across every domain.
    #[test]
    fn same_seed_same_schedule(
        seed in 0u64..10_000,
        npu in 0.0f64..0.8,
        dropout in 0.0f64..0.5,
        reject in 0.0f64..0.5,
        calls in 1usize..300,
    ) {
        let p = plan(seed, npu, dropout, reject);
        let mut a = FaultInjector::new(p);
        let mut b = FaultInjector::new(p);
        for i in 0..calls {
            let now = SimTime::from_millis(i as u64);
            let truth = Celsius::new(30.0 + (i % 40) as f64);
            prop_assert_eq!(a.npu_job(), b.npu_job());
            prop_assert_eq!(a.sensor(now, truth), b.sensor(now, truth));
            prop_assert_eq!(a.dvfs_transition(), b.dvfs_transition());
        }
        prop_assert_eq!(a.stats(), b.stats());
    }

    /// A zero-rate plan never produces a fault and returns every sensor
    /// sample unmodified, regardless of the seed.
    #[test]
    fn zero_plan_is_transparent(seed in 0u64..10_000, calls in 1usize..300) {
        let mut inj = FaultInjector::new(FaultPlan::none(seed));
        for i in 0..calls {
            let now = SimTime::from_millis(i as u64);
            let truth = Celsius::new(25.0 + i as f64 * 0.03);
            prop_assert_eq!(inj.npu_job(), faults::NpuFault::None);
            prop_assert_eq!(inj.sensor(now, truth), Some(truth));
            prop_assert_eq!(inj.dvfs_transition(), faults::DvfsFault::None);
        }
        prop_assert_eq!(inj.stats().total(), 0);
    }

    /// Fault frequency tracks the configured rate (law of large numbers,
    /// loose bounds).
    #[test]
    fn rates_are_respected(seed in 0u64..1000, rate in 0.1f64..0.9) {
        let mut p = FaultPlan::none(seed);
        p.npu.failure_rate = rate;
        let mut inj = FaultInjector::new(p);
        let n = 2000;
        let faults = (0..n)
            .filter(|_| inj.npu_job() == faults::NpuFault::DeviceFault)
            .count();
        let observed = faults as f64 / n as f64;
        prop_assert!((observed - rate).abs() < 0.08, "rate {rate}, observed {observed}");
    }
}

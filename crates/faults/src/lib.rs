//! Deterministic fault injection for the NPU / sensor / DVFS stack.
//!
//! Real HiKey 970 deployments see transient failures the idealized
//! simulator never produces: NPU jobs that error out or hang inside the
//! HiAI driver, thermal-sensor glitches (stuck-at registers, dropped
//! samples, impulse noise on the shared I²C bus), and cpufreq transitions
//! that the firmware rejects or applies late. This crate models those as a
//! declarative [`FaultPlan`] executed by a [`FaultInjector`]:
//!
//! * the plan is plain data (seed + per-domain rates) and serializable, so
//!   an experiment's fault schedule is part of its configuration,
//! * the injector draws from **one seeded RNG stream per fault domain**
//!   (NPU / sensor / DVFS), so enabling faults in one domain never
//!   perturbs the schedule of another,
//! * the same seed always reproduces the same fault schedule, and a plan
//!   with all rates at zero draws nothing at all — a zero-fault run is
//!   bit-identical to a run without any injector.
//!
//! # Fault taxonomy
//!
//! Two fault families share one seed. **Rate-driven** domains draw per
//! operation from seeded per-domain RNG streams inside [`FaultInjector`];
//! **timed** fleet faults are barrier-epoch events derived through pure
//! splitmix64 hashes by the [`StormBuilder`] schedule builder, which
//! unifies both families in a single [`FleetSchedule`].
//!
//! | Fault | Family | Unit | Effect |
//! |---|---|---|---|
//! | [`NpuFault`] | rate | NPU job | device fault / driver hang / latency spike |
//! | [`ServeFault`] | rate | dispatched batch | batch failure (breaker) / slowdown |
//! | sensor (via [`SensorFaultConfig`]) | rate | sample | dropout / stuck-at / noise / spike |
//! | [`DvfsFault`] | rate | V/f transition | reject / late apply |
//! | [`StorageFault`] | rate | checkpoint write | torn write / bit flip |
//! | [`TaskFaultPlan`] | pure per-index | pool task | injected panic |
//! | [`FleetFault::BoardCrash`] / [`FleetFault::BoardRejoin`] | timed | board | leave fleet, drain, restore from checkpoint |
//! | [`FleetFault::RackPartition`] / [`FleetFault::RackHeal`] | timed | rack | rack unreachable from the regional tier |
//! | [`FleetFault::HeartbeatLoss`] / [`FleetFault::HeartbeatRestore`] | timed | rack | failure detector sees silence |
//! | [`FleetFault::TierSlow`] / [`FleetFault::TierRecover`] | timed | regional tier | latency multiplied |
//!
//! # Examples
//!
//! ```
//! use faults::{FaultInjector, FaultPlan, NpuFault};
//!
//! let mut plan = FaultPlan::none(42);
//! plan.npu.failure_rate = 1.0;
//! let mut injector = FaultInjector::new(plan);
//! assert_eq!(injector.npu_job(), NpuFault::DeviceFault);
//! assert_eq!(injector.stats().npu_device_faults, 1);
//! ```

#![warn(missing_docs)]

mod breaker;
mod fleet;
mod injector;
mod plan;
mod storage;

pub use breaker::{BreakerState, CircuitBreaker};
pub use fleet::{FleetFault, FleetFaultEvent, FleetSchedule, StormBuilder};
pub use injector::{DvfsFault, FaultInjector, FaultStats, NpuFault, ServeFault};
pub use plan::{
    DvfsFaultConfig, FaultPlan, NpuFaultConfig, SensorFaultConfig, ServeFaultConfig, TaskFaultPlan,
};
pub use storage::{StorageFault, StorageFaultConfig};

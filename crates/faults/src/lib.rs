//! Deterministic fault injection for the NPU / sensor / DVFS stack.
//!
//! Real HiKey 970 deployments see transient failures the idealized
//! simulator never produces: NPU jobs that error out or hang inside the
//! HiAI driver, thermal-sensor glitches (stuck-at registers, dropped
//! samples, impulse noise on the shared I²C bus), and cpufreq transitions
//! that the firmware rejects or applies late. This crate models those as a
//! declarative [`FaultPlan`] executed by a [`FaultInjector`]:
//!
//! * the plan is plain data (seed + per-domain rates) and serializable, so
//!   an experiment's fault schedule is part of its configuration,
//! * the injector draws from **one seeded RNG stream per fault domain**
//!   (NPU / sensor / DVFS), so enabling faults in one domain never
//!   perturbs the schedule of another,
//! * the same seed always reproduces the same fault schedule, and a plan
//!   with all rates at zero draws nothing at all — a zero-fault run is
//!   bit-identical to a run without any injector.
//!
//! # Examples
//!
//! ```
//! use faults::{FaultInjector, FaultPlan, NpuFault};
//!
//! let mut plan = FaultPlan::none(42);
//! plan.npu.failure_rate = 1.0;
//! let mut injector = FaultInjector::new(plan);
//! assert_eq!(injector.npu_job(), NpuFault::DeviceFault);
//! assert_eq!(injector.stats().npu_device_faults, 1);
//! ```

#![warn(missing_docs)]

mod breaker;
mod injector;
mod plan;
mod storage;

pub use breaker::{BreakerState, CircuitBreaker};
pub use injector::{DvfsFault, FaultInjector, FaultStats, NpuFault, ServeFault};
pub use plan::{
    DvfsFaultConfig, FaultPlan, NpuFaultConfig, SensorFaultConfig, ServeFaultConfig, TaskFaultPlan,
};
pub use storage::{StorageFault, StorageFaultConfig};

//! Consecutive-failure circuit breaker with half-open probing.
//!
//! Originally private to the TOP-IL migration policy's NPU degradation
//! ladder, the breaker is now a shared building block: the inference
//! service (`npu-serve`) runs one breaker per pooled device so a degraded
//! accelerator drains to the CPU fallback instead of stalling the fleet.

/// State of a circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// The guarded resource is trusted.
    Closed,
    /// Too many consecutive failures; the resource is bypassed while the
    /// cooldown runs.
    Open,
    /// Cooldown elapsed; the next period probes the resource with one
    /// real attempt.
    HalfOpen,
}

/// Consecutive-failure circuit breaker guarding a fallible resource
/// (an NPU device, a remote service).
///
/// The breaker opens after `threshold` consecutive failures, stays open
/// for `cooldown` periods (see [`CircuitBreaker::epoch_elapsed`]), then
/// half-opens for a single probe: a failed probe reopens immediately, a
/// success closes it.
///
/// # Examples
///
/// ```
/// use faults::{BreakerState, CircuitBreaker};
///
/// let mut b = CircuitBreaker::new(2, 1);
/// b.record_failure();
/// b.record_failure();
/// assert_eq!(b.state(), BreakerState::Open);
/// assert!(b.epoch_elapsed()); // cooldown over: probe allowed
/// b.record_success();
/// assert_eq!(b.state(), BreakerState::Closed);
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    cooldown_left: u32,
    threshold: u32,
    cooldown_epochs: u32,
    opens: u64,
}

impl CircuitBreaker {
    /// Creates a closed breaker that opens after `threshold` consecutive
    /// failures and cools down for `cooldown_epochs` periods.
    pub fn new(threshold: u32, cooldown_epochs: u32) -> Self {
        CircuitBreaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_left: 0,
            threshold,
            cooldown_epochs,
            opens: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker opened.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Records a successful use of the resource: resets the failure count
    /// and closes the breaker (a successful half-open probe closes it).
    ///
    /// A stale success arriving while the breaker is open — a request
    /// that was already in flight when the trip happened — is ignored:
    /// re-entry from open always goes through the half-open probe, never
    /// straight to closed.
    pub fn record_success(&mut self) {
        if self.state == BreakerState::Open {
            return;
        }
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// Records a failed use of the resource, opening the breaker when the
    /// consecutive-failure threshold is reached. A failed half-open probe
    /// reopens immediately.
    pub fn record_failure(&mut self) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let trip = match self.state {
            // A failed half-open probe reopens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.threshold,
            BreakerState::Open => false,
        };
        if trip {
            self.state = BreakerState::Open;
            self.cooldown_left = self.cooldown_epochs;
            self.opens += 1;
        }
    }

    /// Force-opens the breaker regardless of the failure count, e.g. when
    /// the failure detector declares the guarded resource dead (heartbeat
    /// silence) rather than observing request failures. Counts as an open;
    /// a no-op when the breaker is already open.
    pub fn trip(&mut self) {
        if self.state != BreakerState::Open {
            self.state = BreakerState::Open;
            self.cooldown_left = self.cooldown_epochs;
            self.opens += 1;
        }
    }

    /// Puts the breaker straight into half-open probation: the next use is
    /// a probe (success closes, failure reopens). This is the rejoin
    /// entry-point — a board coming back from a crash must prove itself
    /// with one successful request before being trusted again. Does not
    /// count as an open.
    pub fn begin_probation(&mut self) {
        self.state = BreakerState::HalfOpen;
        self.consecutive_failures = 0;
        self.cooldown_left = 0;
    }

    /// Advances the open-state cooldown by one period. Returns `true` when
    /// the breaker just moved to half-open (a probe is allowed).
    pub fn epoch_elapsed(&mut self) -> bool {
        if self.state == BreakerState::Open {
            self.cooldown_left = self.cooldown_left.saturating_sub(1);
            if self.cooldown_left == 0 {
                self.state = BreakerState::HalfOpen;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_and_probes_after_cooldown() {
        let mut breaker = CircuitBreaker::new(3, 2);
        assert_eq!(breaker.state(), BreakerState::Closed);
        breaker.record_failure();
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Closed, "below threshold");
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.opens(), 1);
        assert!(!breaker.epoch_elapsed(), "cooldown epoch 1 of 2");
        assert!(breaker.epoch_elapsed(), "cooldown over: probe allowed");
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        // A failed probe reopens immediately.
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.opens(), 2);
        assert!(!breaker.epoch_elapsed());
        assert!(breaker.epoch_elapsed());
        // A successful probe closes the breaker again.
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn success_resets_the_failure_count() {
        let mut breaker = CircuitBreaker::new(2, 1);
        breaker.record_failure();
        breaker.record_success();
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Closed, "count was reset");
    }

    #[test]
    fn stale_success_while_open_does_not_close() {
        // A request in flight when the breaker trips may still succeed;
        // that success must not short-circuit the cooldown + probe.
        let mut breaker = CircuitBreaker::new(1, 2);
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Open, "stale success ignored");
        assert!(
            !breaker.epoch_elapsed(),
            "cooldown unchanged by the success"
        );
        assert!(breaker.epoch_elapsed());
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed, "probe closes");
    }

    #[test]
    fn epoch_elapsed_is_inert_while_closed() {
        let mut breaker = CircuitBreaker::new(1, 1);
        assert!(!breaker.epoch_elapsed());
        assert_eq!(breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn trip_opens_once_and_respects_cooldown() {
        let mut breaker = CircuitBreaker::new(3, 2);
        breaker.trip();
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.opens(), 1);
        breaker.trip();
        assert_eq!(breaker.opens(), 1, "tripping an open breaker is a no-op");
        assert!(!breaker.epoch_elapsed());
        assert!(breaker.epoch_elapsed());
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn probation_probes_like_half_open() {
        let mut breaker = CircuitBreaker::new(3, 2);
        breaker.begin_probation();
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert_eq!(breaker.opens(), 0, "probation is not an open");
        // A failed probe reopens immediately, as from a cooldown half-open.
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.opens(), 1);
        // A successful probe closes.
        let mut breaker = CircuitBreaker::new(3, 2);
        breaker.begin_probation();
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
    }
}

//! Fleet-scale fault family: board churn, rack partitions, heartbeat
//! loss, and tier slowdowns, under one seeded schedule builder.
//!
//! The per-request fault domains ([`FaultPlan`]) model *component*
//! misbehaviour — a batch that fails on the device, a sensor sample that
//! drops. Fleet faults model *topology* misbehaviour: whole boards
//! crashing and rejoining, a rack losing its network partition, the
//! regional tier running slow. They are **timed events**, not rates: a
//! [`FleetFaultEvent`] names the barrier epoch at which the fault fires,
//! so the schedule is plain data and replays identically under any driver
//! (lockstep or event kernel) and any thread budget.
//!
//! [`StormBuilder`] unifies both families: it owns a [`FaultPlan`] for
//! the rate-driven domains and derives every timed event from the same
//! seed through a splitmix64 finalizer (pure per-index decisions, no
//! shared RNG stream), then freezes the result into a [`FleetSchedule`].
//!
//! # Examples
//!
//! ```
//! use faults::{FleetFault, StormBuilder};
//!
//! let schedule = StormBuilder::new(42, 8, 40)
//!     .crash_wave(10, 3, 6)
//!     .rack_partition(0, 20, 8)
//!     .build();
//! // Same seed, same schedule.
//! let again = StormBuilder::new(42, 8, 40)
//!     .crash_wave(10, 3, 6)
//!     .rack_partition(0, 20, 8)
//!     .build();
//! assert_eq!(schedule.events(), again.events());
//! assert!(schedule.events().iter().any(|e| matches!(
//!     e.fault,
//!     FleetFault::BoardCrash { .. }
//! )));
//! ```

use serde::{Deserialize, Serialize};

use crate::plan::FaultPlan;

/// A fleet-topology fault. Paired variants (`BoardCrash`/`BoardRejoin`,
/// `RackPartition`/`RackHeal`, …) bracket an episode; the schedule
/// builder always emits both ends so every episode is bounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FleetFault {
    /// Board `board` crashes at the epoch boundary: it drains in-flight
    /// work, hands queued arrivals to a sibling, and leaves the fleet.
    BoardCrash {
        /// Index of the crashing board.
        board: usize,
    },
    /// Board `board` rejoins, restoring policy state from its last
    /// checkpoint; its breaker starts half-open (probation).
    BoardRejoin {
        /// Index of the rejoining board.
        board: usize,
    },
    /// Rack `rack` is partitioned from the regional tier: requests routed
    /// to it fail over immediately.
    RackPartition {
        /// Index of the partitioned rack.
        rack: usize,
    },
    /// Rack `rack`'s partition heals.
    RackHeal {
        /// Index of the healed rack.
        rack: usize,
    },
    /// Rack `rack` stops emitting heartbeats (the service itself is
    /// healthy — only the failure detector sees silence).
    HeartbeatLoss {
        /// Index of the silent rack.
        rack: usize,
    },
    /// Rack `rack` resumes heartbeats.
    HeartbeatRestore {
        /// Index of the recovered rack.
        rack: usize,
    },
    /// The regional tier slows down: its device latency is multiplied by
    /// `factor_milli / 1000` (stored in fixed-point so the event is `Eq`
    /// and hashable).
    TierSlow {
        /// Latency multiplier in thousandths (2500 = 2.5x).
        factor_milli: u32,
    },
    /// The regional tier recovers its nominal latency.
    TierRecover,
    /// Region `region` loses its backbone to the regional tier: every
    /// rack in the region fails over straight to the CPU rung (the
    /// regional service is unreachable, not failing).
    RegionOutage {
        /// Index of the darkened region.
        region: usize,
    },
    /// Region `region`'s backbone is restored.
    RegionRestore {
        /// Index of the restored region.
        region: usize,
    },
}

/// A timed fleet fault: `fault` fires at the start of barrier `epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetFaultEvent {
    /// Barrier epoch at which the fault takes effect.
    pub epoch: u64,
    /// The fault.
    pub fault: FleetFault,
}

/// Splitmix64-style finalizer: hashes `(seed, index)` to a uniform u64.
/// Pure per-index, so schedules never depend on evaluation order.
/// Delegates to the workspace-shared finalizer in `sim_core::rng`.
fn mix(seed: u64, index: u64) -> u64 {
    sim_core::mix_indexed(seed, index)
}

/// Uniform draw in `[0, bound)` from the hash of `(seed, index)`.
fn draw(seed: u64, index: u64, bound: u64) -> u64 {
    if bound == 0 {
        return 0;
    }
    mix(seed, index) % bound
}

/// A frozen fleet fault schedule: the rate-driven [`FaultPlan`] plus the
/// timed [`FleetFaultEvent`]s, sorted by `(epoch, deterministic order)`.
///
/// Built by [`StormBuilder`]; consumed by the fleet/chaos drivers, which
/// apply `events_at(epoch)` at each barrier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSchedule {
    seed: u64,
    boards: usize,
    epochs: u64,
    plan: FaultPlan,
    events: Vec<FleetFaultEvent>,
}

impl FleetSchedule {
    /// The schedule seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of boards the schedule was built for.
    pub fn boards(&self) -> usize {
        self.boards
    }

    /// Horizon, in barrier epochs.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The rate-driven fault plan (serve-path batch faults etc.).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// All timed events, sorted by epoch.
    pub fn events(&self) -> &[FleetFaultEvent] {
        &self.events
    }

    /// The events firing at the start of `epoch`.
    pub fn events_at(&self, epoch: u64) -> impl Iterator<Item = &FleetFaultEvent> {
        self.events.iter().filter(move |e| e.epoch == epoch)
    }

    /// Crash episodes of `board` as `(crash_epoch, rejoin_epoch)` spans:
    /// the board is down for epochs in `[crash, rejoin)`. An episode the
    /// builder never closed rejoins at the horizon.
    pub fn down_spans(&self, board: usize) -> Vec<(u64, u64)> {
        let mut spans = Vec::new();
        let mut open: Option<u64> = None;
        for event in &self.events {
            match event.fault {
                FleetFault::BoardCrash { board: b } if b == board && open.is_none() => {
                    open = Some(event.epoch);
                }
                FleetFault::BoardRejoin { board: b } if b == board && open.is_some() => {
                    spans.push((open.take().expect("guarded"), event.epoch));
                }
                _ => {}
            }
        }
        if let Some(start) = open {
            spans.push((start, self.epochs));
        }
        spans
    }

    /// Whether `board` is alive (not mid-crash) during `epoch`.
    pub fn alive(&self, board: usize, epoch: u64) -> bool {
        self.down_spans(board)
            .iter()
            .all(|&(from, until)| !(from..until).contains(&epoch))
    }

    /// True when the schedule carries no timed event and a zero plan.
    pub fn is_zero(&self) -> bool {
        self.events.is_empty() && self.plan.is_zero()
    }
}

/// Seeded builder unifying the rate-driven [`FaultPlan`] domains and the
/// timed fleet faults under one seed.
///
/// Each preset (`crash_wave`, `churn`, `rack_partition`, …) derives its
/// randomness from `(seed, preset tag, index)` through a splitmix64
/// finalizer, so composing presets never reorders each other's draws.
/// Crash placement guarantees at least one board stays alive at every
/// epoch.
#[derive(Debug, Clone)]
pub struct StormBuilder {
    seed: u64,
    boards: usize,
    epochs: u64,
    plan: FaultPlan,
    events: Vec<FleetFaultEvent>,
    /// `down[board]` holds the spans already committed, for the
    /// min-alive guarantee.
    down: Vec<Vec<(u64, u64)>>,
}

/// Preset tags: domain-separate the splitmix64 streams per preset.
const TAG_CRASH_WAVE: u64 = 0x1000_0000;
const TAG_CHURN: u64 = 0x2000_0000;

impl StormBuilder {
    /// Starts an empty schedule for `boards` boards over `epochs` barrier
    /// epochs, with a zero [`FaultPlan`] carrying the same seed.
    pub fn new(seed: u64, boards: usize, epochs: u64) -> Self {
        StormBuilder {
            seed,
            boards,
            epochs,
            plan: FaultPlan::none(seed),
            events: Vec::new(),
            down: vec![Vec::new(); boards],
        }
    }

    /// Sets the serve-path batch failure rate (rate-driven domain).
    pub fn serve_failures(mut self, rate: f64) -> Self {
        self.plan.serve.failure_rate = rate;
        self
    }

    /// Sets the serve-path slowdown rate and factor (rate-driven domain).
    pub fn serve_slowdowns(mut self, rate: f64, factor: f64) -> Self {
        self.plan.serve.slowdown_rate = rate;
        self.plan.serve.slowdown_factor = factor;
        self
    }

    /// Replaces the whole rate-driven plan (the seed is preserved).
    pub fn with_plan(mut self, mut plan: FaultPlan) -> Self {
        plan.seed = self.seed;
        self.plan = plan;
        self
    }

    fn board_is_down(&self, board: usize, epoch: u64) -> bool {
        self.down[board]
            .iter()
            .any(|&(from, until)| (from..until).contains(&epoch))
    }

    fn alive_count(&self, epoch: u64) -> usize {
        (0..self.boards)
            .filter(|&b| !self.board_is_down(b, epoch))
            .count()
    }

    /// Commits a crash of `board` over `[from, until)` if the fleet keeps
    /// at least one alive board throughout; returns whether it landed.
    fn try_crash(&mut self, board: usize, from: u64, until: u64) -> bool {
        if board >= self.boards || from >= until || from >= self.epochs {
            return false;
        }
        let until = until.min(self.epochs);
        if self.board_is_down(board, from) || self.board_is_down(board, until.saturating_sub(1)) {
            return false;
        }
        // Min-alive guarantee: every epoch of the span must keep a
        // sibling up to absorb the reassigned work.
        if (from..until).any(|e| self.alive_count(e) <= 1 || self.board_is_down(board, e)) {
            return false;
        }
        self.down[board].push((from, until));
        self.events.push(FleetFaultEvent {
            epoch: from,
            fault: FleetFault::BoardCrash { board },
        });
        if until < self.epochs {
            self.events.push(FleetFaultEvent {
                epoch: until,
                fault: FleetFault::BoardRejoin { board },
            });
        }
        true
    }

    /// A crash wave: at epoch `at`, `count` distinct boards (drawn from
    /// the seed) crash simultaneously and rejoin after `down_epochs`.
    /// Boards that would break the min-alive guarantee are skipped.
    pub fn crash_wave(mut self, at: u64, count: usize, down_epochs: u64) -> Self {
        let mut landed = 0usize;
        let mut index = 0u64;
        // Bounded probing: `4 * boards` draws is enough to visit every
        // board with high probability; determinism matters more than
        // hitting `count` exactly on tiny fleets.
        while landed < count && index < (self.boards as u64) * 4 {
            let board = draw(self.seed ^ TAG_CRASH_WAVE ^ at, index, self.boards as u64) as usize;
            index += 1;
            if self.try_crash(board, at, at + down_epochs.max(1)) {
                landed += 1;
            }
        }
        self
    }

    /// Continuous churn: every `period` epochs one seeded board crashes
    /// for `down_epochs`. Crashes that would break the min-alive
    /// guarantee are skipped.
    pub fn churn(mut self, period: u64, down_epochs: u64) -> Self {
        if period == 0 {
            return self;
        }
        let mut wave = 0u64;
        let mut at = period;
        while at < self.epochs {
            let board = draw(self.seed ^ TAG_CHURN, wave, self.boards as u64) as usize;
            self.try_crash(board, at, at + down_epochs.max(1));
            wave += 1;
            at += period;
        }
        self
    }

    /// Partitions rack `rack` from the regional tier over
    /// `[at, at + heal_after)`.
    pub fn rack_partition(mut self, rack: usize, at: u64, heal_after: u64) -> Self {
        if at >= self.epochs {
            return self;
        }
        self.events.push(FleetFaultEvent {
            epoch: at,
            fault: FleetFault::RackPartition { rack },
        });
        let heal = at + heal_after.max(1);
        if heal < self.epochs {
            self.events.push(FleetFaultEvent {
                epoch: heal,
                fault: FleetFault::RackHeal { rack },
            });
        }
        self
    }

    /// Silences rack `rack`'s heartbeats over `[at, at + restore_after)`.
    pub fn heartbeat_loss(mut self, rack: usize, at: u64, restore_after: u64) -> Self {
        if at >= self.epochs {
            return self;
        }
        self.events.push(FleetFaultEvent {
            epoch: at,
            fault: FleetFault::HeartbeatLoss { rack },
        });
        let restore = at + restore_after.max(1);
        if restore < self.epochs {
            self.events.push(FleetFaultEvent {
                epoch: restore,
                fault: FleetFault::HeartbeatRestore { rack },
            });
        }
        self
    }

    /// Darkens region `region`'s backbone over `[at, at + restore_after)`:
    /// a regional outage storm. While dark, the region's racks cannot
    /// reach their regional tier and every failover lands on the CPU
    /// rung.
    pub fn region_outage(mut self, region: usize, at: u64, restore_after: u64) -> Self {
        if at >= self.epochs {
            return self;
        }
        self.events.push(FleetFaultEvent {
            epoch: at,
            fault: FleetFault::RegionOutage { region },
        });
        let restore = at + restore_after.max(1);
        if restore < self.epochs {
            self.events.push(FleetFaultEvent {
                epoch: restore,
                fault: FleetFault::RegionRestore { region },
            });
        }
        self
    }

    /// Slows the regional tier by `factor` over `[at, at + recover_after)`.
    pub fn slow_tier(mut self, factor: f64, at: u64, recover_after: u64) -> Self {
        if at >= self.epochs {
            return self;
        }
        let factor_milli = (factor.max(1.0) * 1000.0).round() as u32;
        self.events.push(FleetFaultEvent {
            epoch: at,
            fault: FleetFault::TierSlow { factor_milli },
        });
        let recover = at + recover_after.max(1);
        if recover < self.epochs {
            self.events.push(FleetFaultEvent {
                epoch: recover,
                fault: FleetFault::TierRecover,
            });
        }
        self
    }

    /// Freezes the schedule. Events are sorted by `(epoch, insertion
    /// order)` — a stable sort, so composing presets in a fixed order
    /// yields a fixed schedule.
    pub fn build(mut self) -> FleetSchedule {
        self.events.sort_by_key(|e| e.epoch);
        FleetSchedule {
            seed: self.seed,
            boards: self.boards,
            epochs: self.epochs,
            plan: self.plan,
            events: self.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let build = || {
            StormBuilder::new(7, 16, 100)
                .crash_wave(10, 4, 8)
                .churn(15, 5)
                .rack_partition(1, 30, 10)
                .heartbeat_loss(0, 50, 6)
                .slow_tier(2.5, 70, 10)
                .serve_failures(0.1)
                .build()
        };
        assert_eq!(build(), build());
        assert_ne!(
            build().events(),
            StormBuilder::new(8, 16, 100)
                .crash_wave(10, 4, 8)
                .churn(15, 5)
                .build()
                .events()
        );
    }

    #[test]
    fn crash_wave_brackets_every_episode() {
        let schedule = StormBuilder::new(3, 8, 40).crash_wave(5, 3, 6).build();
        let crashes = schedule
            .events()
            .iter()
            .filter(|e| matches!(e.fault, FleetFault::BoardCrash { .. }))
            .count();
        let rejoins = schedule
            .events()
            .iter()
            .filter(|e| matches!(e.fault, FleetFault::BoardRejoin { .. }))
            .count();
        assert_eq!(crashes, 3);
        assert_eq!(rejoins, 3, "every crash inside the horizon rejoins");
        for board in 0..8 {
            for (from, until) in schedule.down_spans(board) {
                assert!(from < until);
                assert!(!schedule.alive(board, from));
                assert!(schedule.alive(board, until.saturating_sub(from) + from));
            }
        }
    }

    #[test]
    fn min_alive_guarantee_holds_under_heavy_churn() {
        let schedule = StormBuilder::new(11, 3, 60)
            .crash_wave(2, 3, 50)
            .churn(1, 20)
            .build();
        for epoch in 0..60 {
            let alive = (0..3).filter(|&b| schedule.alive(b, epoch)).count();
            assert!(alive >= 1, "epoch {epoch} left zero boards alive");
        }
    }

    #[test]
    fn spans_and_alive_agree() {
        let schedule = StormBuilder::new(5, 4, 30).churn(4, 3).build();
        for board in 0..4 {
            let spans = schedule.down_spans(board);
            for epoch in 0..30 {
                let down = spans.iter().any(|&(f, u)| (f..u).contains(&epoch));
                assert_eq!(schedule.alive(board, epoch), !down);
            }
        }
    }

    #[test]
    fn unclosed_episode_rejoins_at_horizon() {
        // down_epochs pushes the rejoin past the horizon: the span must
        // clamp and no rejoin event is emitted.
        let schedule = StormBuilder::new(1, 4, 10).crash_wave(8, 1, 100).build();
        let board = schedule
            .events()
            .iter()
            .find_map(|e| match e.fault {
                FleetFault::BoardCrash { board } => Some(board),
                _ => None,
            })
            .expect("one crash landed");
        assert_eq!(schedule.down_spans(board), vec![(8, 10)]);
        assert!(!schedule
            .events()
            .iter()
            .any(|e| matches!(e.fault, FleetFault::BoardRejoin { .. })));
    }

    #[test]
    fn region_outage_brackets_the_dark_span() {
        let schedule = StormBuilder::new(4, 8, 40).region_outage(2, 10, 8).build();
        let events: Vec<_> = schedule.events().to_vec();
        assert!(events.contains(&FleetFaultEvent {
            epoch: 10,
            fault: FleetFault::RegionOutage { region: 2 },
        }));
        assert!(events.contains(&FleetFaultEvent {
            epoch: 18,
            fault: FleetFault::RegionRestore { region: 2 },
        }));
        // An outage running past the horizon never emits its restore.
        let open = StormBuilder::new(4, 8, 40)
            .region_outage(2, 35, 100)
            .build();
        assert!(!open
            .events()
            .iter()
            .any(|e| matches!(e.fault, FleetFault::RegionRestore { .. })));
    }

    #[test]
    fn zero_schedule_is_zero() {
        assert!(StormBuilder::new(9, 4, 10).build().is_zero());
        assert!(!StormBuilder::new(9, 4, 10)
            .serve_failures(0.5)
            .build()
            .is_zero());
    }
}

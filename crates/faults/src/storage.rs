//! Storage fault model: torn writes and bit flips against snapshot files.
//!
//! The checkpoint store promises crash safety; this module supplies the
//! crashes. A torn write models power loss mid-`write(2)` (the file keeps
//! only a prefix of its bytes), a bit flip models media corruption under a
//! valid length. Both are drawn from the injector's dedicated storage RNG
//! stream, so enabling them never perturbs the NPU/sensor/DVFS schedules.

use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

/// Storage fault model. All rates are per written file, in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StorageFaultConfig {
    /// Probability that a write is torn: only a prefix of the bytes lands.
    pub torn_write_rate: f64,
    /// Probability that a written file suffers a single flipped bit.
    pub bit_flip_rate: f64,
}

/// Fate drawn for one file write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// The write lands intact.
    None,
    /// Only the first `keep` bytes land; the rest are lost.
    TornWrite {
        /// Number of leading bytes preserved.
        keep: usize,
    },
    /// Bit `bit` of byte `offset` is inverted.
    BitFlip {
        /// Byte offset of the flip.
        offset: usize,
        /// Bit index within the byte (0..8).
        bit: u8,
    },
}

impl StorageFault {
    /// Applies the fault to an in-memory file image.
    ///
    /// # Examples
    ///
    /// ```
    /// use faults::StorageFault;
    ///
    /// let mut bytes = vec![0u8; 4];
    /// StorageFault::BitFlip { offset: 2, bit: 0 }.apply(&mut bytes);
    /// assert_eq!(bytes, [0, 0, 1, 0]);
    /// StorageFault::TornWrite { keep: 1 }.apply(&mut bytes);
    /// assert_eq!(bytes, [0]);
    /// ```
    pub fn apply(self, bytes: &mut Vec<u8>) {
        match self {
            StorageFault::None => {}
            StorageFault::TornWrite { keep } => bytes.truncate(keep),
            StorageFault::BitFlip { offset, bit } => {
                if let Some(b) = bytes.get_mut(offset) {
                    *b ^= 1u8 << (bit % 8);
                }
            }
        }
    }

    /// Applies the fault destructively to a file on disk (read, corrupt,
    /// rewrite in place — deliberately *not* atomic; that is the point).
    pub fn apply_to_file(self, path: &Path) -> io::Result<()> {
        if self == StorageFault::None {
            return Ok(());
        }
        let mut bytes = fs::read(path)?;
        self.apply(&mut bytes);
        fs::write(path, &bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_zero() {
        let cfg = StorageFaultConfig::default();
        assert_eq!(cfg.torn_write_rate, 0.0);
        assert_eq!(cfg.bit_flip_rate, 0.0);
    }

    #[test]
    fn torn_write_keeps_prefix() {
        let mut bytes = vec![1, 2, 3, 4, 5];
        StorageFault::TornWrite { keep: 2 }.apply(&mut bytes);
        assert_eq!(bytes, [1, 2]);
    }

    #[test]
    fn bit_flip_out_of_range_is_noop() {
        let mut bytes = vec![0u8; 2];
        StorageFault::BitFlip { offset: 99, bit: 3 }.apply(&mut bytes);
        assert_eq!(bytes, [0, 0]);
    }

    #[test]
    fn apply_to_file_round_trips() {
        let path = std::env::temp_dir().join(format!("storage-fault-{}", std::process::id()));
        fs::write(&path, [0b0000_0000u8]).unwrap();
        StorageFault::BitFlip { offset: 0, bit: 7 }
            .apply_to_file(&path)
            .unwrap();
        assert_eq!(fs::read(&path).unwrap(), [0b1000_0000]);
        StorageFault::TornWrite { keep: 0 }
            .apply_to_file(&path)
            .unwrap();
        assert_eq!(fs::read(&path).unwrap(), Vec::<u8>::new());
        fs::remove_file(&path).ok();
    }
}

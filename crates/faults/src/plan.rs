//! Declarative fault plans: seed + per-domain fault rates.

use hmc_types::SimDuration;
use serde::{Deserialize, Serialize};

use crate::storage::StorageFaultConfig;

/// NPU fault model. All rates are per submitted job, in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NpuFaultConfig {
    /// Probability that a job fails with a device fault (the device then
    /// needs a reset before it accepts work again).
    pub failure_rate: f64,
    /// Probability that a job hangs inside the driver and never completes.
    pub timeout_rate: f64,
    /// Probability that a job completes but with inflated latency.
    pub latency_spike_rate: f64,
    /// Multiplier applied to the latency of a spiking job.
    pub latency_spike_factor: f64,
}

impl Default for NpuFaultConfig {
    fn default() -> Self {
        NpuFaultConfig {
            failure_rate: 0.0,
            timeout_rate: 0.0,
            latency_spike_rate: 0.0,
            latency_spike_factor: 10.0,
        }
    }
}

/// Serving-path fault model for the shared NPU inference service. All
/// rates are per *dispatched batch*, in `[0, 1]` — the serve path batches
/// many board requests into one device job, so one fault here degrades a
/// whole batch (which then drains to the CPU fallback).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeFaultConfig {
    /// Probability that a dispatched batch fails on the device (counts
    /// toward the device's circuit breaker).
    pub failure_rate: f64,
    /// Probability that a dispatched batch completes slowed down.
    pub slowdown_rate: f64,
    /// Multiplier applied to the device latency of a slowed batch.
    pub slowdown_factor: f64,
}

impl Default for ServeFaultConfig {
    fn default() -> Self {
        ServeFaultConfig {
            failure_rate: 0.0,
            slowdown_rate: 0.0,
            slowdown_factor: 8.0,
        }
    }
}

/// Thermal-sensor fault model. All rates are per sample, in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorFaultConfig {
    /// Probability that a sample is dropped (no reading available).
    pub dropout_rate: f64,
    /// Probability that the sensor latches its current value (stuck-at).
    pub stuck_rate: f64,
    /// How long a stuck-at episode lasts.
    pub stuck_duration: SimDuration,
    /// Standard deviation of additive noise, in kelvin (0 disables).
    pub noise_std: f64,
    /// Probability of an impulse spike on a sample.
    pub spike_rate: f64,
    /// Magnitude of an impulse spike, in kelvin (sign drawn randomly).
    pub spike_magnitude: f64,
}

impl Default for SensorFaultConfig {
    fn default() -> Self {
        SensorFaultConfig {
            dropout_rate: 0.0,
            stuck_rate: 0.0,
            stuck_duration: SimDuration::from_millis(200),
            noise_std: 0.0,
            spike_rate: 0.0,
            spike_magnitude: 20.0,
        }
    }
}

/// DVFS actuation fault model. All rates are per requested transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsFaultConfig {
    /// Probability that a V/f transition is rejected outright.
    pub reject_rate: f64,
    /// Probability that a transition is applied late.
    pub delay_rate: f64,
    /// How late a delayed transition lands.
    pub delay: SimDuration,
}

impl Default for DvfsFaultConfig {
    fn default() -> Self {
        DvfsFaultConfig {
            reject_rate: 0.0,
            delay_rate: 0.0,
            delay: SimDuration::from_millis(20),
        }
    }
}

/// A complete fault plan: one seed, one config per fault domain.
///
/// The plan is plain serializable data; pass it to
/// [`FaultInjector::new`](crate::FaultInjector::new) to execute it. The
/// same plan (seed included) always reproduces the same fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the fault schedule. Each domain derives its own stream.
    pub seed: u64,
    /// NPU job faults.
    pub npu: NpuFaultConfig,
    /// Shared-NPU-service batch faults (the serve path).
    pub serve: ServeFaultConfig,
    /// Thermal-sensor faults.
    pub sensor: SensorFaultConfig,
    /// DVFS actuation faults.
    pub dvfs: DvfsFaultConfig,
    /// Storage faults against checkpoint/snapshot writes.
    pub storage: StorageFaultConfig,
}

impl FaultPlan {
    /// A plan with every fault rate at zero: the injector never draws from
    /// its RNGs and never perturbs the run.
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            npu: NpuFaultConfig::default(),
            serve: ServeFaultConfig::default(),
            sensor: SensorFaultConfig::default(),
            dvfs: DvfsFaultConfig::default(),
            storage: StorageFaultConfig::default(),
        }
    }

    /// Whether the plan can produce any fault at all.
    pub fn is_zero(&self) -> bool {
        self.npu.failure_rate == 0.0
            && self.npu.timeout_rate == 0.0
            && self.npu.latency_spike_rate == 0.0
            && self.serve.failure_rate == 0.0
            && self.serve.slowdown_rate == 0.0
            && self.sensor.dropout_rate == 0.0
            && self.sensor.stuck_rate == 0.0
            && self.sensor.noise_std == 0.0
            && self.sensor.spike_rate == 0.0
            && self.dvfs.reject_rate == 0.0
            && self.dvfs.delay_rate == 0.0
            && self.storage.torn_write_rate == 0.0
            && self.storage.bit_flip_rate == 0.0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none(0)
    }
}

/// Deterministic per-task panic injection for worker-pool stress tests.
///
/// Unlike the [`FaultInjector`](crate::FaultInjector) domains, which draw
/// from sequential RNG streams, a worker pool executes tasks from many
/// threads at once, so the fault decision must be a pure function of the
/// task index — any shared mutable RNG would make the schedule depend on
/// thread interleaving. [`TaskFaultPlan::should_panic`] hashes
/// `(seed, task)` through a splitmix64-style finalizer and compares the
/// result against `panic_rate`, giving every thread count the identical
/// fault schedule.
///
/// # Examples
///
/// ```
/// use faults::TaskFaultPlan;
/// let plan = TaskFaultPlan { seed: 7, panic_rate: 0.5 };
/// // Pure per-index decisions: repeatable, order-independent.
/// assert_eq!(plan.should_panic(3), plan.should_panic(3));
/// assert!(!TaskFaultPlan::none(7).should_panic(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskFaultPlan {
    /// Seed of the fault schedule.
    pub seed: u64,
    /// Probability that a task panics, in `[0, 1]`.
    pub panic_rate: f64,
}

impl TaskFaultPlan {
    /// A plan that never injects a panic.
    pub fn none(seed: u64) -> Self {
        TaskFaultPlan {
            seed,
            panic_rate: 0.0,
        }
    }

    /// Whether task number `task` is scheduled to panic.
    pub fn should_panic(&self, task: u64) -> bool {
        if self.panic_rate <= 0.0 {
            return false;
        }
        if self.panic_rate >= 1.0 {
            return true;
        }
        let mut z = self
            .seed
            .wrapping_add(task.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Top 53 bits → uniform in [0, 1).
        let uniform = (z >> 11) as f64 / (1u64 << 53) as f64;
        uniform < self.panic_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_zero() {
        assert!(FaultPlan::none(123).is_zero());
        assert!(FaultPlan::default().is_zero());
    }

    #[test]
    fn task_fault_plan_is_pure_and_rate_faithful() {
        let plan = TaskFaultPlan {
            seed: 99,
            panic_rate: 0.25,
        };
        let first: Vec<bool> = (0..1000).map(|t| plan.should_panic(t)).collect();
        let second: Vec<bool> = (0..1000).map(|t| plan.should_panic(t)).collect();
        assert_eq!(first, second, "decisions must be pure per index");
        let hits = first.iter().filter(|&&b| b).count();
        assert!((150..350).contains(&hits), "rate 0.25 produced {hits}/1000");
        assert!((0..1000).all(|t| !TaskFaultPlan::none(99).should_panic(t)));
        let always = TaskFaultPlan {
            seed: 1,
            panic_rate: 1.0,
        };
        assert!((0..100).all(|t| always.should_panic(t)));
        // Different seeds give different schedules.
        let other = TaskFaultPlan {
            seed: 100,
            panic_rate: 0.25,
        };
        assert_ne!(
            first,
            (0..1000).map(|t| other.should_panic(t)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn any_rate_makes_plan_nonzero() {
        let mut plan = FaultPlan::none(0);
        plan.sensor.spike_rate = 0.01;
        assert!(!plan.is_zero());
        let mut plan = FaultPlan::none(0);
        plan.dvfs.reject_rate = 0.5;
        assert!(!plan.is_zero());
        let mut plan = FaultPlan::none(0);
        plan.storage.torn_write_rate = 0.1;
        assert!(!plan.is_zero());
        let mut plan = FaultPlan::none(0);
        plan.serve.slowdown_rate = 0.2;
        assert!(!plan.is_zero());
    }
}

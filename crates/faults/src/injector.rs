//! The injector: executes a [`FaultPlan`] against per-domain RNG streams.

use hmc_types::{Celsius, SimTime};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::plan::FaultPlan;
use crate::storage::StorageFault;

/// Domain-separation constants mixed into the plan seed so every fault
/// domain draws from its own stream.
const NPU_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;
const SENSOR_STREAM: u64 = 0xC2B2_AE3D_27D4_EB4F;
const DVFS_STREAM: u64 = 0x1656_67B1_9E37_79F9;
const STORAGE_STREAM: u64 = 0x2545_F491_4F6C_DD1D;
const SERVE_STREAM: u64 = 0x6A09_E667_F3BC_C909;

/// Fate drawn for one submitted NPU job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NpuFault {
    /// The job completes normally.
    None,
    /// The job fails with a device fault; the device is lost until reset.
    DeviceFault,
    /// The job hangs in the driver and never completes.
    Timeout,
    /// The job completes with its latency multiplied by the factor.
    LatencySpike(f64),
}

/// Fate drawn for one batch dispatched by the shared NPU service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeFault {
    /// The batch completes normally.
    None,
    /// The batch fails on the device (counts toward its circuit breaker).
    Failure,
    /// The batch completes with its device latency multiplied by the
    /// factor.
    Slowdown(f64),
}

/// Fate drawn for one requested DVFS transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DvfsFault {
    /// The transition applies immediately.
    None,
    /// The transition is rejected; the cluster keeps its current OPP.
    Reject,
    /// The transition lands late, at `now + delay`.
    Delay(hmc_types::SimDuration),
}

/// Counters of every fault the injector has produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// NPU jobs failed with a device fault.
    pub npu_device_faults: u64,
    /// NPU jobs hung.
    pub npu_timeouts: u64,
    /// NPU jobs with a latency spike.
    pub npu_latency_spikes: u64,
    /// Serve-path batches failed on a pooled device.
    pub serve_failures: u64,
    /// Serve-path batches slowed down.
    pub serve_slowdowns: u64,
    /// Sensor samples dropped.
    pub sensor_dropouts: u64,
    /// Sensor samples served from a stuck-at latch.
    pub sensor_stuck_samples: u64,
    /// Sensor samples hit by an impulse spike.
    pub sensor_spikes: u64,
    /// DVFS transitions rejected.
    pub dvfs_rejects: u64,
    /// DVFS transitions delayed.
    pub dvfs_delays: u64,
    /// File writes torn (prefix-only).
    pub storage_torn_writes: u64,
    /// File writes hit by a bit flip.
    pub storage_bit_flips: u64,
}

impl FaultStats {
    /// Total number of injected faults across all domains (noise excluded).
    pub fn total(&self) -> u64 {
        self.npu_device_faults
            + self.npu_timeouts
            + self.npu_latency_spikes
            + self.serve_failures
            + self.serve_slowdowns
            + self.sensor_dropouts
            + self.sensor_stuck_samples
            + self.sensor_spikes
            + self.dvfs_rejects
            + self.dvfs_delays
            + self.storage_torn_writes
            + self.storage_bit_flips
    }
}

/// Executes a [`FaultPlan`]: one seeded RNG stream per fault domain, so
/// the NPU, sensor and DVFS schedules are mutually independent. A rate of
/// zero never draws from the RNG at all, which makes a zero-fault plan
/// bit-identical to running without an injector.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    npu_rng: StdRng,
    serve_rng: StdRng,
    sensor_rng: StdRng,
    dvfs_rng: StdRng,
    storage_rng: StdRng,
    /// Active stuck-at episode: (expiry, latched value).
    stuck: Option<(SimTime, f64)>,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            npu_rng: StdRng::seed_from_u64(plan.seed ^ NPU_STREAM),
            serve_rng: StdRng::seed_from_u64(plan.seed ^ SERVE_STREAM),
            sensor_rng: StdRng::seed_from_u64(plan.seed ^ SENSOR_STREAM),
            dvfs_rng: StdRng::seed_from_u64(plan.seed ^ DVFS_STREAM),
            storage_rng: StdRng::seed_from_u64(plan.seed ^ STORAGE_STREAM),
            stuck: None,
            stats: FaultStats::default(),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters of all faults produced so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Draws the fate of one submitted NPU job.
    pub fn npu_job(&mut self) -> NpuFault {
        let cfg = self.plan.npu;
        if cfg.failure_rate > 0.0 && self.npu_rng.random::<f64>() < cfg.failure_rate {
            self.stats.npu_device_faults += 1;
            return NpuFault::DeviceFault;
        }
        if cfg.timeout_rate > 0.0 && self.npu_rng.random::<f64>() < cfg.timeout_rate {
            self.stats.npu_timeouts += 1;
            return NpuFault::Timeout;
        }
        if cfg.latency_spike_rate > 0.0 && self.npu_rng.random::<f64>() < cfg.latency_spike_rate {
            self.stats.npu_latency_spikes += 1;
            return NpuFault::LatencySpike(cfg.latency_spike_factor);
        }
        NpuFault::None
    }

    /// Draws the fate of one batch dispatched by the shared NPU service.
    pub fn serve_batch(&mut self) -> ServeFault {
        let cfg = self.plan.serve;
        if cfg.failure_rate > 0.0 && self.serve_rng.random::<f64>() < cfg.failure_rate {
            self.stats.serve_failures += 1;
            return ServeFault::Failure;
        }
        if cfg.slowdown_rate > 0.0 && self.serve_rng.random::<f64>() < cfg.slowdown_rate {
            self.stats.serve_slowdowns += 1;
            return ServeFault::Slowdown(cfg.slowdown_factor);
        }
        ServeFault::None
    }

    /// Filters one thermal-sensor sample: returns the (possibly corrupted)
    /// reading, or `None` when the sample is dropped.
    pub fn sensor(&mut self, now: SimTime, truth: Celsius) -> Option<Celsius> {
        let cfg = self.plan.sensor;
        // A stuck-at latch overrides everything until it expires.
        if let Some((until, latched)) = self.stuck {
            if now < until {
                self.stats.sensor_stuck_samples += 1;
                return Some(Celsius::new(latched));
            }
            self.stuck = None;
        }
        if cfg.stuck_rate > 0.0 && self.sensor_rng.random::<f64>() < cfg.stuck_rate {
            self.stuck = Some((now + cfg.stuck_duration, truth.value()));
            self.stats.sensor_stuck_samples += 1;
            return Some(truth);
        }
        if cfg.dropout_rate > 0.0 && self.sensor_rng.random::<f64>() < cfg.dropout_rate {
            self.stats.sensor_dropouts += 1;
            return None;
        }
        let mut value = truth.value();
        if cfg.spike_rate > 0.0 && self.sensor_rng.random::<f64>() < cfg.spike_rate {
            let sign = if self.sensor_rng.random::<f64>() < 0.5 {
                -1.0
            } else {
                1.0
            };
            value += sign * cfg.spike_magnitude;
            self.stats.sensor_spikes += 1;
        }
        if cfg.noise_std > 0.0 {
            // Irwin–Hall approximation of a standard normal.
            let normal: f64 = (0..12)
                .map(|_| self.sensor_rng.random::<f64>())
                .sum::<f64>()
                - 6.0;
            value += cfg.noise_std * normal;
        }
        Some(Celsius::new(value))
    }

    /// Draws the fate of one requested DVFS transition.
    pub fn dvfs_transition(&mut self) -> DvfsFault {
        let cfg = self.plan.dvfs;
        if cfg.reject_rate > 0.0 && self.dvfs_rng.random::<f64>() < cfg.reject_rate {
            self.stats.dvfs_rejects += 1;
            return DvfsFault::Reject;
        }
        if cfg.delay_rate > 0.0 && self.dvfs_rng.random::<f64>() < cfg.delay_rate {
            self.stats.dvfs_delays += 1;
            return DvfsFault::Delay(cfg.delay);
        }
        DvfsFault::None
    }

    /// Draws the fate of one file write of `len` bytes. A torn write keeps
    /// a strict prefix (possibly empty); a bit flip targets a uniformly
    /// drawn byte and bit. Zero-length writes can only pass through.
    pub fn storage_write(&mut self, len: usize) -> StorageFault {
        let cfg = self.plan.storage;
        if len == 0 {
            return StorageFault::None;
        }
        if cfg.torn_write_rate > 0.0 && self.storage_rng.random::<f64>() < cfg.torn_write_rate {
            self.stats.storage_torn_writes += 1;
            let keep = self.storage_rng.random_range(0..len);
            return StorageFault::TornWrite { keep };
        }
        if cfg.bit_flip_rate > 0.0 && self.storage_rng.random::<f64>() < cfg.bit_flip_rate {
            self.stats.storage_bit_flips += 1;
            let offset = self.storage_rng.random_range(0..len);
            let bit = self.storage_rng.random_range(0..8u8);
            return StorageFault::BitFlip { offset, bit };
        }
        StorageFault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::SimDuration;

    #[test]
    fn zero_plan_never_faults_and_passes_samples_through() {
        let mut inj = FaultInjector::new(FaultPlan::none(7));
        for i in 0..1000u64 {
            assert_eq!(inj.npu_job(), NpuFault::None);
            assert_eq!(inj.serve_batch(), ServeFault::None);
            assert_eq!(inj.dvfs_transition(), DvfsFault::None);
            let t = Celsius::new(25.0 + i as f64 * 0.01);
            // Exact pass-through, bit for bit.
            assert_eq!(inj.sensor(SimTime::from_millis(i), t), Some(t));
        }
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn certain_faults_always_fire() {
        let mut plan = FaultPlan::none(3);
        plan.npu.failure_rate = 1.0;
        plan.serve.failure_rate = 1.0;
        plan.sensor.dropout_rate = 1.0;
        plan.dvfs.reject_rate = 1.0;
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.npu_job(), NpuFault::DeviceFault);
        assert_eq!(inj.serve_batch(), ServeFault::Failure);
        assert_eq!(inj.sensor(SimTime::ZERO, Celsius::new(40.0)), None);
        assert_eq!(inj.dvfs_transition(), DvfsFault::Reject);
        assert_eq!(inj.stats().total(), 4);
    }

    #[test]
    fn serve_slowdowns_carry_the_configured_factor() {
        let mut plan = FaultPlan::none(9);
        plan.serve.slowdown_rate = 1.0;
        plan.serve.slowdown_factor = 6.5;
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.serve_batch(), ServeFault::Slowdown(6.5));
        assert_eq!(inj.stats().serve_slowdowns, 1);
    }

    #[test]
    fn stuck_at_latches_and_expires() {
        let mut plan = FaultPlan::none(0);
        plan.sensor.stuck_rate = 1.0;
        plan.sensor.stuck_duration = SimDuration::from_millis(10);
        let mut inj = FaultInjector::new(plan);
        let first = inj.sensor(SimTime::ZERO, Celsius::new(50.0));
        assert_eq!(first, Some(Celsius::new(50.0)));
        // While latched, the truth is ignored.
        let held = inj.sensor(SimTime::from_millis(5), Celsius::new(80.0));
        assert_eq!(held, Some(Celsius::new(50.0)));
        // After expiry the latch re-arms (rate 1.0 latches again on the
        // new value).
        let relatched = inj.sensor(SimTime::from_millis(20), Celsius::new(80.0));
        assert_eq!(relatched, Some(Celsius::new(80.0)));
    }

    #[test]
    fn spikes_move_samples_by_the_configured_magnitude() {
        let mut plan = FaultPlan::none(11);
        plan.sensor.spike_rate = 1.0;
        plan.sensor.spike_magnitude = 25.0;
        let mut inj = FaultInjector::new(plan);
        for i in 0..50u64 {
            let got = inj
                .sensor(SimTime::from_millis(i), Celsius::new(40.0))
                .expect("spikes never drop samples");
            assert!(
                (got.value() - 40.0).abs() > 24.9,
                "sample not spiked: {got}"
            );
        }
        assert_eq!(inj.stats().sensor_spikes, 50);
    }

    #[test]
    fn certain_storage_faults_always_fire() {
        let mut plan = FaultPlan::none(5);
        plan.storage.torn_write_rate = 1.0;
        let mut inj = FaultInjector::new(plan);
        match inj.storage_write(100) {
            StorageFault::TornWrite { keep } => assert!(keep < 100),
            other => panic!("expected torn write, got {other:?}"),
        }
        let mut plan = FaultPlan::none(5);
        plan.storage.bit_flip_rate = 1.0;
        let mut inj = FaultInjector::new(plan);
        match inj.storage_write(100) {
            StorageFault::BitFlip { offset, bit } => {
                assert!(offset < 100);
                assert!(bit < 8);
            }
            other => panic!("expected bit flip, got {other:?}"),
        }
        assert_eq!(inj.stats().storage_bit_flips, 1);
    }

    #[test]
    fn zero_length_writes_pass_through() {
        let mut plan = FaultPlan::none(5);
        plan.storage.torn_write_rate = 1.0;
        plan.storage.bit_flip_rate = 1.0;
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.storage_write(0), StorageFault::None);
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn storage_schedule_is_deterministic() {
        let mut plan = FaultPlan::none(77);
        plan.storage.torn_write_rate = 0.4;
        plan.storage.bit_flip_rate = 0.4;
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        for len in 1..200usize {
            assert_eq!(a.storage_write(len), b.storage_write(len));
        }
    }

    #[test]
    fn domains_are_independent_streams() {
        // Enabling sensor faults must not change the NPU schedule.
        let mut npu_only = FaultPlan::none(99);
        npu_only.npu.failure_rate = 0.3;
        let mut both = npu_only;
        both.sensor.dropout_rate = 0.5;

        let mut a = FaultInjector::new(npu_only);
        let mut b = FaultInjector::new(both);
        for i in 0..500u64 {
            // Interleave sensor draws in `b` only.
            let _ = b.sensor(SimTime::from_millis(i), Celsius::new(30.0));
            assert_eq!(a.npu_job(), b.npu_job(), "diverged at job {i}");
        }
    }
}

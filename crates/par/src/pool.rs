//! Order-preserving parallel map over scoped std threads.
//!
//! Work distribution is dynamic (an atomic cursor hands out the next
//! unclaimed index), but results are re-assembled by index and panics are
//! re-thrown lowest-index-first, so nothing observable depends on which
//! worker ran which task.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::Budget;

/// A panic captured on a worker, tagged with the index of the task that
/// raised it.
type TaskPanic = (usize, Box<dyn std::any::Any + Send + 'static>);

/// Records `panic` unless a lower-indexed one is already held.
fn record_panic(slot: &Mutex<Option<TaskPanic>>, panic: TaskPanic) {
    let mut held = slot.lock().unwrap_or_else(|e| e.into_inner());
    if held.as_ref().is_none_or(|(i, _)| panic.0 < *i) {
        *held = Some(panic);
    }
}

/// Re-throws the recorded panic, if any, after every worker has joined.
fn propagate(slot: Mutex<Option<TaskPanic>>) {
    if let Some((_, payload)) = slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
        resume_unwind(payload);
    }
}

/// Applies `f` to every item, in parallel under `budget`, returning the
/// results in input order.
///
/// Semantically identical to
/// `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()` at every
/// thread count: result `i` always lands in slot `i`. If tasks panic, the
/// pool drains (all workers join) and then re-raises the panic of the
/// lowest-indexed panicking task, so the observable failure is the same
/// one a serial loop would hit first.
///
/// # Examples
///
/// ```
/// use par::{par_map, Budget};
/// let squares = par_map(&Budget::with_threads(3), &[1, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(budget: &Budget, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = budget.effective_threads().min(items.len()).max(1);
    if threads <= 1 {
        // The serial reference path still shares the panic contract: the
        // first (lowest-index) panic propagates.
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let first_panic: Mutex<Option<TaskPanic>> = Mutex::new(None);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    {
        let slots = Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                            Ok(r) => produced.push((i, r)),
                            Err(payload) => {
                                record_panic(&first_panic, (i, payload));
                                stop.store(true, Ordering::Release);
                                break;
                            }
                        }
                    }
                    let mut slots = slots.lock().unwrap_or_else(|e| e.into_inner());
                    for (i, r) in produced {
                        slots[i] = Some(r);
                    }
                });
            }
        });
    }
    propagate(first_panic);
    slots
        .into_iter()
        .map(|r| r.expect("pool drained without panic, so every task completed"))
        .collect()
}

/// Runs `f` on every item in parallel under `budget`, mutating items in
/// place.
///
/// Items are partitioned into contiguous chunks, one per worker; since
/// every item is visited exactly once and items are independent, the
/// result is identical to a serial `for` loop at every thread count. The
/// panic contract matches [`par_map`]: the pool drains, then the
/// lowest-indexed panic is re-thrown.
///
/// # Examples
///
/// ```
/// use par::{par_for_each_mut, Budget};
/// let mut v = vec![1, 2, 3, 4, 5];
/// par_for_each_mut(&Budget::with_threads(2), &mut v, |i, x| *x += i as i32);
/// assert_eq!(v, vec![1, 3, 5, 7, 9]);
/// ```
pub fn par_for_each_mut<T, F>(budget: &Budget, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = budget.effective_threads().min(items.len()).max(1);
    if threads <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }

    let chunk_len = items.len().div_ceil(threads);
    let first_panic: Mutex<Option<TaskPanic>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for (chunk_index, chunk) in items.chunks_mut(chunk_len).enumerate() {
            let base = chunk_index * chunk_len;
            let first_panic = &first_panic;
            let f = &f;
            scope.spawn(move || {
                for (offset, item) in chunk.iter_mut().enumerate() {
                    let i = base + offset;
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                        record_panic(first_panic, (i, payload));
                        break;
                    }
                }
            });
        }
    });
    propagate(first_panic);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_at_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let reference: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 4, 7, 16] {
            let got = par_map(&Budget::with_threads(threads), &items, |_, &x| x * 3 + 1);
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        let empty: Vec<u8> = par_map(&Budget::with_threads(4), &[] as &[u8], |_, &x| x);
        assert!(empty.is_empty());
        assert_eq!(par_map(&Budget::with_threads(4), &[9], |_, &x| x), vec![9]);
    }

    #[test]
    fn for_each_mut_visits_every_item_once() {
        for threads in [1, 2, 3, 8] {
            let mut v = vec![0usize; 100];
            par_for_each_mut(&Budget::with_threads(threads), &mut v, |i, x| *x = i * i);
            assert!(v.iter().enumerate().all(|(i, &x)| x == i * i));
        }
    }

    #[test]
    fn lowest_index_panic_wins() {
        for threads in [1, 2, 4, 7] {
            let items: Vec<usize> = (0..64).collect();
            let result = catch_unwind(AssertUnwindSafe(|| {
                par_map(&Budget::with_threads(threads), &items, |_, &x| {
                    if x == 5 || x == 40 {
                        panic!("task {x} failed");
                    }
                    x
                })
            }));
            let payload = result.expect_err("a task panicked");
            let message = payload
                .downcast_ref::<String>()
                .expect("panic carries a message");
            assert_eq!(message, "task 5 failed", "threads={threads}");
        }
    }

    #[test]
    fn for_each_mut_propagates_lowest_panic() {
        let mut v = vec![0u8; 32];
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_for_each_mut(&Budget::with_threads(4), &mut v, |i, _| {
                if i == 3 || i == 20 {
                    panic!("item {i}");
                }
            })
        }));
        let payload = result.expect_err("an item panicked");
        let message = payload.downcast_ref::<String>().expect("message");
        assert_eq!(message, "item 3");
    }
}

//! Ordered reduction: shard layouts and a fixed-tree fold.
//!
//! Floating-point addition is not associative, so a parallel sum is only
//! reproducible if the association order is pinned. Two rules pin it
//! here:
//!
//! 1. [`shard_ranges`] derives the shard layout purely from the input
//!    length (and a requested shard count), never from the thread budget.
//! 2. [`tree_fold`] combines partials over a balanced binary tree whose
//!    shape depends only on the number of partials: adjacent pairs are
//!    combined level by level, an odd tail passing through unchanged.
//!
//! Together, `threads=1` and `threads=N` execute exactly the same
//! floating-point operations in exactly the same association order; only
//! the wall-clock interleaving differs.

use std::ops::Range;

use crate::{par_map, Budget};

/// Default shard count for data-parallel reductions (gradient shards).
///
/// Chosen larger than typical worker counts so load balances, but small
/// enough that per-shard fixed costs stay negligible. This constant is
/// part of the numerical contract: changing it changes reduction trees
/// and therefore the bits of every float artifact built on them.
pub const DEFAULT_SHARDS: usize = 8;

/// Splits `0..len` into at most `shards` contiguous ranges whose sizes
/// differ by at most one.
///
/// The layout is a pure function of `(len, shards)` — thread budgets
/// never enter — so every budget shards identically. Empty input yields
/// no ranges; `shards` is clamped to `1..=len`.
///
/// # Examples
///
/// ```
/// use par::shard_ranges;
/// assert_eq!(shard_ranges(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
/// assert_eq!(shard_ranges(2, 8).len(), 2);
/// assert!(shard_ranges(0, 8).is_empty());
/// ```
pub fn shard_ranges(len: usize, shards: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, len);
    let base = len / shards;
    let extra = len % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let size = base + usize::from(s < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Folds `partials` over a balanced binary tree of fixed shape.
///
/// Level by level, adjacent pairs `(0,1), (2,3), …` are combined; an odd
/// final element passes through to the next level. The tree shape — and
/// therefore the association order of every combine — depends only on
/// `partials.len()`. Returns `None` for empty input.
///
/// # Examples
///
/// ```
/// use par::tree_fold;
/// // ((1+2)+(3+4)) — not the left fold ((1+2)+3)+4, but fixed.
/// assert_eq!(tree_fold(vec![1, 2, 3, 4], |a, b| a + b), Some(10));
/// assert_eq!(tree_fold(Vec::<i32>::new(), |a, b| a + b), None);
/// ```
pub fn tree_fold<A>(mut partials: Vec<A>, combine: impl Fn(A, A) -> A) -> Option<A> {
    while partials.len() > 1 {
        let mut next = Vec::with_capacity(partials.len().div_ceil(2));
        let mut it = partials.into_iter();
        while let Some(a) = it.next() {
            next.push(match it.next() {
                Some(b) => combine(a, b),
                None => a,
            });
        }
        partials = next;
    }
    partials.pop()
}

/// Evaluates `eval(0..shards)` in parallel under `budget` and folds the
/// results with [`tree_fold`].
///
/// Because shard evaluation is order-preserving ([`par_map`]) and the
/// fold tree is fixed, the result is bit-identical at every thread count.
/// Returns `None` when `shards == 0`.
///
/// # Examples
///
/// ```
/// use par::{par_reduce, Budget};
/// let serial = par_reduce(&Budget::serial(), 5, |s| s as f64 * 0.1, |a, b| a + b);
/// let parallel = par_reduce(&Budget::with_threads(4), 5, |s| s as f64 * 0.1, |a, b| a + b);
/// assert_eq!(serial.unwrap().to_bits(), parallel.unwrap().to_bits());
/// ```
pub fn par_reduce<A, F, C>(budget: &Budget, shards: usize, eval: F, combine: C) -> Option<A>
where
    A: Send,
    F: Fn(usize) -> A + Sync,
    C: Fn(A, A) -> A,
{
    let indices: Vec<usize> = (0..shards).collect();
    let partials = par_map(budget, &indices, |_, &s| eval(s));
    tree_fold(partials, combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_exactly_once() {
        for len in [0usize, 1, 2, 7, 8, 9, 63, 64, 100] {
            for shards in [1usize, 2, 3, 7, 8, 64] {
                let ranges = shard_ranges(len, shards);
                let mut covered = 0;
                for (i, r) in ranges.iter().enumerate() {
                    assert_eq!(r.start, covered, "len={len} shards={shards} range {i}");
                    covered = r.end;
                }
                assert_eq!(covered, len, "len={len} shards={shards}");
                if len > 0 {
                    assert_eq!(ranges.len(), shards.clamp(1, len));
                    let sizes: Vec<usize> = ranges.iter().map(Range::len).collect();
                    let min = sizes.iter().min().unwrap();
                    let max = sizes.iter().max().unwrap();
                    assert!(max - min <= 1, "len={len} shards={shards}: {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn tree_fold_matches_serial_fold_for_associative_ops() {
        for n in 0..40usize {
            let items: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
            let serial = items.iter().copied().reduce(u64::wrapping_add);
            assert_eq!(
                tree_fold(items, u64::wrapping_add),
                serial,
                "n={n}: tree fold of an associative op must equal the left fold"
            );
        }
    }

    #[test]
    fn float_reduction_is_bit_stable_across_budgets() {
        // Values chosen so association order matters: a naive left fold
        // and the tree fold genuinely differ in the low bits.
        let eval = |s: usize| (s as f64 + 0.1).exp().recip();
        let reference = par_reduce(&Budget::serial(), 23, eval, |a, b| a + b).unwrap();
        for threads in [2, 3, 4, 7, 16] {
            let got = par_reduce(&Budget::with_threads(threads), 23, eval, |a, b| a + b).unwrap();
            assert_eq!(
                got.to_bits(),
                reference.to_bits(),
                "threads={threads}: tree reduction must be associativity-stable"
            );
        }
    }

    #[test]
    fn empty_reduction_is_none() {
        assert!(par_reduce(&Budget::serial(), 0, |s| s, |a, b| a + b).is_none());
    }
}

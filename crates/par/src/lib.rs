//! Deterministic parallel execution engine.
//!
//! Everything in this repository that is bit-exact — golden-trace hashes,
//! checkpoint checksums, resumable sweeps — stays bit-exact only if
//! parallelism never changes *what* is computed, only *when*. This crate
//! provides the three primitives the rest of the stack parallelizes with,
//! all built on scoped std threads (no async runtime, no external
//! dependencies):
//!
//! * [`Budget`] — the thread-count configuration threaded through
//!   `SimConfig`, sweep/fleet configs and the training loops. A budget
//!   only chooses how many workers execute the schedule; it never
//!   influences the schedule itself.
//! * [`par_map`] / [`par_for_each_mut`] — order-preserving parallel map:
//!   item `i`'s result lands in slot `i` regardless of which worker ran
//!   it, so the output is byte-identical to a serial loop.
//! * [`shard_ranges`] + [`tree_fold`] / [`par_reduce`] — ordered
//!   reduction: work is split into shards whose layout depends only on
//!   the input length, and partial results are folded over a *fixed*
//!   balanced binary tree. Floating-point sums therefore associate the
//!   same way at every thread count, which is what makes `threads=1` and
//!   `threads=N` produce identical IEEE-754 bit patterns.
//!
//! Worker panics are contained and re-thrown deterministically: if
//! several tasks panic, the panic of the *lowest-indexed* task is the one
//! propagated, and the pool always drains (joins every worker) first.

mod budget;
mod pool;
mod reduce;

pub use budget::Budget;
pub use pool::{par_for_each_mut, par_map};
pub use reduce::{par_reduce, shard_ranges, tree_fold, DEFAULT_SHARDS};

//! The thread budget threaded through every parallel entry point.

use std::num::NonZeroUsize;

/// How many worker threads a parallel construct may use.
///
/// The budget is deliberately *not* part of any checkpoint, manifest or
/// trace: two runs that differ only in their budget must produce
/// byte-identical artifacts, so recording the budget in an artifact would
/// itself break that property.
///
/// # Examples
///
/// ```
/// use par::Budget;
/// assert_eq!(Budget::serial().effective_threads(), 1);
/// assert_eq!(Budget::with_threads(4).effective_threads(), 4);
/// // `threads == 0` resolves to the host's available parallelism.
/// assert!(Budget::auto().effective_threads() >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Worker threads; `0` means "resolve to
    /// [`std::thread::available_parallelism`] at the call site".
    pub threads: usize,
}

impl Default for Budget {
    /// Serial by default: existing single-threaded behavior is the
    /// baseline every parallel run must reproduce.
    fn default() -> Self {
        Budget::serial()
    }
}

impl Budget {
    /// One worker: the serial reference schedule.
    pub const fn serial() -> Self {
        Budget { threads: 1 }
    }

    /// An explicit worker count (`0` behaves like [`Budget::auto`]).
    pub const fn with_threads(threads: usize) -> Self {
        Budget { threads }
    }

    /// Resolve the worker count from the host at the call site.
    pub const fn auto() -> Self {
        Budget { threads: 0 }
    }

    /// The worker count this budget resolves to on this host.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// `true` when the budget resolves to a single worker.
    pub fn is_serial(&self) -> bool {
        self.effective_threads() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_serial() {
        assert_eq!(Budget::default(), Budget::serial());
        assert!(Budget::serial().is_serial());
    }

    #[test]
    fn zero_resolves_to_host_parallelism() {
        let auto = Budget::auto().effective_threads();
        assert!(auto >= 1);
        assert_eq!(Budget::with_threads(0).effective_threads(), auto);
    }
}

//! Stress and soak tests for the deterministic pool: thousands of tiny
//! tasks, seeded fault-injected worker panics (via `faults`), and
//! property checks that ordered reduction equals a serial fold.

use std::panic::{catch_unwind, AssertUnwindSafe};

use faults::TaskFaultPlan;
use par::{par_map, par_reduce, shard_ranges, tree_fold, Budget};
use proptest::prelude::*;

/// 10k tiny tasks with seeded injected panics: for every thread count the
/// pool must drain (join all workers, no deadlock) and re-throw the panic
/// of the lowest-indexed faulted task — the same failure a serial loop
/// hits first.
#[test]
#[ignore = "10k-task soak; run via ci.sh FULL=1 (--include-ignored)"]
fn soak_faulted_pool_drains_and_panics_deterministically() {
    const TASKS: u64 = 10_000;
    for seed in [1u64, 7, 42] {
        let plan = TaskFaultPlan {
            seed,
            panic_rate: 0.001,
        };
        let expected_first = (0..TASKS).find(|&t| plan.should_panic(t));
        let items: Vec<u64> = (0..TASKS).collect();
        for threads in [1, 2, 4, 7] {
            let result = catch_unwind(AssertUnwindSafe(|| {
                par_map(&Budget::with_threads(threads), &items, |_, &t| {
                    assert!(!plan.should_panic(t), "injected fault on task {t}");
                    t.wrapping_mul(0x9E37_79B9)
                })
            }));
            match expected_first {
                None => {
                    let out = result.expect("no injected faults, pool must succeed");
                    assert_eq!(out.len(), TASKS as usize);
                }
                Some(first) => {
                    let payload = result.expect_err("injected faults must propagate");
                    let message = payload
                        .downcast_ref::<String>()
                        .expect("assert! panics carry a String");
                    assert!(
                        message.contains(&format!("injected fault on task {first}")),
                        "seed={seed} threads={threads}: expected task {first}, got: {message}"
                    );
                }
            }
        }
    }
}

/// A clean 10k-task soak: every thread count produces the identical
/// result vector, exercising the dynamic cursor under heavy contention.
#[test]
#[ignore = "10k-task soak; run via ci.sh FULL=1 (--include-ignored)"]
fn soak_clean_pool_is_order_preserving() {
    let items: Vec<u64> = (0..10_000).collect();
    let reference: Vec<u64> = items.iter().map(|&t| t ^ (t << 7)).collect();
    for threads in [2, 4, 7] {
        let got = par_map(&Budget::with_threads(threads), &items, |_, &t| t ^ (t << 7));
        assert_eq!(got, reference, "threads={threads}");
    }
}

proptest! {
    /// For an exactly associative operation (wrapping integer addition),
    /// the fixed-tree reduction over *any* shard split equals the plain
    /// serial fold of the un-sharded data, at every thread count.
    #[test]
    fn par_reduce_equals_serial_fold(
        values in proptest::collection::vec(0u64..u64::MAX, 0..300),
        shards in 1usize..40,
        threads in 1usize..9,
    ) {
        let serial: u64 = values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
        let ranges = shard_ranges(values.len(), shards);
        let reduced = par_reduce(
            &Budget::with_threads(threads),
            ranges.len(),
            |s| values[ranges[s].clone()]
                .iter()
                .fold(0u64, |acc, &v| acc.wrapping_add(v)),
            u64::wrapping_add,
        )
        .unwrap_or(0);
        prop_assert_eq!(reduced, serial);
    }

    /// Floating-point tree reduction is bit-stable across shard workers'
    /// thread counts (the shard split itself is part of the schedule, so
    /// it is held fixed while threads vary).
    #[test]
    fn float_tree_reduction_is_bit_stable(
        values in proptest::collection::vec(-1e6f64..1e6, 1..200),
        shards in 1usize..16,
    ) {
        let ranges = shard_ranges(values.len(), shards);
        let eval = |s: usize| values[ranges[s].clone()].iter().sum::<f64>();
        let reference = par_reduce(&Budget::serial(), ranges.len(), eval, |a, b| a + b)
            .unwrap()
            .to_bits();
        for threads in [2, 4, 7] {
            let got = par_reduce(&Budget::with_threads(threads), ranges.len(), eval, |a, b| a + b)
                .unwrap()
                .to_bits();
            prop_assert_eq!(got, reference, "threads={}", threads);
        }
    }

    /// tree_fold never loses or duplicates an element: combining
    /// singleton vectors by concatenation reproduces the input order.
    #[test]
    fn tree_fold_is_a_permutation_free_fold(
        values in proptest::collection::vec(0u32..u32::MAX, 0..100),
    ) {
        let wrapped: Vec<Vec<u32>> = values.iter().map(|&v| vec![v]).collect();
        let folded = tree_fold(wrapped, |mut a, mut b| { a.append(&mut b); a });
        prop_assert_eq!(folded.unwrap_or_default(), values);
    }
}

//! Property-based tests of the ring buffer, the recorder, and the trace
//! hash.

use hmc_types::SimTime;
use proptest::prelude::*;
use trace::{EventKind, FaultKind, RingBuffer, TraceConfig, TraceEvent, TraceRecorder};

fn tick(ms: u64, epoch: u64) -> TraceEvent {
    TraceEvent::EpochTick {
        at: SimTime::from_millis(ms),
        epoch,
    }
}

proptest! {
    /// Below capacity the ring never drops; above, it holds exactly the
    /// newest `capacity` items in order and reports every overwrite.
    #[test]
    fn ring_drops_only_above_capacity(capacity in 1usize..64, n in 0usize..256) {
        let mut ring = RingBuffer::new(capacity);
        let mut overwritten = Vec::new();
        for i in 0..n {
            if let Some(old) = ring.push(i) {
                overwritten.push(old);
            }
        }
        prop_assert_eq!(ring.len(), n.min(capacity));
        prop_assert_eq!(overwritten.len(), n.saturating_sub(capacity));
        // The retained window is the newest `capacity` items, in push
        // order; the overwritten prefix is the oldest items, in order.
        let kept: Vec<usize> = ring.into_vec();
        let expected: Vec<usize> = (n.saturating_sub(capacity)..n).collect();
        prop_assert_eq!(kept, expected);
        let expected_overwritten: Vec<usize> = (0..n.saturating_sub(capacity)).collect();
        prop_assert_eq!(overwritten, expected_overwritten);
    }

    /// The recorder accepts every monotone stream, counts it exactly, and
    /// its hash is independent of the ring capacity.
    #[test]
    fn recorder_hash_is_capacity_independent(
        capacity in 1usize..32,
        deltas in proptest::collection::vec(0u64..400, 1..128),
    ) {
        let bounded_config = TraceConfig { capacity, ..TraceConfig::decisions() };
        let mut bounded = TraceRecorder::new(bounded_config);
        let mut unbounded = TraceConfig::decisions().recorder().unwrap();
        let mut t = 0;
        for (i, delta) in deltas.iter().enumerate() {
            t += delta;
            bounded.record(tick(t, i as u64));
            unbounded.record(tick(t, i as u64));
        }
        let n = deltas.len() as u64;
        let (bounded, unbounded) = (bounded.finish(), unbounded.finish());
        prop_assert_eq!(bounded.hash, unbounded.hash);
        prop_assert_eq!(bounded.emitted, n);
        prop_assert_eq!(unbounded.emitted, n);
        prop_assert_eq!(bounded.dropped, n.saturating_sub(capacity as u64));
        prop_assert_eq!(unbounded.dropped, 0);
        // The retained window is itself monotone in SimTime.
        let mut last = SimTime::ZERO;
        for event in &bounded.events {
            prop_assert!(event.at() >= last);
            last = event.at();
        }
    }

    /// Any single-field perturbation of a stream changes its hash: the
    /// hash is sensitive to event order, payload, and count.
    #[test]
    fn hash_is_sensitive_to_any_change(n in 2usize..32, flip in 0usize..32) {
        let flip = flip % n;
        let record_all = |mutate: bool| {
            let mut r = TraceConfig::decisions().recorder().unwrap();
            for i in 0..n {
                let epoch = if mutate && i == flip { 999 } else { i as u64 };
                r.record(tick(i as u64 * 500, epoch));
            }
            r.finish()
        };
        let baseline = record_all(false);
        let mutated = record_all(true);
        prop_assert_ne!(baseline.hash, mutated.hash);
        // And the same stream re-recorded hashes identically.
        prop_assert_eq!(baseline.hash, record_all(false).hash);
    }

    /// Granularity filtering never changes what a *coarser* stream hashes
    /// to: a Decisions recorder fed a Full stream hashes exactly like a
    /// Decisions recorder fed the pre-filtered stream.
    #[test]
    fn decisions_hash_ignores_samples(n in 1usize..32) {
        let sample = |ms| TraceEvent::ThermalSample {
            at: SimTime::from_millis(ms),
            sensor: hmc_types::Celsius::new(42.0),
            throttling: false,
        };
        let mut noisy = TraceConfig::decisions().recorder().unwrap();
        let mut clean = TraceConfig::decisions().recorder().unwrap();
        for i in 0..n {
            let ms = i as u64 * 500;
            noisy.record(tick(ms, i as u64));
            noisy.record(sample(ms));
            clean.record(tick(ms, i as u64));
        }
        let (noisy, clean) = (noisy.finish(), clean.finish());
        prop_assert_eq!(noisy.hash, clean.hash);
        prop_assert_eq!(noisy.emitted, clean.emitted);
        prop_assert!(!noisy.events.iter().any(|e| e.kind() == EventKind::ThermalSample));
    }
}

/// Known-answer pin of the canonical event encoding: if this hash moves,
/// every committed golden fixture is invalidated — bump them deliberately
/// (`BLESS=1`) and mention the format change in the commit.
#[test]
fn hash_known_answer() {
    let mut r = TraceConfig::decisions().recorder().unwrap();
    r.record(tick(0, 0));
    r.record(TraceEvent::Fault {
        at: SimTime::from_millis(100),
        kind: FaultKind::SensorDropout,
    });
    let log = r.finish();
    assert_eq!(
        log.hash.to_string(),
        expected_known_answer(),
        "canonical event encoding changed"
    );
}

fn expected_known_answer() -> String {
    // Recompute the FNV-1a stream by hand: discriminant 0, t=0, epoch=0,
    // then discriminant 7, t=100ms, fault code 0.
    let mut h = trace::Fnv64::new();
    h.write_u8(0);
    h.write_u64(0);
    h.write_u64(0);
    h.write_u8(7);
    h.write_u64(100_000_000);
    h.write_u8(0);
    format!("{:016x}", h.finish())
}

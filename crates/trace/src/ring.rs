//! A bounded ring buffer for trace events.
//!
//! The simulator records into a fixed-capacity ring so that tracing has a
//! hard memory bound regardless of run length: once full, the oldest
//! events are overwritten (the trace hash still covers the full stream —
//! it is computed incrementally as events are accepted, not from the
//! buffer).

use std::collections::VecDeque;

/// A fixed-capacity FIFO that overwrites its oldest element when full.
///
/// # Examples
///
/// ```
/// use trace::RingBuffer;
/// let mut ring = RingBuffer::new(2);
/// assert_eq!(ring.push(1), None);
/// assert_eq!(ring.push(2), None);
/// assert_eq!(ring.push(3), Some(1)); // capacity reached: 1 is dropped
/// assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RingBuffer<T> {
    buf: VecDeque<T>,
    capacity: usize,
}

impl<T> RingBuffer<T> {
    /// Creates a ring holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingBuffer {
            buf: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
        }
    }

    /// Appends an element, returning the overwritten oldest element if the
    /// ring was full.
    pub fn push(&mut self, value: T) -> Option<T> {
        let dropped = if self.buf.len() == self.capacity {
            self.buf.pop_front()
        } else {
            None
        };
        self.buf.push_back(value);
        dropped
    }

    /// Number of elements currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The maximum number of elements held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Consumes the ring, yielding elements oldest to newest.
    pub fn into_vec(self) -> Vec<T> {
        self.buf.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_below_capacity() {
        let mut ring = RingBuffer::new(8);
        for i in 0..5 {
            assert_eq!(ring.push(i), None);
        }
        assert_eq!(ring.len(), 5);
        assert_eq!(
            ring.iter().copied().collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let mut ring = RingBuffer::new(3);
        for i in 0..7 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.into_vec(), vec![4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = RingBuffer::<u8>::new(0);
    }
}

//! Trace export: one-event-per-line JSONL and a flat CSV projection.
//!
//! Both formats are hand-rolled (the offline toolchain carries no JSON
//! dependency) and stable: columns and key order are part of the tooling
//! contract so downstream scripts can depend on them.

use std::fmt::Write as _;

use crate::event::TraceEvent;
use crate::recorder::TraceLog;

/// Formats an `f64` compactly but round-trippably (Rust's shortest
/// representation that parses back to the same value).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no Inf/NaN literals; encode as a string marker.
        format!("\"{v}\"")
    }
}

fn json_event(e: &TraceEvent, out: &mut String) {
    let _ = write!(
        out,
        "{{\"t_ns\":{},\"event\":\"{}\"",
        e.at().as_nanos(),
        e.kind()
    );
    match *e {
        TraceEvent::EpochTick { epoch, .. } => {
            let _ = write!(out, ",\"epoch\":{epoch}");
        }
        TraceEvent::Decision {
            app,
            target,
            score,
            ref logits,
            ..
        } => {
            match app {
                Some(a) => {
                    let _ = write!(out, ",\"app\":{}", a.value());
                }
                None => out.push_str(",\"app\":null"),
            }
            match target {
                Some(c) => {
                    let _ = write!(out, ",\"target\":{}", c.index());
                }
                None => out.push_str(",\"target\":null"),
            }
            let _ = write!(out, ",\"score\":{}", num(score));
            out.push_str(",\"logits\":[");
            for (i, l) in logits.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", num(f64::from(*l)));
            }
            out.push(']');
        }
        TraceEvent::Migration { app, from, to, .. } => {
            let _ = write!(
                out,
                ",\"app\":{},\"from\":{},\"to\":{}",
                app.value(),
                from.index(),
                to.index()
            );
        }
        TraceEvent::DvfsTransition {
            cluster,
            from_level,
            to_level,
            ..
        } => {
            let _ = write!(
                out,
                ",\"cluster\":{},\"from_level\":{from_level},\"to_level\":{to_level}",
                cluster.index()
            );
        }
        TraceEvent::QosSample {
            app,
            current,
            target,
            ..
        } => {
            let _ = write!(
                out,
                ",\"app\":{},\"current_ips\":{},\"target_ips\":{}",
                app.value(),
                num(current.value()),
                num(target.value())
            );
        }
        TraceEvent::ThermalSample {
            sensor, throttling, ..
        } => {
            let _ = write!(
                out,
                ",\"sensor_c\":{},\"throttling\":{throttling}",
                num(sensor.value())
            );
        }
        TraceEvent::NpuJob {
            batch,
            latency,
            backend,
            ok,
            ..
        } => {
            let _ = write!(
                out,
                ",\"batch\":{batch},\"latency_ns\":{},\"backend\":\"{backend}\",\"ok\":{ok}",
                latency.as_nanos()
            );
        }
        TraceEvent::Fault { kind, .. } => {
            let _ = write!(out, ",\"kind\":\"{kind}\"");
        }
        TraceEvent::AppAdmitted { app, core, .. } => {
            let _ = write!(out, ",\"app\":{},\"core\":{}", app.value(), core.index());
        }
        TraceEvent::AppCompleted {
            app,
            finished,
            violation_time,
            energy,
            migrations,
            ..
        } => {
            let _ = write!(
                out,
                ",\"app\":{},\"finished\":{finished},\"violation_ns\":{},\"energy_j\":{},\"migrations\":{migrations}",
                app.value(),
                violation_time.as_nanos(),
                num(energy.value())
            );
        }
        TraceEvent::RunEnd {
            energy,
            violation_time,
            migrations,
            ..
        } => {
            let _ = write!(
                out,
                ",\"energy_j\":{},\"violation_ns\":{},\"migrations\":{migrations}",
                num(energy.value()),
                violation_time.as_nanos(),
            );
        }
        TraceEvent::CheckpointSaved {
            scope, seq, bytes, ..
        } => {
            let _ = write!(
                out,
                ",\"scope\":\"{scope}\",\"seq\":{seq},\"bytes\":{bytes}"
            );
        }
        TraceEvent::CheckpointRestored {
            scope,
            seq,
            skipped,
            ..
        } => {
            let _ = write!(
                out,
                ",\"scope\":\"{scope}\",\"seq\":{seq},\"skipped\":{skipped}"
            );
        }
        TraceEvent::BatchDispatched {
            device,
            requests,
            rows,
            latency,
            ..
        } => {
            match device {
                Some(d) => {
                    let _ = write!(out, ",\"device\":{d}");
                }
                None => out.push_str(",\"device\":null"),
            }
            let _ = write!(
                out,
                ",\"requests\":{requests},\"rows\":{rows},\"latency_ns\":{}",
                latency.as_nanos()
            );
        }
        TraceEvent::QueueSaturated {
            depth, retry_after, ..
        } => {
            let _ = write!(
                out,
                ",\"depth\":{depth},\"retry_after_ns\":{}",
                retry_after.as_nanos()
            );
        }
        TraceEvent::RequestAdmitted {
            request,
            client,
            depth,
            ..
        } => {
            let _ = write!(
                out,
                ",\"request\":{request},\"client\":{client},\"depth\":{depth}"
            );
        }
        TraceEvent::RequestShed {
            client,
            reason,
            depth,
            retry_after,
            ..
        } => {
            let _ = write!(
                out,
                ",\"client\":{client},\"reason\":\"{reason}\",\"depth\":{depth},\"retry_after_ns\":{}",
                retry_after.as_nanos()
            );
        }
        TraceEvent::DeadlineMiss {
            request,
            client,
            deadline,
            late_by,
            ..
        } => {
            let _ = write!(
                out,
                ",\"request\":{request},\"client\":{client},\"deadline_ns\":{},\"late_by_ns\":{}",
                deadline.as_nanos(),
                late_by.as_nanos()
            );
        }
        TraceEvent::RetryScheduled {
            client,
            attempt,
            backoff,
            ..
        } => {
            let _ = write!(
                out,
                ",\"client\":{client},\"attempt\":{attempt},\"backoff_ns\":{}",
                backoff.as_nanos()
            );
        }
        TraceEvent::CacheReport {
            hits,
            misses,
            entries,
            ..
        } => {
            let _ = write!(
                out,
                ",\"hits\":{hits},\"misses\":{misses},\"entries\":{entries}"
            );
        }
    }
    out.push('}');
}

/// Renders a trace as JSON Lines: a header object (hash and stream
/// counters), then one object per retained event.
///
/// # Examples
///
/// ```
/// use hmc_types::SimTime;
/// use trace::{to_jsonl, TraceConfig, TraceEvent};
///
/// let mut r = TraceConfig::decisions().recorder().unwrap();
/// r.record(TraceEvent::EpochTick { at: SimTime::ZERO, epoch: 0 });
/// let jsonl = to_jsonl(&r.finish());
/// assert!(jsonl.lines().next().unwrap().contains("\"trace_hash\""));
/// assert!(jsonl.contains("\"event\":\"epoch_tick\""));
/// ```
pub fn to_jsonl(log: &TraceLog) -> String {
    let mut out = String::with_capacity(64 * (log.events.len() + 1));
    let _ = writeln!(
        out,
        "{{\"trace_hash\":\"{}\",\"emitted\":{},\"dropped\":{}}}",
        log.hash, log.emitted, log.dropped
    );
    for e in &log.events {
        json_event(e, &mut out);
        out.push('\n');
    }
    out
}

/// CSV header for [`to_csv`].
pub const CSV_HEADER: &str =
    "t_ns,event,app,core_from,core_to,cluster,level_from,level_to,value_a,value_b,flag,detail";

fn csv_row(e: &TraceEvent, out: &mut String) {
    struct Row<'a> {
        app: String,
        from: String,
        to: String,
        cluster: String,
        lf: String,
        lt: String,
        a: String,
        b: String,
        flag: String,
        detail: &'a str,
    }
    let empty = || String::new();
    let mut row = Row {
        app: empty(),
        from: empty(),
        to: empty(),
        cluster: empty(),
        lf: empty(),
        lt: empty(),
        a: empty(),
        b: empty(),
        flag: empty(),
        detail: "",
    };
    match *e {
        TraceEvent::EpochTick { epoch, .. } => row.a = epoch.to_string(),
        TraceEvent::Decision {
            app,
            target,
            score,
            ref logits,
            ..
        } => {
            row.app = app.map(|a| a.value().to_string()).unwrap_or_default();
            row.to = target.map(|c| c.index().to_string()).unwrap_or_default();
            row.a = format!("{score}");
            row.b = logits.len().to_string();
        }
        TraceEvent::Migration { app, from, to, .. } => {
            row.app = app.value().to_string();
            row.from = from.index().to_string();
            row.to = to.index().to_string();
        }
        TraceEvent::DvfsTransition {
            cluster,
            from_level,
            to_level,
            ..
        } => {
            row.cluster = cluster.index().to_string();
            row.lf = from_level.to_string();
            row.lt = to_level.to_string();
        }
        TraceEvent::QosSample {
            app,
            current,
            target,
            ..
        } => {
            row.app = app.value().to_string();
            row.a = format!("{}", current.value());
            row.b = format!("{}", target.value());
        }
        TraceEvent::ThermalSample {
            sensor, throttling, ..
        } => {
            row.a = format!("{}", sensor.value());
            row.flag = throttling.to_string();
        }
        TraceEvent::NpuJob {
            batch,
            latency,
            backend,
            ok,
            ..
        } => {
            row.a = batch.to_string();
            row.b = latency.as_nanos().to_string();
            row.flag = ok.to_string();
            row.detail = match backend {
                crate::event::TraceBackend::Npu => "npu",
                crate::event::TraceBackend::Cpu => "cpu",
            };
        }
        TraceEvent::Fault { kind, .. } => row.detail = kind.name(),
        TraceEvent::AppAdmitted { app, core, .. } => {
            row.app = app.value().to_string();
            row.to = core.index().to_string();
        }
        TraceEvent::AppCompleted {
            app,
            finished,
            violation_time,
            energy,
            migrations,
            ..
        } => {
            row.app = app.value().to_string();
            row.flag = finished.to_string();
            row.a = violation_time.as_nanos().to_string();
            row.b = format!("{}", energy.value());
            row.lf = migrations.to_string();
        }
        TraceEvent::RunEnd {
            energy,
            violation_time,
            migrations,
            ..
        } => {
            row.a = energy.value().to_string();
            row.b = violation_time.as_nanos().to_string();
            row.lf = migrations.to_string();
        }
        TraceEvent::CheckpointSaved {
            scope, seq, bytes, ..
        } => {
            row.a = seq.to_string();
            row.b = bytes.to_string();
            row.detail = scope.name();
        }
        TraceEvent::CheckpointRestored {
            scope,
            seq,
            skipped,
            ..
        } => {
            row.a = seq.to_string();
            row.b = skipped.to_string();
            row.detail = scope.name();
        }
        TraceEvent::BatchDispatched {
            device,
            requests,
            rows,
            latency,
            ..
        } => {
            row.to = device.map(|d| d.to_string()).unwrap_or_default();
            row.a = requests.to_string();
            row.b = latency.as_nanos().to_string();
            row.lf = rows.to_string();
            row.detail = if device.is_some() { "npu" } else { "cpu" };
        }
        TraceEvent::QueueSaturated {
            depth, retry_after, ..
        } => {
            row.a = depth.to_string();
            row.b = retry_after.as_nanos().to_string();
        }
        TraceEvent::RequestAdmitted {
            request,
            client,
            depth,
            ..
        } => {
            row.app = client.to_string();
            row.a = request.to_string();
            row.b = depth.to_string();
        }
        TraceEvent::RequestShed {
            client,
            reason,
            depth,
            retry_after,
            ..
        } => {
            row.app = client.to_string();
            row.a = depth.to_string();
            row.b = retry_after.as_nanos().to_string();
            row.detail = reason.name();
        }
        TraceEvent::DeadlineMiss {
            request,
            client,
            deadline,
            late_by,
            ..
        } => {
            row.app = client.to_string();
            row.a = if request == u64::MAX {
                String::new()
            } else {
                request.to_string()
            };
            row.b = deadline.as_nanos().to_string();
            row.lf = late_by.as_nanos().to_string();
        }
        TraceEvent::RetryScheduled {
            client,
            attempt,
            backoff,
            ..
        } => {
            row.app = client.to_string();
            row.a = attempt.to_string();
            row.b = backoff.as_nanos().to_string();
        }
        TraceEvent::CacheReport {
            hits,
            misses,
            entries,
            ..
        } => {
            row.a = hits.to_string();
            row.b = misses.to_string();
            row.lf = entries.to_string();
        }
    }
    let _ = write!(
        out,
        "{},{},{},{},{},{},{},{},{},{},{},{}",
        e.at().as_nanos(),
        e.kind(),
        row.app,
        row.from,
        row.to,
        row.cluster,
        row.lf,
        row.lt,
        row.a,
        row.b,
        row.flag,
        row.detail
    );
}

/// Renders a trace as CSV with the fixed [`CSV_HEADER`] schema. Sparse
/// columns are left empty for event kinds they do not apply to.
///
/// # Examples
///
/// ```
/// use hmc_types::SimTime;
/// use trace::{to_csv, TraceConfig, TraceEvent};
///
/// let mut r = TraceConfig::decisions().recorder().unwrap();
/// r.record(TraceEvent::EpochTick { at: SimTime::ZERO, epoch: 7 });
/// let csv = to_csv(&r.finish());
/// let mut lines = csv.lines();
/// assert!(lines.next().unwrap().starts_with("t_ns,event"));
/// assert_eq!(lines.next().unwrap(), "0,epoch_tick,,,,,,,7,,,");
/// ```
pub fn to_csv(log: &TraceLog) -> String {
    let mut out = String::with_capacity(48 * (log.events.len() + 1));
    out.push_str(CSV_HEADER);
    out.push('\n');
    for e in &log.events {
        csv_row(e, &mut out);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TraceConfig;
    use hmc_types::{AppId, CoreId, SimTime};

    fn sample_log() -> TraceLog {
        let mut r = TraceConfig::decisions().recorder().unwrap();
        r.record(TraceEvent::EpochTick {
            at: SimTime::ZERO,
            epoch: 0,
        });
        r.record(TraceEvent::Decision {
            at: SimTime::ZERO,
            app: Some(AppId::new(3)),
            target: Some(CoreId::new(4)),
            score: 1.5,
            logits: vec![0.25, -0.5],
        });
        r.record(TraceEvent::Migration {
            at: SimTime::ZERO,
            app: AppId::new(3),
            from: CoreId::new(0),
            to: CoreId::new(4),
        });
        r.finish()
    }

    #[test]
    fn jsonl_has_header_and_one_line_per_event() {
        let log = sample_log();
        let jsonl = to_jsonl(&log);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1 + log.events.len());
        assert!(lines[0].contains(&format!("\"trace_hash\":\"{}\"", log.hash)));
        assert!(lines[1].contains("\"event\":\"epoch_tick\""));
        assert!(lines[2].contains("\"logits\":[0.25,-0.5]"));
        assert!(lines[3].contains("\"from\":0"));
        // Every line is a braced object.
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "bad line: {l}");
        }
    }

    #[test]
    fn csv_has_fixed_width_rows() {
        let csv = to_csv(&sample_log());
        let commas = CSV_HEADER.matches(',').count();
        for line in csv.lines() {
            assert_eq!(line.matches(',').count(), commas, "ragged row: {line}");
        }
    }

    #[test]
    fn non_finite_scores_stay_valid_json() {
        let mut r = TraceConfig::decisions().recorder().unwrap();
        r.record(TraceEvent::Decision {
            at: SimTime::ZERO,
            app: None,
            target: None,
            score: f64::NEG_INFINITY,
            logits: vec![],
        });
        let jsonl = to_jsonl(&r.finish());
        assert!(jsonl.contains("\"score\":\"-inf\""), "{jsonl}");
    }
}

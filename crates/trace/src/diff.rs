//! Trace diffing: locate the first divergence between two runs.
//!
//! When a golden-trace check fails, the hash alone says only *that* the
//! runs differ. [`TraceDiff`] walks two event streams in lockstep and
//! reports the first index at which they disagree, the epoch it happened
//! in, and both events — usually enough to localize a regression to one
//! subsystem (a DVFS step, one decision, a fault) without rerunning.

use std::fmt::Write as _;

use hmc_types::SimTime;

use crate::event::TraceEvent;
use crate::recorder::TraceLog;

/// The first point at which two traces disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Index into the retained event streams (0-based).
    pub index: usize,
    /// The last `EpochTick` counter seen at or before the divergence
    /// (`None` if the streams diverged before the first epoch).
    pub epoch: Option<u64>,
    /// Simulated instant of the divergence.
    pub at: SimTime,
    /// The left run's event at `index` (`None`: left stream ended early).
    pub left: Option<TraceEvent>,
    /// The right run's event at `index` (`None`: right stream ended early).
    pub right: Option<TraceEvent>,
}

/// Compares two trace logs event by event.
///
/// # Examples
///
/// ```
/// use hmc_types::SimTime;
/// use trace::{TraceConfig, TraceDiff, TraceEvent};
///
/// let mut a = TraceConfig::decisions().recorder().unwrap();
/// let mut b = TraceConfig::decisions().recorder().unwrap();
/// for r in [&mut a, &mut b] {
///     r.record(TraceEvent::EpochTick { at: SimTime::ZERO, epoch: 0 });
/// }
/// b.record(TraceEvent::EpochTick { at: SimTime::from_millis(500), epoch: 1 });
/// let (a, b) = (a.finish(), b.finish());
/// let d = TraceDiff::new(&a, &b).first_divergence().unwrap();
/// assert_eq!(d.index, 1);
/// assert_eq!(d.epoch, Some(0));
/// assert!(d.left.is_none());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TraceDiff<'a> {
    left: &'a TraceLog,
    right: &'a TraceLog,
}

impl<'a> TraceDiff<'a> {
    /// Pairs two logs for comparison.
    pub fn new(left: &'a TraceLog, right: &'a TraceLog) -> Self {
        TraceDiff { left, right }
    }

    /// Whether the two runs are identical (by full-stream hash, so
    /// ring-dropped prefixes count too).
    pub fn identical(&self) -> bool {
        self.left.hash == self.right.hash
    }

    /// Finds the first index at which the retained streams disagree, or
    /// `None` if they are element-wise identical (note: if both rings
    /// dropped events, an early divergence may have been rotated out; the
    /// hash comparison in [`identical`](Self::identical) still catches it).
    pub fn first_divergence(&self) -> Option<Divergence> {
        let mut epoch = None;
        let n = self.left.events.len().max(self.right.events.len());
        for i in 0..n {
            let l = self.left.events.get(i);
            let r = self.right.events.get(i);
            if l == r {
                if let Some(TraceEvent::EpochTick { epoch: e, .. }) = l {
                    epoch = Some(*e);
                }
                continue;
            }
            let at = l.or(r).map(TraceEvent::at).unwrap_or(SimTime::ZERO);
            return Some(Divergence {
                index: i,
                epoch,
                at,
                left: l.cloned(),
                right: r.cloned(),
            });
        }
        None
    }

    /// A human-readable report: hash summary, then the first divergence
    /// with both events, or a note that the retained windows match.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "left:  hash={} events={} (emitted {}, dropped {})",
            self.left.hash,
            self.left.events.len(),
            self.left.emitted,
            self.left.dropped
        );
        let _ = writeln!(
            out,
            "right: hash={} events={} (emitted {}, dropped {})",
            self.right.hash,
            self.right.events.len(),
            self.right.emitted,
            self.right.dropped
        );
        if self.identical() {
            out.push_str("traces identical\n");
            return out;
        }
        match self.first_divergence() {
            Some(d) => {
                let epoch = d
                    .epoch
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "pre-epoch".into());
                let _ = writeln!(
                    out,
                    "first divergence at event #{} (epoch {}, t={} ms):",
                    d.index,
                    epoch,
                    d.at.as_nanos() / 1_000_000
                );
                let _ = writeln!(out, "  left:  {}", describe(d.left.as_ref()));
                let _ = writeln!(out, "  right: {}", describe(d.right.as_ref()));
            }
            None => {
                out.push_str("retained windows identical; divergence is in ring-dropped prefix\n");
            }
        }
        out
    }
}

fn describe(e: Option<&TraceEvent>) -> String {
    match e {
        None => "<stream ended>".into(),
        Some(e) => format!("{e:?}"),
    }
}

/// Convenience: the epoch of the first divergence between two logs, or
/// `None` when they match.
pub fn first_diverging_epoch(left: &TraceLog, right: &TraceLog) -> Option<Option<u64>> {
    TraceDiff::new(left, right)
        .first_divergence()
        .map(|d| d.epoch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::recorder::TraceConfig;

    fn tick(ms: u64, epoch: u64) -> TraceEvent {
        TraceEvent::EpochTick {
            at: SimTime::from_millis(ms),
            epoch,
        }
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        let mut a = TraceConfig::decisions().recorder().unwrap();
        let mut b = TraceConfig::decisions().recorder().unwrap();
        for i in 0..4 {
            a.record(tick(i * 500, i));
            b.record(tick(i * 500, i));
        }
        let (a, b) = (a.finish(), b.finish());
        let diff = TraceDiff::new(&a, &b);
        assert!(diff.identical());
        assert!(diff.first_divergence().is_none());
        assert!(diff.report().contains("traces identical"));
    }

    #[test]
    fn divergence_reports_epoch_and_index() {
        let mut a = TraceConfig::decisions().recorder().unwrap();
        let mut b = TraceConfig::decisions().recorder().unwrap();
        for i in 0..3 {
            a.record(tick(i * 500, i));
            b.record(tick(i * 500, i));
        }
        a.record(TraceEvent::Fault {
            at: SimTime::from_millis(1600),
            kind: crate::event::FaultKind::DvfsReject,
        });
        b.record(TraceEvent::Fault {
            at: SimTime::from_millis(1600),
            kind: crate::event::FaultKind::DvfsDelay,
        });
        let (a, b) = (a.finish(), b.finish());
        let d = TraceDiff::new(&a, &b).first_divergence().unwrap();
        assert_eq!(d.index, 3);
        assert_eq!(d.epoch, Some(2));
        assert_eq!(d.at, SimTime::from_millis(1600));
        let report = TraceDiff::new(&a, &b).report();
        assert!(report.contains("first divergence at event #3"), "{report}");
        assert!(report.contains("epoch 2"), "{report}");
        assert_eq!(first_diverging_epoch(&a, &b), Some(Some(2)));
    }

    #[test]
    fn kind_display_used_in_filtering() {
        // EventKind names are the export contract; sanity-check one here
        // so diff output and export columns agree.
        assert_eq!(EventKind::Migration.name(), "migration");
    }
}

//! Epoch-level tracing for the TOP-IL simulator.
//!
//! The simulator's control stack (migration policies, DVFS loops, DTM,
//! thermal sensing, the NPU inference path) emits a structured
//! [`TraceEvent`] stream into a bounded [`RingBuffer`] via a
//! [`TraceRecorder`]. The recorder maintains a stable 64-bit FNV-1a
//! [`TraceHash`] over the *entire* accepted stream — independent of the
//! ring capacity — which is the backbone of the golden-trace regression
//! suite: two runs are behaviorally identical iff their hashes match.
//!
//! - [`TraceConfig`] selects granularity ([`TraceGranularity::Off`] /
//!   `Decisions` / `Full`) and the ring capacity; `Off` constructs no
//!   recorder at all, so disabled tracing is a single `Option` check on
//!   the hot path.
//! - [`to_jsonl`] / [`to_csv`] export the retained window for offline
//!   analysis.
//! - [`TraceDiff`] reports the first diverging epoch between two runs
//!   when a golden check fails.
//!
//! The crate depends only on `hmc-types`, so every layer of the stack can
//! emit events without cycles.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod diff;
mod event;
mod export;
mod hash;
mod recorder;
mod ring;

pub use diff::{first_diverging_epoch, Divergence, TraceDiff};
pub use event::{CheckpointScope, EventKind, FaultKind, ShedReason, TraceBackend, TraceEvent};
pub use export::{to_csv, to_jsonl, CSV_HEADER};
pub use hash::{Fnv64, TraceHash};
pub use recorder::{TraceConfig, TraceGranularity, TraceLog, TraceRecorder};
pub use ring::RingBuffer;

//! The structured trace-event vocabulary.
//!
//! One [`TraceEvent`] is emitted per observable step of the control stack:
//! epoch boundaries, policy decisions (with the raw NN logits that led to
//! them), executed migrations, DVFS transitions, windowed QoS and thermal
//! samples, NPU job lifecycle, and fault/degradation events. Every event
//! carries the simulated instant it was observed at; within one run the
//! stream is monotone in that timestamp.

use std::fmt;

use hmc_types::{AppId, Celsius, Cluster, CoreId, Ips, Joules, SimDuration, SimTime};

use crate::hash::Fnv64;

/// Which compute backend served an inference job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceBackend {
    /// The (simulated) Kirin 970 NPU behind the HiAI DDK.
    Npu,
    /// The CPU cost model (ablation or degradation fallback).
    Cpu,
}

impl fmt::Display for TraceBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceBackend::Npu => write!(f, "npu"),
            TraceBackend::Cpu => write!(f, "cpu"),
        }
    }
}

/// A fault or degradation observed by the platform or a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A thermal-sensor sample never arrived (bus dropout).
    SensorDropout,
    /// A sensor sample was rejected by the plausibility filter.
    SensorRejected,
    /// The sensor-loss fail-safe engaged (lowest OPP on both clusters).
    FailsafeEngaged,
    /// The fail-safe released after a plausible sample returned.
    FailsafeReleased,
    /// A DVFS transition was rejected by an actuation fault.
    DvfsReject,
    /// A DVFS transition was delayed by an actuation fault.
    DvfsDelay,
    /// A single NPU inference job failed (before retries).
    NpuJobFailure,
    /// The NPU circuit breaker opened.
    BreakerOpen,
    /// A migration epoch was served by the CPU inference fallback.
    CpuFallback,
    /// A migration epoch was skipped entirely (inference deadline missed).
    DegradedEpoch,
    /// An NPU circuit breaker moved to half-open (cooldown over, probe
    /// allowed).
    BreakerHalfOpen,
    /// An NPU circuit breaker closed again (successful half-open probe).
    BreakerClosed,
}

impl FaultKind {
    /// Stable lower-snake name used in exports and hashing docs.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::SensorDropout => "sensor_dropout",
            FaultKind::SensorRejected => "sensor_rejected",
            FaultKind::FailsafeEngaged => "failsafe_engaged",
            FaultKind::FailsafeReleased => "failsafe_released",
            FaultKind::DvfsReject => "dvfs_reject",
            FaultKind::DvfsDelay => "dvfs_delay",
            FaultKind::NpuJobFailure => "npu_job_failure",
            FaultKind::BreakerOpen => "breaker_open",
            FaultKind::CpuFallback => "cpu_fallback",
            FaultKind::DegradedEpoch => "degraded_epoch",
            FaultKind::BreakerHalfOpen => "breaker_half_open",
            FaultKind::BreakerClosed => "breaker_closed",
        }
    }

    fn code(self) -> u8 {
        match self {
            FaultKind::SensorDropout => 0,
            FaultKind::SensorRejected => 1,
            FaultKind::FailsafeEngaged => 2,
            FaultKind::FailsafeReleased => 3,
            FaultKind::DvfsReject => 4,
            FaultKind::DvfsDelay => 5,
            FaultKind::NpuJobFailure => 6,
            FaultKind::BreakerOpen => 7,
            FaultKind::CpuFallback => 8,
            FaultKind::DegradedEpoch => 9,
            FaultKind::BreakerHalfOpen => 10,
            FaultKind::BreakerClosed => 11,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Why the shared NPU service turned a submission away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded submission queue was at hard capacity.
    QueueFull,
    /// Queue depth crossed the load-shedding depth watermark.
    DepthWatermark,
    /// The estimated service latency crossed the latency watermark.
    LatencyWatermark,
    /// The client's token bucket was empty (per-client rate limit).
    RateLimited,
}

impl ShedReason {
    /// Stable lower-snake name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::DepthWatermark => "depth_watermark",
            ShedReason::LatencyWatermark => "latency_watermark",
            ShedReason::RateLimited => "rate_limited",
        }
    }

    fn code(self) -> u8 {
        match self {
            ShedReason::QueueFull => 0,
            ShedReason::DepthWatermark => 1,
            ShedReason::LatencyWatermark => 2,
            ShedReason::RateLimited => 3,
        }
    }
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Which layer of the stack a checkpoint snapshot belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointScope {
    /// IL training state (MLP weights, Adam moments, aggregation buffer).
    Training,
    /// TOP-RL pretraining state (Q-table, exploration schedule).
    Rl,
    /// A bench sweep supervisor's job manifest.
    Sweep,
}

impl CheckpointScope {
    /// Stable lower-snake name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            CheckpointScope::Training => "training",
            CheckpointScope::Rl => "rl",
            CheckpointScope::Sweep => "sweep",
        }
    }

    fn code(self) -> u8 {
        match self {
            CheckpointScope::Training => 0,
            CheckpointScope::Rl => 1,
            CheckpointScope::Sweep => 2,
        }
    }
}

impl fmt::Display for CheckpointScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The kind of a [`TraceEvent`], used for granularity filtering and as the
/// `event` column of exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Start of a policy control epoch.
    EpochTick,
    /// A policy decision (may propose no migration).
    Decision,
    /// An executed application migration.
    Migration,
    /// An applied per-cluster DVFS transition.
    DvfsTransition,
    /// A windowed IPS-vs-target sample for one application.
    QosSample,
    /// A thermal-sensor sample.
    ThermalSample,
    /// One inference job (NPU attempt or CPU execution).
    NpuJob,
    /// A fault or degradation event.
    Fault,
    /// An application was admitted.
    AppAdmitted,
    /// An application retired (completed or terminated with the run).
    AppCompleted,
    /// End-of-run aggregate record.
    RunEnd,
    /// A checkpoint snapshot was written durably.
    CheckpointSaved,
    /// State was restored from a checkpoint snapshot.
    CheckpointRestored,
    /// The shared NPU service dispatched one coalesced batch to a device.
    BatchDispatched,
    /// The shared NPU service rejected a submission (queue full).
    QueueSaturated,
    /// The shared NPU service admitted a request through its middleware
    /// stack.
    RequestAdmitted,
    /// The shared NPU service shed a request (watermark or rate limit).
    RequestShed,
    /// A request could not meet its completion deadline (failed fast or
    /// rejected as infeasible at admission).
    DeadlineMiss,
    /// A client scheduled a classified retry with jittered backoff.
    RetryScheduled,
    /// A periodic policy-output cache report from the shared NPU service.
    CacheReport,
}

impl EventKind {
    /// Stable lower-snake name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::EpochTick => "epoch_tick",
            EventKind::Decision => "decision",
            EventKind::Migration => "migration",
            EventKind::DvfsTransition => "dvfs_transition",
            EventKind::QosSample => "qos_sample",
            EventKind::ThermalSample => "thermal_sample",
            EventKind::NpuJob => "npu_job",
            EventKind::Fault => "fault",
            EventKind::AppAdmitted => "app_admitted",
            EventKind::AppCompleted => "app_completed",
            EventKind::RunEnd => "run_end",
            EventKind::CheckpointSaved => "checkpoint_saved",
            EventKind::CheckpointRestored => "checkpoint_restored",
            EventKind::BatchDispatched => "batch_dispatched",
            EventKind::QueueSaturated => "queue_saturated",
            EventKind::RequestAdmitted => "request_admitted",
            EventKind::RequestShed => "request_shed",
            EventKind::DeadlineMiss => "deadline_miss",
            EventKind::RetryScheduled => "retry_scheduled",
            EventKind::CacheReport => "cache_report",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One structured trace event.
///
/// # Examples
///
/// ```
/// use hmc_types::{AppId, CoreId, SimTime};
/// use trace::{EventKind, TraceEvent};
///
/// let e = TraceEvent::Migration {
///     at: SimTime::from_millis(500),
///     app: AppId::new(0),
///     from: CoreId::new(1),
///     to: CoreId::new(5),
/// };
/// assert_eq!(e.kind(), EventKind::Migration);
/// assert_eq!(e.at(), SimTime::from_millis(500));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A policy control epoch began (migration epochs for TOP-IL/TOP-RL and
    /// the oracle, balance epochs for GTS).
    EpochTick {
        /// Observation instant.
        at: SimTime,
        /// Zero-based epoch counter of the emitting policy.
        epoch: u64,
    },
    /// A policy decision, including the evidence it was made on.
    Decision {
        /// Observation instant.
        at: SimTime,
        /// The application chosen for migration (`None`: keep the mapping).
        app: Option<AppId>,
        /// The chosen destination core.
        target: Option<CoreId>,
        /// The decision score (rating improvement, Q-value advantage, or
        /// predicted temperature gain in kelvin, per policy).
        score: f64,
        /// Raw model outputs backing the decision (the chosen AoI's NN
        /// rating row for TOP-IL, the agent's Q-row for TOP-RL; empty for
        /// heuristic policies).
        logits: Vec<f32>,
    },
    /// An application migrated between cores.
    Migration {
        /// Observation instant.
        at: SimTime,
        /// The migrated application.
        app: AppId,
        /// Source core.
        from: CoreId,
        /// Destination core.
        to: CoreId,
    },
    /// A per-cluster DVFS transition took effect.
    DvfsTransition {
        /// Observation instant.
        at: SimTime,
        /// The cluster that changed.
        cluster: Cluster,
        /// OPP index before.
        from_level: u8,
        /// OPP index after.
        to_level: u8,
    },
    /// Windowed measured performance vs. the QoS target of one application.
    QosSample {
        /// Observation instant.
        at: SimTime,
        /// The sampled application.
        app: AppId,
        /// Windowed measured IPS (`q_k`).
        current: Ips,
        /// The QoS target IPS.
        target: Ips,
    },
    /// A software-visible thermal-sensor sample.
    ThermalSample {
        /// Observation instant.
        at: SimTime,
        /// The filtered sensor estimate.
        sensor: Celsius,
        /// Whether DTM is currently clamping V/f levels.
        throttling: bool,
    },
    /// One inference job lifecycle record (one per NPU attempt or CPU
    /// execution).
    NpuJob {
        /// Epoch instant the job belongs to.
        at: SimTime,
        /// Batch size (number of AoI feature rows).
        batch: u32,
        /// End-to-end latency of this job.
        latency: SimDuration,
        /// Backend that executed it.
        backend: TraceBackend,
        /// Whether the job delivered a result.
        ok: bool,
    },
    /// A fault or degradation event.
    Fault {
        /// Observation instant.
        at: SimTime,
        /// What happened.
        kind: FaultKind,
    },
    /// An application was admitted onto a core.
    AppAdmitted {
        /// Observation instant.
        at: SimTime,
        /// The new application.
        app: AppId,
        /// Its initial core.
        core: CoreId,
    },
    /// An application retired.
    AppCompleted {
        /// Observation instant.
        at: SimTime,
        /// The application.
        app: AppId,
        /// `true` if it ran to completion, `false` if it was terminated
        /// (killed or still running when the run ended).
        finished: bool,
        /// Time spent with windowed IPS below target.
        violation_time: SimDuration,
        /// Dynamic CPU energy attributed to it.
        energy: Joules,
        /// Migrations performed on it.
        migrations: u64,
    },
    /// End-of-run aggregates, emitted exactly once when the platform
    /// finalizes.
    RunEnd {
        /// The final simulated instant.
        at: SimTime,
        /// Total CPU energy of the run.
        energy: Joules,
        /// Summed per-application QoS violation time.
        violation_time: SimDuration,
        /// Total executed migrations.
        migrations: u64,
    },
    /// A checkpoint snapshot was written durably (fsynced and renamed
    /// into place).
    CheckpointSaved {
        /// Observation instant.
        at: SimTime,
        /// Which layer snapshotted.
        scope: CheckpointScope,
        /// The snapshot's sequence number.
        seq: u64,
        /// Encoded snapshot size on disk.
        bytes: u64,
    },
    /// State was restored from a checkpoint snapshot (possibly after
    /// falling back past corrupt newer snapshots).
    CheckpointRestored {
        /// Observation instant.
        at: SimTime,
        /// Which layer restored.
        scope: CheckpointScope,
        /// Sequence number of the snapshot that validated.
        seq: u64,
        /// Corrupt newer snapshots skipped to reach it.
        skipped: u32,
    },
    /// The shared NPU service coalesced pending requests into one device
    /// job (the dynamic batcher's unit of work).
    BatchDispatched {
        /// Dispatch instant.
        at: SimTime,
        /// Index of the pooled device that executed the batch (`None` for
        /// the CPU fallback path).
        device: Option<u8>,
        /// Requests coalesced into the batch.
        requests: u32,
        /// Total feature rows across those requests.
        rows: u32,
        /// Device latency of the batched job (queueing excluded).
        latency: SimDuration,
    },
    /// The shared NPU service rejected a submission with backpressure
    /// (bounded queue at capacity).
    QueueSaturated {
        /// Rejection instant.
        at: SimTime,
        /// Queue depth at rejection (== capacity).
        depth: u32,
        /// Suggested resubmission delay returned to the client.
        retry_after: SimDuration,
    },
    /// The shared NPU service admitted a request past its middleware
    /// stack (validation, rate limit, shed, queue capacity).
    RequestAdmitted {
        /// Admission instant.
        at: SimTime,
        /// Service-global request id (the ticket value).
        request: u64,
        /// Submitting client id.
        client: u64,
        /// Queue depth after admission.
        depth: u32,
    },
    /// The shared NPU service shed a submission before queueing it
    /// (watermark crossing or per-client rate limit).
    RequestShed {
        /// Shed instant.
        at: SimTime,
        /// Submitting client id.
        client: u64,
        /// Why the request was turned away.
        reason: ShedReason,
        /// Queue depth at the shed decision.
        depth: u32,
        /// Backlog-derived resubmission hint returned to the client.
        retry_after: SimDuration,
    },
    /// A request could not meet its completion deadline: rejected as
    /// infeasible at admission, or failed fast at dispatch instead of
    /// being computed-then-discarded.
    DeadlineMiss {
        /// Detection instant.
        at: SimTime,
        /// Service-global request id (`u64::MAX` when the request was
        /// never admitted).
        request: u64,
        /// Submitting client id.
        client: u64,
        /// The absolute deadline that could not be met.
        deadline: SimTime,
        /// How far past the deadline the earliest possible completion
        /// would have landed.
        late_by: SimDuration,
    },
    /// A client classified an error as retryable and scheduled a
    /// deterministic jittered backoff before resubmitting.
    RetryScheduled {
        /// Scheduling instant.
        at: SimTime,
        /// Retrying client id.
        client: u64,
        /// 1-based retry attempt number.
        attempt: u32,
        /// The backoff before the resubmission.
        backoff: SimDuration,
    },
    /// Periodic policy-output cache counters from the shared NPU service
    /// (deltas since the previous report). The cache replays memoized
    /// numeric results for repeated quantized feature vectors; it never
    /// changes simulated device time, so these counters are identical
    /// across kernel modes and worker counts.
    CacheReport {
        /// Report instant (metrics epoch boundary).
        at: SimTime,
        /// Cache hits since the previous report.
        hits: u64,
        /// Cache misses since the previous report.
        misses: u64,
        /// Resident entries at the report instant.
        entries: u64,
    },
}

impl TraceEvent {
    /// The instant the event was observed at.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::EpochTick { at, .. }
            | TraceEvent::Decision { at, .. }
            | TraceEvent::Migration { at, .. }
            | TraceEvent::DvfsTransition { at, .. }
            | TraceEvent::QosSample { at, .. }
            | TraceEvent::ThermalSample { at, .. }
            | TraceEvent::NpuJob { at, .. }
            | TraceEvent::Fault { at, .. }
            | TraceEvent::AppAdmitted { at, .. }
            | TraceEvent::AppCompleted { at, .. }
            | TraceEvent::RunEnd { at, .. }
            | TraceEvent::CheckpointSaved { at, .. }
            | TraceEvent::CheckpointRestored { at, .. }
            | TraceEvent::BatchDispatched { at, .. }
            | TraceEvent::QueueSaturated { at, .. }
            | TraceEvent::RequestAdmitted { at, .. }
            | TraceEvent::RequestShed { at, .. }
            | TraceEvent::DeadlineMiss { at, .. }
            | TraceEvent::RetryScheduled { at, .. }
            | TraceEvent::CacheReport { at, .. } => at,
        }
    }

    /// The event's kind.
    pub fn kind(&self) -> EventKind {
        match self {
            TraceEvent::EpochTick { .. } => EventKind::EpochTick,
            TraceEvent::Decision { .. } => EventKind::Decision,
            TraceEvent::Migration { .. } => EventKind::Migration,
            TraceEvent::DvfsTransition { .. } => EventKind::DvfsTransition,
            TraceEvent::QosSample { .. } => EventKind::QosSample,
            TraceEvent::ThermalSample { .. } => EventKind::ThermalSample,
            TraceEvent::NpuJob { .. } => EventKind::NpuJob,
            TraceEvent::Fault { .. } => EventKind::Fault,
            TraceEvent::AppAdmitted { .. } => EventKind::AppAdmitted,
            TraceEvent::AppCompleted { .. } => EventKind::AppCompleted,
            TraceEvent::RunEnd { .. } => EventKind::RunEnd,
            TraceEvent::CheckpointSaved { .. } => EventKind::CheckpointSaved,
            TraceEvent::CheckpointRestored { .. } => EventKind::CheckpointRestored,
            TraceEvent::BatchDispatched { .. } => EventKind::BatchDispatched,
            TraceEvent::QueueSaturated { .. } => EventKind::QueueSaturated,
            TraceEvent::RequestAdmitted { .. } => EventKind::RequestAdmitted,
            TraceEvent::RequestShed { .. } => EventKind::RequestShed,
            TraceEvent::DeadlineMiss { .. } => EventKind::DeadlineMiss,
            TraceEvent::RetryScheduled { .. } => EventKind::RetryScheduled,
            TraceEvent::CacheReport { .. } => EventKind::CacheReport,
        }
    }

    /// Feeds the event's canonical encoding into a hasher. The encoding is
    /// part of the golden-fixture contract: changing it invalidates every
    /// committed trace hash (regenerate with `BLESS=1`).
    pub fn hash_into(&self, h: &mut Fnv64) {
        match *self {
            TraceEvent::EpochTick { at, epoch } => {
                h.write_u8(0);
                h.write_u64(at.as_nanos());
                h.write_u64(epoch);
            }
            TraceEvent::Decision {
                at,
                app,
                target,
                score,
                ref logits,
            } => {
                h.write_u8(1);
                h.write_u64(at.as_nanos());
                h.write_opt_u64(app.map(AppId::value));
                h.write_opt_u64(target.map(|c| c.index() as u64));
                h.write_f64(score);
                h.write_u64(logits.len() as u64);
                for &l in logits {
                    h.write_f32(l);
                }
            }
            TraceEvent::Migration { at, app, from, to } => {
                h.write_u8(2);
                h.write_u64(at.as_nanos());
                h.write_u64(app.value());
                h.write_u8(from.index() as u8);
                h.write_u8(to.index() as u8);
            }
            TraceEvent::DvfsTransition {
                at,
                cluster,
                from_level,
                to_level,
            } => {
                h.write_u8(3);
                h.write_u64(at.as_nanos());
                h.write_u8(cluster.index() as u8);
                h.write_u8(from_level);
                h.write_u8(to_level);
            }
            TraceEvent::QosSample {
                at,
                app,
                current,
                target,
            } => {
                h.write_u8(4);
                h.write_u64(at.as_nanos());
                h.write_u64(app.value());
                h.write_f64(current.value());
                h.write_f64(target.value());
            }
            TraceEvent::ThermalSample {
                at,
                sensor,
                throttling,
            } => {
                h.write_u8(5);
                h.write_u64(at.as_nanos());
                h.write_f64(sensor.value());
                h.write_u8(throttling as u8);
            }
            TraceEvent::NpuJob {
                at,
                batch,
                latency,
                backend,
                ok,
            } => {
                h.write_u8(6);
                h.write_u64(at.as_nanos());
                h.write_u64(batch as u64);
                h.write_u64(latency.as_nanos());
                h.write_u8(matches!(backend, TraceBackend::Cpu) as u8);
                h.write_u8(ok as u8);
            }
            TraceEvent::Fault { at, kind } => {
                h.write_u8(7);
                h.write_u64(at.as_nanos());
                h.write_u8(kind.code());
            }
            TraceEvent::AppAdmitted { at, app, core } => {
                h.write_u8(8);
                h.write_u64(at.as_nanos());
                h.write_u64(app.value());
                h.write_u8(core.index() as u8);
            }
            TraceEvent::AppCompleted {
                at,
                app,
                finished,
                violation_time,
                energy,
                migrations,
            } => {
                h.write_u8(9);
                h.write_u64(at.as_nanos());
                h.write_u64(app.value());
                h.write_u8(finished as u8);
                h.write_u64(violation_time.as_nanos());
                h.write_f64(energy.value());
                h.write_u64(migrations);
            }
            TraceEvent::RunEnd {
                at,
                energy,
                violation_time,
                migrations,
            } => {
                h.write_u8(10);
                h.write_u64(at.as_nanos());
                h.write_f64(energy.value());
                h.write_u64(violation_time.as_nanos());
                h.write_u64(migrations);
            }
            TraceEvent::CheckpointSaved {
                at,
                scope,
                seq,
                bytes,
            } => {
                h.write_u8(11);
                h.write_u64(at.as_nanos());
                h.write_u8(scope.code());
                h.write_u64(seq);
                h.write_u64(bytes);
            }
            TraceEvent::CheckpointRestored {
                at,
                scope,
                seq,
                skipped,
            } => {
                h.write_u8(12);
                h.write_u64(at.as_nanos());
                h.write_u8(scope.code());
                h.write_u64(seq);
                h.write_u64(skipped as u64);
            }
            TraceEvent::BatchDispatched {
                at,
                device,
                requests,
                rows,
                latency,
            } => {
                h.write_u8(13);
                h.write_u64(at.as_nanos());
                h.write_opt_u64(device.map(u64::from));
                h.write_u64(requests as u64);
                h.write_u64(rows as u64);
                h.write_u64(latency.as_nanos());
            }
            TraceEvent::QueueSaturated {
                at,
                depth,
                retry_after,
            } => {
                h.write_u8(14);
                h.write_u64(at.as_nanos());
                h.write_u64(depth as u64);
                h.write_u64(retry_after.as_nanos());
            }
            TraceEvent::RequestAdmitted {
                at,
                request,
                client,
                depth,
            } => {
                h.write_u8(15);
                h.write_u64(at.as_nanos());
                h.write_u64(request);
                h.write_u64(client);
                h.write_u64(depth as u64);
            }
            TraceEvent::RequestShed {
                at,
                client,
                reason,
                depth,
                retry_after,
            } => {
                h.write_u8(16);
                h.write_u64(at.as_nanos());
                h.write_u64(client);
                h.write_u8(reason.code());
                h.write_u64(depth as u64);
                h.write_u64(retry_after.as_nanos());
            }
            TraceEvent::DeadlineMiss {
                at,
                request,
                client,
                deadline,
                late_by,
            } => {
                h.write_u8(17);
                h.write_u64(at.as_nanos());
                h.write_u64(request);
                h.write_u64(client);
                h.write_u64(deadline.as_nanos());
                h.write_u64(late_by.as_nanos());
            }
            TraceEvent::RetryScheduled {
                at,
                client,
                attempt,
                backoff,
            } => {
                h.write_u8(18);
                h.write_u64(at.as_nanos());
                h.write_u64(client);
                h.write_u64(attempt as u64);
                h.write_u64(backoff.as_nanos());
            }
            TraceEvent::CacheReport {
                at,
                hits,
                misses,
                entries,
            } => {
                h.write_u8(19);
                h.write_u64(at.as_nanos());
                h.write_u64(hits);
                h.write_u64(misses);
                h.write_u64(entries);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_timestamps() {
        let at = SimTime::from_millis(42);
        let events = [
            TraceEvent::EpochTick { at, epoch: 0 },
            TraceEvent::Fault {
                at,
                kind: FaultKind::DvfsReject,
            },
            TraceEvent::RunEnd {
                at,
                energy: Joules::ZERO,
                violation_time: SimDuration::ZERO,
                migrations: 0,
            },
        ];
        for e in &events {
            assert_eq!(e.at(), at);
        }
        assert_eq!(events[0].kind(), EventKind::EpochTick);
        assert_eq!(events[1].kind().name(), "fault");
    }

    #[test]
    fn checkpoint_events_have_stable_names_and_distinct_hashes() {
        let at = SimTime::from_millis(1);
        let saved = TraceEvent::CheckpointSaved {
            at,
            scope: CheckpointScope::Sweep,
            seq: 3,
            bytes: 128,
        };
        let restored = TraceEvent::CheckpointRestored {
            at,
            scope: CheckpointScope::Sweep,
            seq: 3,
            skipped: 1,
        };
        assert_eq!(saved.kind().name(), "checkpoint_saved");
        assert_eq!(restored.kind().name(), "checkpoint_restored");
        assert_eq!(CheckpointScope::Training.name(), "training");
        assert_eq!(CheckpointScope::Rl.name(), "rl");
        let mut hs = Fnv64::new();
        let mut hr = Fnv64::new();
        saved.hash_into(&mut hs);
        restored.hash_into(&mut hr);
        assert_ne!(hs.finish(), hr.finish());
    }

    #[test]
    fn distinct_events_hash_differently() {
        let a = TraceEvent::EpochTick {
            at: SimTime::ZERO,
            epoch: 0,
        };
        let b = TraceEvent::EpochTick {
            at: SimTime::ZERO,
            epoch: 1,
        };
        let mut ha = Fnv64::new();
        let mut hb = Fnv64::new();
        a.hash_into(&mut ha);
        b.hash_into(&mut hb);
        assert_ne!(ha.finish(), hb.finish());
    }
}

//! A stable 64-bit trace hash for determinism checks.
//!
//! The standard-library `Hasher` is explicitly *not* stable across
//! releases, so golden fixtures are built on a hand-rolled FNV-1a
//! implementation whose output is part of the repository's test contract:
//! the same event stream hashes to the same value on every platform,
//! toolchain, and release.

use std::fmt;
use std::str::FromStr;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a (64-bit) hasher with typed write helpers.
///
/// # Examples
///
/// ```
/// use trace::Fnv64;
/// let mut h = Fnv64::new();
/// h.write_u64(42);
/// let a = h.finish();
/// let mut h = Fnv64::new();
/// h.write_u64(43);
/// assert_ne!(a, h.finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// Creates a hasher at the FNV offset basis.
    pub const fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds an optional `u64`: a presence byte, then the value.
    pub fn write_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.write_u8(0),
            Some(v) => {
                self.write_u8(1);
                self.write_u64(v);
            }
        }
    }

    /// Feeds an `f32` by its IEEE-754 bit pattern.
    pub fn write_f32(&mut self, v: f32) {
        self.write_bytes(&v.to_bits().to_le_bytes());
    }

    /// Feeds an `f64` by its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_bytes(&v.to_bits().to_le_bytes());
    }

    /// The current hash value.
    pub const fn finish(self) -> u64 {
        self.0
    }
}

/// A finalized 64-bit trace hash, displayed as 16 hex digits.
///
/// # Examples
///
/// ```
/// use trace::TraceHash;
/// let h = TraceHash::new(0xdead_beef);
/// assert_eq!(h.to_string(), "00000000deadbeef");
/// assert_eq!("00000000deadbeef".parse::<TraceHash>().unwrap(), h);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceHash(u64);

impl TraceHash {
    /// Wraps a raw hash value.
    pub const fn new(v: u64) -> Self {
        TraceHash(v)
    }

    /// The raw 64-bit value.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TraceHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl FromStr for TraceHash {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        u64::from_str_radix(s.trim(), 16).map(TraceHash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer() {
        // FNV-1a of the empty input is the offset basis; of "a" the
        // published test vector.
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv64::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn option_encoding_is_unambiguous() {
        let mut a = Fnv64::new();
        a.write_opt_u64(Some(0));
        let mut b = Fnv64::new();
        b.write_opt_u64(None);
        b.write_u64(0); // a None followed by an unrelated zero
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hash_round_trips_through_display() {
        let h = TraceHash::new(0x0123_4567_89ab_cdef);
        assert_eq!(h.to_string().parse::<TraceHash>().unwrap(), h);
    }
}

//! The trace recorder: granularity filtering, incremental hashing, and the
//! bounded event ring.

use hmc_types::{SimDuration, SimTime};

use crate::event::{EventKind, TraceEvent};
use crate::hash::{Fnv64, TraceHash};
use crate::ring::RingBuffer;

/// How much of the event vocabulary a run records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceGranularity {
    /// Tracing disabled: no recorder is constructed, emission is a no-op.
    #[default]
    Off,
    /// Control-plane events only: epochs, decisions, migrations, DVFS
    /// transitions, NPU jobs, faults, application lifecycle, run end.
    Decisions,
    /// Everything in `Decisions` plus periodic QoS and thermal samples.
    Full,
}

/// Configuration of the tracing subsystem for one run.
///
/// # Examples
///
/// ```
/// use trace::{TraceConfig, TraceGranularity};
/// let config = TraceConfig::full();
/// assert_eq!(config.granularity, TraceGranularity::Full);
/// assert!(TraceConfig::off().recorder().is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// What to record.
    pub granularity: TraceGranularity,
    /// Ring-buffer capacity (events kept in memory; the hash covers the
    /// full stream regardless).
    pub capacity: usize,
    /// Interval between periodic QoS/thermal samples (`Full` granularity).
    pub sample_interval: SimDuration,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

impl TraceConfig {
    /// Default ring capacity.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Tracing disabled (the default).
    pub fn off() -> Self {
        TraceConfig {
            granularity: TraceGranularity::Off,
            capacity: Self::DEFAULT_CAPACITY,
            sample_interval: SimDuration::from_millis(50),
        }
    }

    /// Control-plane events only.
    pub fn decisions() -> Self {
        TraceConfig {
            granularity: TraceGranularity::Decisions,
            ..Self::off()
        }
    }

    /// Everything, sampled at the default 50 ms interval.
    pub fn full() -> Self {
        TraceConfig {
            granularity: TraceGranularity::Full,
            ..Self::off()
        }
    }

    /// Whether this configuration records `kind`.
    pub fn accepts(&self, kind: EventKind) -> bool {
        match self.granularity {
            TraceGranularity::Off => false,
            TraceGranularity::Decisions => {
                !matches!(kind, EventKind::QosSample | EventKind::ThermalSample)
            }
            TraceGranularity::Full => true,
        }
    }

    /// Builds a recorder, or `None` when tracing is off.
    pub fn recorder(self) -> Option<TraceRecorder> {
        match self.granularity {
            TraceGranularity::Off => None,
            _ => Some(TraceRecorder::new(self)),
        }
    }
}

/// The finalized trace of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLog {
    /// The recorded events, oldest first (at most the ring capacity; when
    /// `dropped > 0` the head of the stream was overwritten).
    pub events: Vec<TraceEvent>,
    /// Stable hash over the *entire* accepted event stream, including
    /// events later overwritten in the ring.
    pub hash: TraceHash,
    /// Total events accepted by the granularity filter.
    pub emitted: u64,
    /// Events overwritten in the ring (memory bound exceeded).
    pub dropped: u64,
}

impl TraceLog {
    /// Number of `EpochTick` events in the retained window.
    pub fn epochs(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind() == EventKind::EpochTick)
            .count() as u64
    }

    /// The retained window as CSV (see [`crate::to_csv`]).
    pub fn csv(&self) -> String {
        crate::export::to_csv(self)
    }

    /// The retained window as JSONL (see [`crate::to_jsonl`]).
    pub fn jsonl(&self) -> String {
        crate::export::to_jsonl(self)
    }
}

/// Records accepted events into a bounded ring while hashing the full
/// stream incrementally.
///
/// # Examples
///
/// ```
/// use hmc_types::SimTime;
/// use trace::{TraceConfig, TraceEvent};
///
/// let mut recorder = TraceConfig::decisions().recorder().unwrap();
/// recorder.record(TraceEvent::EpochTick { at: SimTime::ZERO, epoch: 0 });
/// let log = recorder.finish();
/// assert_eq!(log.emitted, 1);
/// assert_eq!(log.dropped, 0);
/// ```
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    config: TraceConfig,
    ring: RingBuffer<TraceEvent>,
    hasher: Fnv64,
    emitted: u64,
    dropped: u64,
    last_at: SimTime,
}

impl TraceRecorder {
    /// Creates a recorder for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's granularity is `Off` (use
    /// [`TraceConfig::recorder`]) or its capacity is zero.
    pub fn new(config: TraceConfig) -> Self {
        assert!(
            config.granularity != TraceGranularity::Off,
            "recorder for disabled tracing"
        );
        TraceRecorder {
            config,
            ring: RingBuffer::new(config.capacity),
            hasher: Fnv64::new(),
            emitted: 0,
            dropped: 0,
            last_at: SimTime::ZERO,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Records one event (dropped silently if the granularity filter
    /// rejects its kind). Events must be emitted in nondecreasing
    /// `SimTime` order; violations panic in debug builds.
    pub fn record(&mut self, event: TraceEvent) {
        if !self.config.accepts(event.kind()) {
            return;
        }
        debug_assert!(
            event.at() >= self.last_at,
            "trace events must be monotone in SimTime: {:?} after {}",
            event,
            self.last_at,
        );
        self.last_at = event.at();
        event.hash_into(&mut self.hasher);
        self.emitted += 1;
        if self.ring.push(event).is_some() {
            self.dropped += 1;
        }
    }

    /// The hash over everything accepted so far.
    pub fn hash(&self) -> TraceHash {
        TraceHash::new(self.hasher.finish())
    }

    /// Events accepted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Finalizes into a [`TraceLog`].
    pub fn finish(self) -> TraceLog {
        TraceLog {
            hash: TraceHash::new(self.hasher.finish()),
            emitted: self.emitted,
            dropped: self.dropped,
            events: self.ring.into_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(ms: u64, epoch: u64) -> TraceEvent {
        TraceEvent::EpochTick {
            at: SimTime::from_millis(ms),
            epoch,
        }
    }

    #[test]
    fn granularity_filters_samples() {
        let decisions = TraceConfig::decisions();
        assert!(decisions.accepts(EventKind::Migration));
        assert!(!decisions.accepts(EventKind::QosSample));
        assert!(!decisions.accepts(EventKind::ThermalSample));
        let full = TraceConfig::full();
        assert!(full.accepts(EventKind::QosSample));
        assert!(!TraceConfig::off().accepts(EventKind::Migration));
    }

    #[test]
    fn hash_covers_overwritten_events() {
        let config = TraceConfig {
            capacity: 2,
            ..TraceConfig::decisions()
        };
        let mut bounded = TraceRecorder::new(config);
        let mut unbounded = TraceConfig::decisions().recorder().unwrap();
        for i in 0..10 {
            bounded.record(tick(i, i));
            unbounded.record(tick(i, i));
        }
        let bounded = bounded.finish();
        let unbounded = unbounded.finish();
        assert_eq!(bounded.hash, unbounded.hash, "hash is ring-independent");
        assert_eq!(bounded.events.len(), 2);
        assert_eq!(bounded.dropped, 8);
        assert_eq!(bounded.emitted, 10);
        assert_eq!(unbounded.dropped, 0);
    }

    #[test]
    fn epochs_counts_ticks() {
        let mut r = TraceConfig::decisions().recorder().unwrap();
        for i in 0..3 {
            r.record(tick(i * 500, i));
        }
        assert_eq!(r.finish().epochs(), 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "monotone")]
    fn out_of_order_events_panic_in_debug() {
        let mut r = TraceConfig::decisions().recorder().unwrap();
        r.record(tick(100, 0));
        r.record(tick(50, 1));
    }
}

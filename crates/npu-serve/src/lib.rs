//! Shared NPU inference service with dynamic batching and a
//! production-grade admission layer.
//!
//! The paper gives every HiKey 970 board its own NPU. At fleet scale that
//! inverts: the NPU's driver round-trip (~3.9 ms) dominates and is nearly
//! independent of the batch size, so a *pool* of shared devices serving
//! many boards' migration-decision requests through one batched call
//! amortizes the round-trip across the fleet. This crate is that service:
//!
//! * [`SubmissionQueue`] — a bounded queue with admission control: when
//!   the backlog hits capacity, new requests are rejected with a
//!   retry-after hint and the depth at rejection (and a `QueueSaturated`
//!   trace event) instead of growing the queue without bound,
//! * an **admission middleware stack** ([`middleware`]) every submission
//!   runs through before it may occupy a queue slot: input validation,
//!   deadline feasibility ([`SubmitOptions::deadline`] — infeasible
//!   deadlines fail fast with [`ServeError::DeadlineExceeded`] instead of
//!   computing-then-discarding), per-client token-bucket rate limiting
//!   ([`RateLimit`], keyed by [`ClientId`], refilled in virtual time),
//!   and watermark-driven **load shedding** with a backlog-derived
//!   retry-after and a graceful CPU-degrade rung before dropping,
//! * [`NpuService`] — the dynamic batcher and virtual-time device pool:
//!   pending requests coalesce into one batch call once `max_batch`
//!   requests wait or the oldest request hits its `max_wait` deadline
//!   (deadline-aware ordering), the batch lands on the earliest-free
//!   device ([`npu::Occupancy`]), and each request's activations are
//!   quantized in its own group ([`npu::NpuModel::infer_grouped`]) so
//!   results are **bit-identical** to dedicated-device issuance,
//! * per-device **circuit breakers** (reusing [`faults::CircuitBreaker`])
//!   — a device that keeps failing is taken out of rotation and its
//!   traffic drains to a CPU fallback until the cooldown probe passes;
//!   every transition (open, half-open, closed) is a drained trace event,
//! * [`SharedClient`] — a [`topil::PolicyClient`] adapter with classified
//!   retries: retryable failures ([`RetryClass::Retryable`]) back off with
//!   deterministic jitter under the service's [`RetryPolicy`], terminal
//!   failures degrade the epoch immediately,
//! * a **worker pool** of std threads (no async runtime) that computes
//!   ready batches in parallel; results are joined in dispatch order so
//!   the service stays deterministic.
//!
//! # Examples
//!
//! ```
//! use hmc_types::SimTime;
//! use nn::{Matrix, Mlp};
//! use npu_serve::{NpuService, ServeConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mlp = Mlp::with_topology(21, 4, 64, 8, &mut StdRng::seed_from_u64(0));
//! let mut service = NpuService::new(&mlp, ServeConfig::default());
//! let request = Matrix::from_rows(vec![vec![0.1; 21]; 3]);
//! // Admission control may reject instead of queueing without bound:
//! // honor the advertised retry-after rather than unwrapping.
//! match service.submit(&request, SimTime::ZERO) {
//!     Ok(ticket) => {
//!         service.flush(SimTime::ZERO);
//!         let reply = service.take_reply(ticket).unwrap();
//!         assert_eq!(reply.output.unwrap().rows(), 3);
//!     }
//!     Err(rejected) => {
//!         // Back off and resubmit no earlier than this.
//!         let _retry_at = SimTime::ZERO + rejected.retry_after;
//!         assert!(rejected.depth > 0);
//!     }
//! }
//! ```

#![warn(missing_docs)]

mod client;
mod config;
mod error;
mod evented;
mod limiter;
pub mod middleware;
mod queue;
mod retry;
mod service;
mod shed;
mod stats;
mod tier;

pub use client::SharedClient;
pub use config::{ConfigError, ServeConfig};
pub use error::ServeError;
pub use evented::Evented;
pub use limiter::{ClientId, RateLimit};
pub use middleware::{Admission, AdmissionContext, AdmissionLayer};
pub use queue::{Rejected, SubmissionQueue};
pub use retry::{RetryClass, RetryPolicy};
pub use service::{NpuService, RequestTicket, SubmitOptions};
pub use shed::Backlog;
pub use stats::{MetricsSnapshot, ServeStats};
pub use tier::{
    ServedBy, TierConfig, TierOutcome, TierReply, TierScope, TierStats, TierSubmit, TierTicket,
    TierTransition, TieredService,
};

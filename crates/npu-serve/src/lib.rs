//! Shared NPU inference service with dynamic batching.
//!
//! The paper gives every HiKey 970 board its own NPU. At fleet scale that
//! inverts: the NPU's driver round-trip (~3.9 ms) dominates and is nearly
//! independent of the batch size, so a *pool* of shared devices serving
//! many boards' migration-decision requests through one batched call
//! amortizes the round-trip across the fleet. This crate is that service:
//!
//! * [`SubmissionQueue`] — a bounded queue with admission control: when
//!   the backlog hits capacity, new requests are rejected with a
//!   retry-after hint (and a `QueueSaturated` trace event) instead of
//!   growing the queue without bound,
//! * [`NpuService`] — the dynamic batcher and virtual-time device pool:
//!   pending requests coalesce into one batch call once `max_batch`
//!   requests wait or the oldest request hits its `max_wait` deadline
//!   (deadline-aware ordering), the batch lands on the earliest-free
//!   device ([`npu::Occupancy`]), and each request's activations are
//!   quantized in its own group ([`npu::NpuModel::infer_grouped`]) so
//!   results are **bit-identical** to dedicated-device issuance,
//! * per-device **circuit breakers** (reusing [`faults::CircuitBreaker`])
//!   — a device that keeps failing is taken out of rotation and its
//!   traffic drains to a CPU fallback until the cooldown probe passes,
//! * [`SharedClient`] — a [`topil::PolicyClient`] adapter, so a board's
//!   migration policy issues its requests through the shared service
//!   without knowing it is not a dedicated NPU,
//! * a **worker pool** of std threads (no async runtime) that computes
//!   ready batches in parallel; results are joined in dispatch order so
//!   the service stays deterministic.
//!
//! # Examples
//!
//! ```
//! use hmc_types::SimTime;
//! use nn::{Matrix, Mlp};
//! use npu_serve::{NpuService, ServeConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mlp = Mlp::with_topology(21, 4, 64, 8, &mut StdRng::seed_from_u64(0));
//! let mut service = NpuService::new(&mlp, ServeConfig::default());
//! let request = Matrix::from_rows(vec![vec![0.1; 21]; 3]);
//! let ticket = service.submit(&request, SimTime::ZERO).unwrap();
//! service.flush(SimTime::ZERO);
//! let reply = service.take_reply(ticket).unwrap();
//! assert_eq!(reply.output.unwrap().rows(), 3);
//! ```

#![warn(missing_docs)]

mod client;
mod config;
mod queue;
mod service;
mod stats;

pub use client::SharedClient;
pub use config::ServeConfig;
pub use queue::{Rejected, SubmissionQueue};
pub use service::{NpuService, RequestTicket};
pub use stats::ServeStats;

//! Typed error taxonomy of the service layer.

use std::fmt;

use hmc_types::{SimDuration, SimTime};
use trace::ShedReason;

use crate::limiter::ClientId;
use crate::retry::RetryClass;

/// Why the service turned a submission down (or failed an admitted
/// request fast).
///
/// Every variant carries enough context for the caller to act without
/// parsing strings, and [`ServeError::retry_class`] partitions the
/// taxonomy into retryable conditions (back off and resubmit) and
/// terminal ones (give the request up).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeError {
    /// The request's absolute deadline cannot be met: it was infeasible
    /// at admission, or capacity/faults pushed its earliest completion
    /// past the deadline after it was admitted. Terminal — resubmitting
    /// the same deadline would fail again later.
    DeadlineExceeded {
        /// The absolute deadline that cannot be met.
        deadline: SimTime,
        /// When the service detected the miss.
        at: SimTime,
        /// How far past the deadline the earliest completion would land.
        late_by: SimDuration,
    },
    /// Load shedding turned the submission away before queueing it:
    /// the queue was full, or a depth/latency watermark was crossed.
    /// Retryable after `retry_after`.
    Shed {
        /// Which shed condition fired.
        reason: ShedReason,
        /// Queue depth at the decision.
        depth: usize,
        /// Backlog-derived resubmission hint.
        retry_after: SimDuration,
    },
    /// The client exhausted its token bucket. Retryable once the bucket
    /// refills (in virtual time).
    RateLimited {
        /// The throttled client.
        client: ClientId,
        /// Virtual time until one token is available again.
        retry_after: SimDuration,
    },
    /// The submission itself is malformed (empty batch, wrong feature
    /// width). Terminal — retrying identical input cannot succeed.
    InvalidInput {
        /// What was wrong with the input.
        reason: &'static str,
    },
}

impl ServeError {
    /// Whether a client should resubmit after backing off, or give the
    /// request up.
    pub fn retry_class(&self) -> RetryClass {
        match self {
            ServeError::Shed { .. } | ServeError::RateLimited { .. } => RetryClass::Retryable,
            ServeError::DeadlineExceeded { .. } | ServeError::InvalidInput { .. } => {
                RetryClass::Terminal
            }
        }
    }

    /// The service's resubmission hint, when the error carries one.
    pub fn retry_after(&self) -> Option<SimDuration> {
        match self {
            ServeError::Shed { retry_after, .. } | ServeError::RateLimited { retry_after, .. } => {
                Some(*retry_after)
            }
            _ => None,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::DeadlineExceeded {
                deadline, late_by, ..
            } => write!(
                f,
                "deadline {deadline:?} cannot be met (late by {late_by:?})"
            ),
            ServeError::Shed {
                reason,
                depth,
                retry_after,
            } => write!(
                f,
                "shed ({reason}) at queue depth {depth}, retry after {retry_after:?}"
            ),
            ServeError::RateLimited {
                client,
                retry_after,
            } => write!(
                f,
                "client {client} rate limited, retry after {retry_after:?}"
            ),
            ServeError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_partitions_the_taxonomy() {
        let shed = ServeError::Shed {
            reason: ShedReason::DepthWatermark,
            depth: 10,
            retry_after: SimDuration::from_millis(2),
        };
        let limited = ServeError::RateLimited {
            client: ClientId::new(4),
            retry_after: SimDuration::from_millis(1),
        };
        let late = ServeError::DeadlineExceeded {
            deadline: SimTime::from_millis(5),
            at: SimTime::from_millis(7),
            late_by: SimDuration::from_millis(2),
        };
        let bad = ServeError::InvalidInput { reason: "empty" };
        assert_eq!(shed.retry_class(), RetryClass::Retryable);
        assert_eq!(limited.retry_class(), RetryClass::Retryable);
        assert_eq!(late.retry_class(), RetryClass::Terminal);
        assert_eq!(bad.retry_class(), RetryClass::Terminal);
        assert_eq!(shed.retry_after(), Some(SimDuration::from_millis(2)));
        assert_eq!(limited.retry_after(), Some(SimDuration::from_millis(1)));
        assert_eq!(late.retry_after(), None);
        assert_eq!(bad.retry_after(), None);
    }

    #[test]
    fn displays_are_informative() {
        let shed = ServeError::Shed {
            reason: ShedReason::QueueFull,
            depth: 64,
            retry_after: SimDuration::from_millis(1),
        };
        let text = shed.to_string();
        assert!(text.contains("queue_full"));
        assert!(text.contains("64"));
    }
}

//! Aggregate service statistics.

use hmc_types::SimDuration;

/// Counters and distributions the service accumulates while serving.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests served (a reply was produced).
    pub served: u64,
    /// Batches dispatched to the pool (including CPU-fallback batches).
    pub batches: u64,
    /// Total feature rows served across all batches.
    pub rows: u64,
    /// Batches served by the CPU fallback (device failed or every breaker
    /// open).
    pub cpu_fallback_batches: u64,
    /// Batches whose device attempt failed (re-served on the CPU).
    pub failed_batches: u64,
    /// Per-request end-to-end latencies (submit → completion), in
    /// nanoseconds, in completion order.
    latencies_ns: Vec<u64>,
    /// `batch_hist[n]` counts dispatched batches that coalesced `n`
    /// requests; index 0 is unused.
    batch_hist: Vec<u64>,
}

impl ServeStats {
    pub(crate) fn record_batch(&mut self, requests: usize, rows: usize) {
        self.batches += 1;
        self.rows += rows as u64;
        if self.batch_hist.len() <= requests {
            self.batch_hist.resize(requests + 1, 0);
        }
        self.batch_hist[requests] += 1;
    }

    pub(crate) fn record_reply(&mut self, latency: SimDuration) {
        self.served += 1;
        self.latencies_ns.push(latency.as_nanos());
    }

    /// Requests admitted but never served. Zero after a final flush.
    pub fn dropped(&self) -> u64 {
        self.submitted - self.served
    }

    /// The batch-size histogram: entry `n` counts batches that coalesced
    /// `n` requests (entry 0 is always zero).
    pub fn batch_histogram(&self) -> &[u64] {
        &self.batch_hist
    }

    /// Mean requests per dispatched batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        let total: u64 = self
            .batch_hist
            .iter()
            .enumerate()
            .map(|(n, &c)| n as u64 * c)
            .sum();
        total as f64 / self.batches as f64
    }

    /// The `q`-quantile (0.0–1.0, nearest-rank) of the per-request
    /// end-to-end latency. `None` before anything was served.
    pub fn latency_percentile(&self, q: f64) -> Option<SimDuration> {
        if self.latencies_ns.is_empty() {
            return None;
        }
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(SimDuration::from_nanos(sorted[rank - 1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_and_percentiles() {
        let mut s = ServeStats::default();
        s.record_batch(4, 8);
        s.record_batch(4, 4);
        s.record_batch(1, 1);
        assert_eq!(s.batch_histogram()[4], 2);
        assert_eq!(s.batch_histogram()[1], 1);
        assert!((s.mean_batch_size() - 3.0).abs() < 1e-9);

        for ms in [1u64, 2, 3, 4, 100] {
            s.record_reply(SimDuration::from_millis(ms));
        }
        assert_eq!(s.latency_percentile(0.5), Some(SimDuration::from_millis(3)));
        assert_eq!(
            s.latency_percentile(0.99),
            Some(SimDuration::from_millis(100))
        );
        assert_eq!(
            s.latency_percentile(1.0),
            Some(SimDuration::from_millis(100))
        );
    }

    #[test]
    fn dropped_counts_unserved_requests() {
        let mut s = ServeStats {
            submitted: 5,
            ..ServeStats::default()
        };
        s.record_reply(SimDuration::from_millis(1));
        assert_eq!(s.dropped(), 4);
    }
}

//! Aggregate service statistics.

use hmc_types::{SimDuration, SimTime};

/// Counters and distributions the service accumulates while serving.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests rejected because the queue was at capacity.
    pub rejected: u64,
    /// Requests shed by a watermark (depth or estimated latency).
    pub shed: u64,
    /// Requests refused by the per-client rate limiter.
    pub rate_limited: u64,
    /// Requests whose deadline was infeasible at admission or passed
    /// while queued — failed fast, never computed.
    pub expired: u64,
    /// Requests admitted under the CPU-degrade watermark and routed to
    /// the fallback instead of the pool.
    pub degraded: u64,
    /// Client retries scheduled after retryable errors.
    pub retries: u64,
    /// Replies that would have been delivered after their deadline. The
    /// deadline pipeline exists to keep this at zero; the counter is the
    /// safety net that proves it.
    pub deadline_misses: u64,
    /// Requests served (a reply was produced).
    pub served: u64,
    /// Batches dispatched to the pool (including CPU-fallback batches).
    pub batches: u64,
    /// Total feature rows served across all batches.
    pub rows: u64,
    /// Batches served by the CPU fallback (device failed or every breaker
    /// open).
    pub cpu_fallback_batches: u64,
    /// Batches whose device attempt failed (re-served on the CPU).
    pub failed_batches: u64,
    /// Policy-cache hits: request groups whose quantized feature vector
    /// was resident, replayed without numeric compute. Zero when the
    /// cache is disabled.
    pub cache_hits: u64,
    /// Policy-cache misses: request groups that went through the kernel.
    /// Zero when the cache is disabled.
    pub cache_misses: u64,
    /// Per-request end-to-end latencies (submit → completion), in
    /// nanoseconds, in completion order.
    latencies_ns: Vec<u64>,
    /// Per-request queue waits (submit → dispatch), in nanoseconds, in
    /// dispatch order.
    queue_wait_ns: Vec<u64>,
    /// `batch_hist[n]` counts dispatched batches that coalesced `n`
    /// requests; index 0 is unused.
    batch_hist: Vec<u64>,
}

impl ServeStats {
    pub(crate) fn record_batch(&mut self, requests: usize, rows: usize) {
        self.batches += 1;
        self.rows += rows as u64;
        if self.batch_hist.len() <= requests {
            self.batch_hist.resize(requests + 1, 0);
        }
        self.batch_hist[requests] += 1;
    }

    pub(crate) fn record_reply(&mut self, latency: SimDuration) {
        self.served += 1;
        self.latencies_ns.push(latency.as_nanos());
    }

    pub(crate) fn record_queue_wait(&mut self, wait: SimDuration) {
        self.queue_wait_ns.push(wait.as_nanos());
    }

    /// Requests admitted but neither served nor expired. Zero after a
    /// final flush.
    pub fn dropped(&self) -> u64 {
        self.submitted - self.served - self.expired
    }

    /// The batch-size histogram: entry `n` counts batches that coalesced
    /// `n` requests (entry 0 is always zero).
    pub fn batch_histogram(&self) -> &[u64] {
        &self.batch_hist
    }

    /// Mean requests per dispatched batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        let total: u64 = self
            .batch_hist
            .iter()
            .enumerate()
            .map(|(n, &c)| n as u64 * c)
            .sum();
        total as f64 / self.batches as f64
    }

    /// The `q`-quantile (0.0–1.0, nearest-rank) of the per-request
    /// end-to-end latency. `None` before anything was served.
    pub fn latency_percentile(&self, q: f64) -> Option<SimDuration> {
        percentile(&self.latencies_ns, q)
    }

    /// The `q`-quantile (0.0–1.0, nearest-rank) of the per-request queue
    /// wait (submit → dispatch). `None` before anything was dispatched.
    pub fn queue_wait_percentile(&self, q: f64) -> Option<SimDuration> {
        percentile(&self.queue_wait_ns, q)
    }
}

fn percentile(samples_ns: &[u64], q: f64) -> Option<SimDuration> {
    if samples_ns.is_empty() {
        return None;
    }
    let mut sorted = samples_ns.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(SimDuration::from_nanos(sorted[rank - 1]))
}

/// One epoch of service health, cut by [`crate::NpuService::epoch_metrics`].
///
/// Counters are deltas since the previous snapshot; the queue depth and
/// utilization describe the instant the snapshot was cut.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Epoch start (previous snapshot, or service start).
    pub from: SimTime,
    /// Epoch end (the instant the snapshot was cut).
    pub to: SimTime,
    /// Requests pending in the queue at `to`.
    pub queue_depth: usize,
    /// Fraction of the pool's device-time spent busy since `from`
    /// (1.0 = every device computed the whole epoch).
    pub utilization: f64,
    /// Sheds (watermark + queue-full + rate-limited) per submission
    /// attempt this epoch; 0.0 when nothing arrived.
    pub shed_rate: f64,
    /// p99 queue wait across all dispatches so far.
    pub p99_queue_wait: Option<SimDuration>,
    /// Requests admitted this epoch.
    pub admitted: u64,
    /// Replies produced this epoch.
    pub served: u64,
    /// Requests shed this epoch (watermark + queue-full + rate-limited).
    pub shed: u64,
    /// Requests failed fast on deadline this epoch.
    pub expired: u64,
    /// Policy-cache hits this epoch (zero when the cache is disabled).
    pub cache_hits: u64,
    /// Policy-cache misses this epoch (zero when the cache is disabled).
    pub cache_misses: u64,
}

impl MetricsSnapshot {
    /// Fraction of cache probes this epoch that hit; 0.0 when the cache
    /// is disabled or nothing was probed.
    pub fn cache_hit_rate(&self) -> f64 {
        let probes = self.cache_hits + self.cache_misses;
        if probes == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / probes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_and_percentiles() {
        let mut s = ServeStats::default();
        s.record_batch(4, 8);
        s.record_batch(4, 4);
        s.record_batch(1, 1);
        assert_eq!(s.batch_histogram()[4], 2);
        assert_eq!(s.batch_histogram()[1], 1);
        assert!((s.mean_batch_size() - 3.0).abs() < 1e-9);

        for ms in [1u64, 2, 3, 4, 100] {
            s.record_reply(SimDuration::from_millis(ms));
        }
        assert_eq!(s.latency_percentile(0.5), Some(SimDuration::from_millis(3)));
        assert_eq!(
            s.latency_percentile(0.99),
            Some(SimDuration::from_millis(100))
        );
        assert_eq!(
            s.latency_percentile(1.0),
            Some(SimDuration::from_millis(100))
        );
    }

    #[test]
    fn queue_wait_distribution_is_tracked() {
        let mut s = ServeStats::default();
        assert_eq!(s.queue_wait_percentile(0.99), None);
        for ms in [2u64, 1, 5] {
            s.record_queue_wait(SimDuration::from_millis(ms));
        }
        assert_eq!(
            s.queue_wait_percentile(0.5),
            Some(SimDuration::from_millis(2))
        );
        assert_eq!(
            s.queue_wait_percentile(0.99),
            Some(SimDuration::from_millis(5))
        );
    }

    #[test]
    fn dropped_counts_unserved_requests() {
        let mut s = ServeStats {
            submitted: 5,
            expired: 1,
            ..ServeStats::default()
        };
        s.record_reply(SimDuration::from_millis(1));
        assert_eq!(s.dropped(), 3);
    }
}

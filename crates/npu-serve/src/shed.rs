//! Load-shedding policy: depth/latency watermarks with a backlog-derived
//! retry-after and a CPU-degrade rung before dropping.

use hmc_types::SimDuration;
use trace::ShedReason;

use crate::ServeConfig;

/// A snapshot of the service's backlog, taken at one admission decision.
#[derive(Debug, Clone, Copy)]
pub struct Backlog {
    /// Requests waiting in the submission queue.
    pub depth: usize,
    /// Devices whose breaker is not open.
    pub healthy_devices: usize,
    /// How long until the earliest healthy device frees up (zero when one
    /// is idle, or when every breaker is open and the CPU serves).
    pub earliest_free: SimDuration,
    /// Cost model's latency for one full `max_batch` batch on the pool
    /// (the CPU fallback latency when every breaker is open).
    pub batch_latency: SimDuration,
}

/// What the shed layer decided for one submission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ShedDecision {
    /// Under every watermark: queue normally.
    Admit,
    /// Estimated service latency crossed the degrade watermark: admit,
    /// but route to the CPU fallback to spare pool capacity.
    DegradeCpu,
    /// A shed watermark crossed: turn the submission away.
    Shed {
        /// Which watermark fired.
        reason: ShedReason,
        /// Backlog-derived resubmission hint.
        retry_after: SimDuration,
    },
}

/// Estimated service latency for the *next* admitted request: wait for a
/// device, then drain the batches queued ahead of it (its own included).
pub(crate) fn estimated_latency(config: &ServeConfig, backlog: &Backlog) -> SimDuration {
    let batches_ahead = backlog.depth / config.max_batch + 1;
    backlog.earliest_free + scale(backlog.batch_latency, batches_ahead as f64)
}

/// Resubmission hint derived from the current backlog: the time the pool
/// needs to drain what is already queued, spread across healthy devices,
/// floored at the static configuration hint. Deeper backlog ⇒ longer
/// hint, so retry storms spread out instead of synchronizing.
pub(crate) fn retry_after(config: &ServeConfig, backlog: &Backlog) -> SimDuration {
    let queued_batches = backlog.depth.div_ceil(config.max_batch);
    let lanes = backlog.healthy_devices.max(1);
    let drain = scale(backlog.batch_latency, queued_batches as f64 / lanes as f64);
    config.retry_after.max(backlog.earliest_free + drain)
}

/// Applies the configured watermarks to one admission decision.
///
/// Order: depth watermark (cheapest signal), then estimated-latency shed
/// watermark, then the CPU-degrade rung — so under rising load the
/// service degrades to the CPU *before* it starts dropping, and sheds
/// outright only past the hard watermarks.
pub(crate) fn evaluate(config: &ServeConfig, backlog: &Backlog) -> ShedDecision {
    let hint = retry_after(config, backlog);
    if let Some(depth_mark) = config.shed_depth_watermark {
        if backlog.depth >= depth_mark {
            return ShedDecision::Shed {
                reason: ShedReason::DepthWatermark,
                retry_after: hint,
            };
        }
    }
    let est = estimated_latency(config, backlog);
    if let Some(latency_mark) = config.shed_latency_watermark {
        if est >= latency_mark {
            return ShedDecision::Shed {
                reason: ShedReason::LatencyWatermark,
                retry_after: hint,
            };
        }
    }
    if let Some(degrade_mark) = config.cpu_degrade_watermark {
        if est >= degrade_mark {
            return ShedDecision::DegradeCpu;
        }
    }
    ShedDecision::Admit
}

fn scale(d: SimDuration, factor: f64) -> SimDuration {
    SimDuration::from_secs_f64(d.as_secs_f64() * factor)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backlog(depth: usize) -> Backlog {
        Backlog {
            depth,
            healthy_devices: 2,
            earliest_free: SimDuration::ZERO,
            batch_latency: SimDuration::from_millis(4),
        }
    }

    fn config() -> ServeConfig {
        ServeConfig {
            shed_depth_watermark: Some(32),
            shed_latency_watermark: Some(SimDuration::from_millis(40)),
            cpu_degrade_watermark: Some(SimDuration::from_millis(20)),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn under_watermarks_admits() {
        assert_eq!(evaluate(&config(), &backlog(0)), ShedDecision::Admit);
    }

    #[test]
    fn depth_watermark_sheds_with_backlog_scaled_hint() {
        let shallow = evaluate(&config(), &backlog(32));
        let deep = evaluate(&config(), &backlog(64));
        let (
            ShedDecision::Shed {
                reason: r1,
                retry_after: h1,
            },
            ShedDecision::Shed {
                reason: r2,
                retry_after: h2,
            },
        ) = (shallow, deep)
        else {
            panic!("watermark crossings must shed: {shallow:?} / {deep:?}");
        };
        assert_eq!(r1, ShedReason::DepthWatermark);
        assert_eq!(r2, ShedReason::DepthWatermark);
        assert!(h2 > h1, "deeper backlog must advertise a longer hint");
        assert!(h1 >= ServeConfig::default().retry_after);
    }

    #[test]
    fn latency_watermark_sheds_before_depth_watermark() {
        // A somewhat busy pool at depth 24: 18 ms wait + (24/16 + 1) * 4
        // ms of batches = 26 ms — past the degrade rung, under the shed
        // watermark.
        let warm = Backlog {
            earliest_free: SimDuration::from_millis(18),
            ..backlog(24)
        };
        assert_eq!(evaluate(&config(), &warm), ShedDecision::DegradeCpu);
        // A busier pool pushes the estimate past 40 ms at the same depth.
        let busy = Backlog {
            earliest_free: SimDuration::from_millis(35),
            ..backlog(24)
        };
        let decision = evaluate(&config(), &busy);
        assert!(matches!(
            decision,
            ShedDecision::Shed {
                reason: ShedReason::LatencyWatermark,
                ..
            }
        ));
    }

    #[test]
    fn neutral_config_never_sheds() {
        let neutral = ServeConfig::default();
        assert_eq!(evaluate(&neutral, &backlog(10_000)), ShedDecision::Admit);
    }
}

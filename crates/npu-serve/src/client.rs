//! [`topil::PolicyClient`] adapter over the shared service.

use std::sync::{Arc, Mutex};

use faults::BreakerState;
use hmc_types::{SimDuration, SimTime};
use nn::Matrix;
use topil::{ClientReply, InferenceBackend, PolicyClient};

use crate::NpuService;

/// A board's handle on the shared inference service.
///
/// Implements [`topil::PolicyClient`], so a board's
/// [`topil::MigrationPolicy`] issues its epoch requests through the
/// shared pool without knowing it is not a dedicated NPU. On an
/// admission-control rejection the client backs off by the advertised
/// retry-after and re-submits, up to
/// [`client_retries`](crate::ServeConfig::client_retries) times; if every
/// attempt is rejected the epoch degrades (reply without output), which
/// the policy reports as a missed decision deadline.
///
/// Cloning yields another handle on the *same* service.
#[derive(Debug, Clone)]
pub struct SharedClient {
    service: Arc<Mutex<NpuService>>,
}

impl SharedClient {
    /// A client handle on `service`.
    pub fn new(service: Arc<Mutex<NpuService>>) -> Self {
        SharedClient { service }
    }

    /// Wraps a freshly built service and returns the first handle on it.
    pub fn from_service(service: NpuService) -> Self {
        SharedClient::new(Arc::new(Mutex::new(service)))
    }

    /// The shared service behind this handle.
    pub fn service(&self) -> Arc<Mutex<NpuService>> {
        Arc::clone(&self.service)
    }
}

impl PolicyClient for SharedClient {
    fn infer(&mut self, batch: &Matrix, now: SimTime) -> ClientReply {
        let mut service = self.service.lock().expect("service mutex poisoned");
        let retries = service.config().client_retries;
        let max_wait = service.config().max_wait;
        let mut waited = SimDuration::ZERO;
        for _ in 0..=retries {
            match service.submit(batch, now + waited) {
                Ok(ticket) => {
                    // Advance past this request's deadline so its batch
                    // is guaranteed dispatched, then redeem the ticket.
                    let admitted_at = service.now();
                    service.run_until(admitted_at + max_wait);
                    let mut reply = service
                        .take_reply(ticket)
                        .expect("deadline elapsed, reply must be ready");
                    // The board also waited out the rejected attempts.
                    reply.latency += waited;
                    return reply;
                }
                Err(rejected) => {
                    waited += rejected.retry_after;
                }
            }
        }
        // Every attempt bounced off admission control: give the epoch up.
        ClientReply {
            output: None,
            latency: waited,
            cpu_time: SimDuration::ZERO,
            backend: InferenceBackend::Npu,
            npu_failures: 0,
            fallback_active: false,
            jobs: Vec::new(),
            breaker_opened: false,
        }
    }

    fn breaker_state(&self) -> BreakerState {
        let service = self.service.lock().expect("service mutex poisoned");
        if service.all_breakers_open() {
            BreakerState::Open
        } else {
            BreakerState::Closed
        }
    }

    fn breaker_opens(&self) -> u64 {
        self.service
            .lock()
            .expect("service mutex poisoned")
            .breaker_opens()
    }

    fn boxed_clone(&self) -> Box<dyn PolicyClient> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeConfig;
    use nn::Mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp() -> Mlp {
        Mlp::with_topology(21, 4, 64, 8, &mut StdRng::seed_from_u64(3))
    }

    #[test]
    fn shared_client_serves_through_the_pool() {
        let net = mlp();
        let mut client = SharedClient::from_service(NpuService::new(&net, ServeConfig::default()));
        let batch = Matrix::from_rows(vec![vec![0.25; 21]; 4]);
        let reply = client.infer(&batch, SimTime::from_millis(7));
        assert_eq!(reply.output.unwrap().rows(), 4);
        assert_eq!(reply.backend, InferenceBackend::Npu);
        assert!(!reply.fallback_active);
        assert_eq!(reply.jobs.len(), 1);
        // max_wait passed before the solo batch dispatched, so the reply
        // latency includes the batching delay.
        let service = client.service();
        let stats_latency = service
            .lock()
            .unwrap()
            .stats()
            .latency_percentile(1.0)
            .unwrap();
        assert_eq!(reply.latency, stats_latency);
    }

    #[test]
    fn exhausted_retries_degrade_the_epoch() {
        let net = mlp();
        let config = ServeConfig {
            queue_capacity: 1,
            // Requests only dispatch far in the future, so the queue
            // never drains between retries.
            max_wait: SimDuration::from_secs(1),
            max_batch: 16,
            client_retries: 2,
            ..ServeConfig::default()
        };
        let blocker = SharedClient::from_service(NpuService::new(&net, config));
        let mut client = blocker.clone();
        let row = Matrix::from_rows(vec![vec![0.5; 21]]);
        // Fill the only queue slot (ticket intentionally unredeemed).
        blocker
            .service()
            .lock()
            .unwrap()
            .submit(&row, SimTime::ZERO)
            .unwrap();
        let reply = client.infer(&row, SimTime::ZERO);
        assert!(reply.output.is_none());
        // First try plus `client_retries` retries, all rejected.
        assert_eq!(reply.latency, config.retry_after * 3);
        let service = client.service();
        assert_eq!(service.lock().unwrap().stats().rejected, 3);
    }
}

//! [`topil::PolicyClient`] adapter over the shared service.

use std::sync::{Arc, Mutex};

use faults::BreakerState;
use hmc_types::{SimDuration, SimTime};
use nn::Matrix;
use topil::{ClientReply, InferenceBackend, PolicyClient};

use crate::limiter::ClientId;
use crate::retry::RetryClass;
use crate::service::SubmitOptions;
use crate::NpuService;

/// A board's handle on the shared inference service.
///
/// Implements [`topil::PolicyClient`], so a board's
/// [`topil::MigrationPolicy`] issues its epoch requests through the
/// shared pool without knowing it is not a dedicated NPU. Failed
/// submissions are classified ([`crate::ServeError::retry_class`]):
/// retryable
/// errors (shed, rate-limited) are retried with deterministic jittered
/// backoff under the service's [`RetryPolicy`](crate::RetryPolicy),
/// floored at the advertised retry-after; terminal errors (infeasible
/// deadline, invalid input) degrade the epoch immediately (reply without
/// output), which the policy reports as a missed decision deadline.
///
/// Cloning yields another handle on the *same* service with the same
/// client identity; use [`SharedClient::with_client_id`] to give each
/// board its own identity for per-client rate limiting.
#[derive(Debug, Clone)]
pub struct SharedClient {
    service: Arc<Mutex<NpuService>>,
    client: ClientId,
}

impl SharedClient {
    /// A client handle on `service` (anonymous client identity).
    pub fn new(service: Arc<Mutex<NpuService>>) -> Self {
        SharedClient {
            service,
            client: ClientId::default(),
        }
    }

    /// Wraps a freshly built service and returns the first handle on it.
    pub fn from_service(service: NpuService) -> Self {
        SharedClient::new(Arc::new(Mutex::new(service)))
    }

    /// This handle with a distinct client identity (rate-limit key and
    /// trace identity).
    pub fn with_client_id(mut self, client: ClientId) -> Self {
        self.client = client;
        self
    }

    /// The client identity submissions carry.
    pub fn client_id(&self) -> ClientId {
        self.client
    }

    /// The shared service behind this handle.
    pub fn service(&self) -> Arc<Mutex<NpuService>> {
        Arc::clone(&self.service)
    }
}

impl PolicyClient for SharedClient {
    fn infer(&mut self, batch: &Matrix, now: SimTime) -> ClientReply {
        let mut service = self.service.lock().expect("service mutex poisoned");
        let policy = service.config().retry;
        let max_wait = service.config().max_wait;
        let mut waited = SimDuration::ZERO;
        // First try plus up to `max_attempts` classified retries.
        for attempt in 0..=policy.max_attempts {
            let opts = SubmitOptions {
                client: self.client,
                ..SubmitOptions::default()
            };
            match service.submit_with(batch, now + waited, opts) {
                Ok(ticket) => {
                    // Advance past this request's deadline so its batch
                    // is guaranteed dispatched, then redeem the ticket.
                    let admitted_at = service.now();
                    service.run_until(admitted_at + max_wait);
                    let mut reply = service
                        .take_reply(ticket)
                        .expect("deadline elapsed, reply must be ready");
                    // The board also waited out the rejected attempts.
                    reply.latency += waited;
                    return reply;
                }
                Err(err) => {
                    if err.retry_class() == RetryClass::Terminal || attempt == policy.max_attempts {
                        break;
                    }
                    // Deterministic jitter: seeded from the client's
                    // identity and virtual time, so re-runs reproduce the
                    // exact backoff schedule.
                    let at = now + waited;
                    let seed = self.client.value() ^ at.as_nanos();
                    let backoff = policy.backoff(attempt + 1, err.retry_after(), seed);
                    service.record_retry(self.client, attempt + 1, backoff, at);
                    waited += backoff;
                }
            }
        }
        // Terminal error or every attempt bounced: give the epoch up.
        ClientReply {
            output: None,
            latency: waited,
            cpu_time: SimDuration::ZERO,
            backend: InferenceBackend::Npu,
            npu_failures: 0,
            fallback_active: false,
            jobs: Vec::new(),
            breaker_opened: false,
        }
    }

    fn breaker_state(&self) -> BreakerState {
        let service = self.service.lock().expect("service mutex poisoned");
        if service.all_breakers_open() {
            BreakerState::Open
        } else {
            BreakerState::Closed
        }
    }

    fn breaker_opens(&self) -> u64 {
        self.service
            .lock()
            .expect("service mutex poisoned")
            .breaker_opens()
    }

    fn boxed_clone(&self) -> Box<dyn PolicyClient> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RetryPolicy, ServeConfig};
    use nn::Mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp() -> Mlp {
        Mlp::with_topology(21, 4, 64, 8, &mut StdRng::seed_from_u64(3))
    }

    #[test]
    fn shared_client_serves_through_the_pool() {
        let net = mlp();
        let mut client = SharedClient::from_service(NpuService::new(&net, ServeConfig::default()));
        let batch = Matrix::from_rows(vec![vec![0.25; 21]; 4]);
        let reply = client.infer(&batch, SimTime::from_millis(7));
        assert_eq!(reply.output.unwrap().rows(), 4);
        assert_eq!(reply.backend, InferenceBackend::Npu);
        assert!(!reply.fallback_active);
        assert_eq!(reply.jobs.len(), 1);
        // max_wait passed before the solo batch dispatched, so the reply
        // latency includes the batching delay.
        let service = client.service();
        let stats_latency = service
            .lock()
            .unwrap()
            .stats()
            .latency_percentile(1.0)
            .unwrap();
        assert_eq!(reply.latency, stats_latency);
    }

    #[test]
    fn exhausted_retries_degrade_the_epoch() {
        let net = mlp();
        let config = ServeConfig {
            queue_capacity: 1,
            // Requests only dispatch far in the future, so the queue
            // never drains between retries.
            max_wait: SimDuration::from_secs(1),
            max_batch: 16,
            retry: RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            },
            ..ServeConfig::default()
        };
        let blocker = SharedClient::from_service(NpuService::new(&net, config));
        let mut client = blocker.clone().with_client_id(ClientId::new(9));
        let row = Matrix::from_rows(vec![vec![0.5; 21]]);
        // Fill the only queue slot (ticket intentionally unredeemed).
        blocker
            .service()
            .lock()
            .unwrap()
            .submit(&row, SimTime::ZERO)
            .unwrap();
        let reply = client.infer(&row, SimTime::ZERO);
        assert!(reply.output.is_none());
        // First try plus two classified retries, all shed at the full
        // queue; each backoff is at least the advertised retry-after.
        assert!(reply.latency >= config.retry_after * 2);
        let service = client.service();
        let stats = service.lock().unwrap().stats().clone();
        assert_eq!(stats.rejected, 3);
        assert_eq!(stats.retries, 2);
    }

    #[test]
    fn retry_backoff_schedule_is_deterministic() {
        let net = mlp();
        let config = ServeConfig {
            queue_capacity: 1,
            max_wait: SimDuration::from_secs(1),
            max_batch: 16,
            ..ServeConfig::default()
        };
        let run = || {
            let blocker = SharedClient::from_service(NpuService::new(&net, config));
            let mut client = blocker.clone().with_client_id(ClientId::new(4));
            let row = Matrix::from_rows(vec![vec![0.5; 21]]);
            blocker
                .service()
                .lock()
                .unwrap()
                .submit(&row, SimTime::ZERO)
                .unwrap();
            client.infer(&row, SimTime::ZERO).latency
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn terminal_errors_degrade_without_retrying() {
        let net = mlp();
        let client = SharedClient::from_service(NpuService::new(&net, ServeConfig::default()));
        let mut client = client.with_client_id(ClientId::new(2));
        // Wrong feature width: terminal InvalidInput, no retries burned.
        let skewed = Matrix::from_rows(vec![vec![0.5; 7]]);
        let reply = client.infer(&skewed, SimTime::ZERO);
        assert!(reply.output.is_none());
        assert_eq!(reply.latency, SimDuration::ZERO);
        let service = client.service();
        let stats = service.lock().unwrap().stats().clone();
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.submitted, 0);
    }
}

//! Composable admission middleware.
//!
//! Every submission runs through an ordered [`AdmissionStack`] before it
//! may enter the queue — the smithy-runtime layering idea applied to the
//! batcher: each [`AdmissionLayer`] sees one immutable
//! [`AdmissionContext`] snapshot and either passes the request on or
//! fails it with a typed [`ServeError`]. The stack owns all mutable
//! policy state (token buckets); the service translates the outcome into
//! trace events and statistics so layers stay pure decision logic.
//!
//! Order matters and is fixed at construction: validation (cheapest,
//! catches malformed input), deadline feasibility (terminal — don't burn
//! a token on a doomed request), rate limiting (per-client fairness),
//! then load shedding (global overload control). Queue capacity stays in
//! [`crate::SubmissionQueue::try_push`] as the final backstop.

use hmc_types::{SimDuration, SimTime};
use trace::ShedReason;

use crate::error::ServeError;
use crate::limiter::{ClientId, RateLimiter};
use crate::shed::{self, Backlog, ShedDecision};
use crate::ServeConfig;

/// Everything a layer may consult for one admission decision.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionContext<'a> {
    /// Service configuration.
    pub config: &'a ServeConfig,
    /// Virtual submission instant (already clamped to the service clock).
    pub now: SimTime,
    /// Submitting client.
    pub client: ClientId,
    /// Requested absolute completion deadline, if any.
    pub deadline: Option<SimTime>,
    /// When the payload becomes batchable (slow-loris hold, clamped).
    pub ready_at: SimTime,
    /// Feature rows in the submission.
    pub rows: usize,
    /// Feature width of the submission.
    pub cols: usize,
    /// Feature width the compiled model expects.
    pub expected_cols: usize,
    /// Backlog snapshot for shed/feasibility estimates.
    pub backlog: Backlog,
}

/// Outcome of a full admission pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// Queue normally.
    Admit,
    /// Queue, but route to the CPU fallback (graceful degrade).
    DegradeCpu,
}

/// One admission layer: inspect the context, pass or fail the request.
pub trait AdmissionLayer: std::fmt::Debug + Send {
    /// Diagnostic name of the layer.
    fn name(&self) -> &'static str;

    /// Pass (`Ok`) or fail the submission. A layer may refine the
    /// admission from [`Admission::Admit`] to [`Admission::DegradeCpu`]
    /// by returning it; refinements compose as "most degraded wins".
    fn admit(&mut self, ctx: &AdmissionContext<'_>) -> Result<Admission, ServeError>;
}

/// Rejects malformed submissions (empty batch, wrong feature width).
#[derive(Debug, Default)]
pub(crate) struct ValidateLayer;

impl AdmissionLayer for ValidateLayer {
    fn name(&self) -> &'static str {
        "validate"
    }

    fn admit(&mut self, ctx: &AdmissionContext<'_>) -> Result<Admission, ServeError> {
        if ctx.rows == 0 {
            return Err(ServeError::InvalidInput {
                reason: "empty request",
            });
        }
        if ctx.cols != ctx.expected_cols {
            return Err(ServeError::InvalidInput {
                reason: "input width mismatch",
            });
        }
        Ok(Admission::Admit)
    }
}

/// Rejects deadlines that cannot be met even by the earliest possible
/// completion (ready + one batch + margin).
#[derive(Debug, Default)]
pub(crate) struct DeadlineLayer;

impl AdmissionLayer for DeadlineLayer {
    fn name(&self) -> &'static str {
        "deadline"
    }

    fn admit(&mut self, ctx: &AdmissionContext<'_>) -> Result<Admission, ServeError> {
        let Some(deadline) = ctx.deadline else {
            return Ok(Admission::Admit);
        };
        let earliest_completion = ctx.ready_at + ctx.config.deadline_margin;
        if deadline < earliest_completion {
            return Err(ServeError::DeadlineExceeded {
                deadline,
                at: ctx.now,
                late_by: earliest_completion.since(deadline),
            });
        }
        Ok(Admission::Admit)
    }
}

/// Per-client token buckets ([`crate::RateLimit`]), refilled in virtual
/// time.
#[derive(Debug)]
pub(crate) struct RateLimitLayer {
    limiter: RateLimiter,
}

impl RateLimitLayer {
    pub(crate) fn new(limiter: RateLimiter) -> Self {
        RateLimitLayer { limiter }
    }
}

impl AdmissionLayer for RateLimitLayer {
    fn name(&self) -> &'static str {
        "rate_limit"
    }

    fn admit(&mut self, ctx: &AdmissionContext<'_>) -> Result<Admission, ServeError> {
        match self.limiter.try_acquire(ctx.client, ctx.now) {
            Ok(()) => Ok(Admission::Admit),
            Err(retry_after) => Err(ServeError::RateLimited {
                client: ctx.client,
                retry_after,
            }),
        }
    }
}

/// Watermark-driven load shedding with CPU degrade
/// (see [`crate::shed`]).
#[derive(Debug, Default)]
pub(crate) struct ShedLayer;

impl AdmissionLayer for ShedLayer {
    fn name(&self) -> &'static str {
        "shed"
    }

    fn admit(&mut self, ctx: &AdmissionContext<'_>) -> Result<Admission, ServeError> {
        match shed::evaluate(ctx.config, &ctx.backlog) {
            ShedDecision::Admit => Ok(Admission::Admit),
            ShedDecision::DegradeCpu => Ok(Admission::DegradeCpu),
            ShedDecision::Shed {
                reason,
                retry_after,
            } => Err(ServeError::Shed {
                reason,
                depth: ctx.backlog.depth,
                retry_after,
            }),
        }
    }
}

/// The ordered admission stack the service runs every submission through.
#[derive(Debug)]
pub(crate) struct AdmissionStack {
    layers: Vec<Box<dyn AdmissionLayer>>,
}

impl AdmissionStack {
    /// The standard stack for `config`: validate → deadline → rate limit
    /// (when configured) → shed.
    pub(crate) fn standard(config: &ServeConfig) -> Self {
        let mut layers: Vec<Box<dyn AdmissionLayer>> =
            vec![Box::new(ValidateLayer), Box::new(DeadlineLayer)];
        if let Some(limit) = config.rate_limit {
            layers.push(Box::new(RateLimitLayer::new(RateLimiter::new(limit))));
        }
        layers.push(Box::new(ShedLayer));
        AdmissionStack { layers }
    }

    /// Runs the stack; the first failing layer wins, refinements compose.
    pub(crate) fn admit(&mut self, ctx: &AdmissionContext<'_>) -> Result<Admission, ServeError> {
        let mut admission = Admission::Admit;
        for layer in &mut self.layers {
            if layer.admit(ctx)? == Admission::DegradeCpu {
                admission = Admission::DegradeCpu;
            }
        }
        Ok(admission)
    }

    /// Layer names in execution order (diagnostics).
    pub(crate) fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }
}

/// Maps a queue-capacity rejection into the error taxonomy.
pub(crate) fn queue_full_error(depth: usize, retry_after: SimDuration) -> ServeError {
    ServeError::Shed {
        reason: ShedReason::QueueFull,
        depth,
        retry_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RateLimit;

    fn backlog() -> Backlog {
        Backlog {
            depth: 0,
            healthy_devices: 2,
            earliest_free: SimDuration::ZERO,
            batch_latency: SimDuration::from_millis(4),
        }
    }

    fn ctx<'a>(config: &'a ServeConfig) -> AdmissionContext<'a> {
        AdmissionContext {
            config,
            now: SimTime::from_millis(10),
            client: ClientId::new(1),
            deadline: None,
            ready_at: SimTime::from_millis(10),
            rows: 2,
            cols: 21,
            expected_cols: 21,
            backlog: backlog(),
        }
    }

    #[test]
    fn standard_stack_orders_layers() {
        let config = ServeConfig {
            rate_limit: Some(RateLimit {
                burst: 4.0,
                refill_per_sec: 100.0,
            }),
            ..ServeConfig::default()
        };
        let stack = AdmissionStack::standard(&config);
        assert_eq!(
            stack.layer_names(),
            vec!["validate", "deadline", "rate_limit", "shed"]
        );
        // Without a rate limit the layer is absent entirely.
        let bare = AdmissionStack::standard(&ServeConfig::default());
        assert_eq!(bare.layer_names(), vec!["validate", "deadline", "shed"]);
    }

    #[test]
    fn validate_rejects_malformed_input() {
        let config = ServeConfig::default();
        let mut stack = AdmissionStack::standard(&config);
        let empty = AdmissionContext {
            rows: 0,
            ..ctx(&config)
        };
        assert!(matches!(
            stack.admit(&empty),
            Err(ServeError::InvalidInput { .. })
        ));
        let skewed = AdmissionContext {
            cols: 7,
            ..ctx(&config)
        };
        assert!(matches!(
            stack.admit(&skewed),
            Err(ServeError::InvalidInput { .. })
        ));
    }

    #[test]
    fn infeasible_deadline_is_terminal_before_rate_limiting() {
        let config = ServeConfig {
            rate_limit: Some(RateLimit {
                burst: 1.0,
                refill_per_sec: 1.0,
            }),
            ..ServeConfig::default()
        };
        let mut stack = AdmissionStack::standard(&config);
        let doomed = AdmissionContext {
            deadline: Some(SimTime::from_millis(11)),
            ..ctx(&config)
        };
        // Margin is 4 ms: an 11 ms deadline at ready=10 ms is infeasible,
        // and must NOT consume the client's only token.
        assert!(matches!(
            stack.admit(&doomed),
            Err(ServeError::DeadlineExceeded { .. })
        ));
        assert_eq!(stack.admit(&ctx(&config)), Ok(Admission::Admit));
    }

    #[test]
    fn degrade_refinement_wins_over_admit() {
        let config = ServeConfig {
            cpu_degrade_watermark: Some(SimDuration::ZERO),
            ..ServeConfig::default()
        };
        let mut stack = AdmissionStack::standard(&config);
        assert_eq!(stack.admit(&ctx(&config)), Ok(Admission::DegradeCpu));
    }
}

//! Hierarchical failover: per-rack services → regional tier → local CPU.
//!
//! A datacenter fleet does not talk to one shared service — each rack
//! runs its own [`NpuService`], and a larger **regional** service backs
//! all racks. [`TieredService`] extends the existing retry → breaker →
//! CPU ladder *across tiers*:
//!
//! 1. **Per-rack primary.** A request is routed to its home rack unless
//!    the rack is partitioned, suspected dead, or its tier breaker is
//!    open — in which case it fails over to the regional tier at submit
//!    time.
//! 2. **Heartbeat failure detector.** Racks emit heartbeats in virtual
//!    time every [`TierConfig::heartbeat_interval`]; a rack silent for
//!    longer than [`TierConfig::heartbeat_timeout`] is *suspected* at the
//!    exact virtual instant `last_beat + timeout`, its tier breaker trips,
//!    and new submissions fail over. The first heartbeat after silence
//!    clears the suspicion and puts the breaker into half-open probation.
//! 3. **Hedged requests.** Every rack-routed request arms a hedge at
//!    `submit + hedge_timeout()`, where the timeout is derived from the
//!    p-quantile ([`TierConfig::hedge_quantile`], default p99) of recent
//!    rack latencies (never below [`TierConfig::hedge_min`]). If the rack
//!    reply has not completed by then, a duplicate fires to the regional
//!    tier and the earlier completion wins. Hedge decisions are made
//!    retrospectively at the barrier but use only information available
//!    at the hedge instant, so the schedule is identical under any
//!    driver.
//! 4. **Per-tier circuit breakers.** One breaker per rack plus one for
//!    the regional tier, above the per-device breakers inside each
//!    service. A suspected rack trips its breaker ([`CircuitBreaker::
//!    trip`]); a recovered rack re-enters through half-open probation.
//! 5. **Local CPU last rung.** When the rack and regional rungs are both
//!    unavailable (or failed), the board computes locally on its CPU.
//!    A reply is only delivered if it meets the deadline; otherwise the
//!    request resolves as a typed failure — the tier never delivers a
//!    late reply.
//!
//! The tier runs in virtual time like the services it owns: `submit`
//! carries explicit timestamps (nondecreasing per tier), and `flush`
//! advances everything to a barrier, after which every submitted request
//! has exactly one outcome (request conservation — checked by the chaos
//! harness in `bench`).

use std::collections::HashMap;

use faults::{BreakerState, CircuitBreaker};
use hmc_types::{SimDuration, SimTime};
use nn::{Matrix, Mlp};
use npu::CpuInference;
use topil::ClientReply;
use trace::TraceEvent;

use crate::limiter::ClientId;
use crate::service::SubmitOptions;
use crate::{ConfigError, NpuService, RequestTicket, ServeConfig, ServeError};

/// Configuration of a [`TieredService`].
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// Number of rack-level services.
    pub racks: usize,
    /// Configuration of each rack service.
    pub rack_serve: ServeConfig,
    /// Configuration of the regional service.
    pub regional_serve: ServeConfig,
    /// Virtual-time spacing of rack heartbeats.
    pub heartbeat_interval: SimDuration,
    /// Silence longer than this marks a rack suspected.
    pub heartbeat_timeout: SimDuration,
    /// Floor of the hedge timeout (the p99 estimate never hedges
    /// earlier than this).
    pub hedge_min: SimDuration,
    /// Latency quantile deriving the hedge timeout (e.g. `0.99`).
    pub hedge_quantile: f64,
    /// How many recent rack latencies feed the quantile estimate.
    pub hedge_window: usize,
    /// Consecutive failures opening a tier breaker.
    pub breaker_threshold: u32,
    /// Cooldown (in barriers) of an open tier breaker.
    pub breaker_cooldown: u32,
    /// Round-trip network penalty of reaching the regional tier (the
    /// rack→regional backbone, modelled by the embedder). Added to every
    /// regional completion; hedges and failovers that cannot beat their
    /// deadline across this RTT are routed straight to the CPU rung.
    /// Zero (the default) preserves the network-oblivious behaviour.
    pub regional_rtt: SimDuration,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            racks: 4,
            rack_serve: ServeConfig::default(),
            regional_serve: ServeConfig::default(),
            heartbeat_interval: SimDuration::from_millis(50),
            heartbeat_timeout: SimDuration::from_millis(160),
            hedge_min: SimDuration::from_millis(1),
            hedge_quantile: 0.99,
            hedge_window: 256,
            breaker_threshold: 3,
            breaker_cooldown: 4,
            regional_rtt: SimDuration::ZERO,
        }
    }
}

impl TierConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.racks == 0 {
            return Err(ConfigError::ZeroRacks);
        }
        if self.heartbeat_interval.is_zero() || self.heartbeat_timeout < self.heartbeat_interval {
            return Err(ConfigError::InvalidHeartbeat);
        }
        if !(0.0..=1.0).contains(&self.hedge_quantile) || self.hedge_window == 0 {
            return Err(ConfigError::InvalidHedge);
        }
        self.rack_serve.validate()?;
        self.regional_serve.validate()
    }
}

/// Which rung ultimately served a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// The home rack's service.
    Rack(usize),
    /// The regional tier (failover or winning hedge).
    Regional,
    /// The board's own CPU (last rung).
    LocalCpu,
}

/// A reply from the tiered ladder. Never late: `completed_at` is at or
/// before the request deadline whenever one was set.
#[derive(Debug, Clone)]
pub struct TierReply {
    /// Rating matrix.
    pub output: Matrix,
    /// Wall latency from submission to the winning completion.
    pub latency: SimDuration,
    /// When the winning rung completed.
    pub completed_at: SimTime,
    /// The winning rung.
    pub served_by: ServedBy,
    /// Whether a hedge fired for this request.
    pub hedged: bool,
    /// Whether the hedge (not the primary) won the race.
    pub hedge_won: bool,
    /// Whether the request failed over away from its home rack at
    /// submission (partition, suspicion, open breaker, or admission
    /// rejection).
    pub failed_over: bool,
}

/// Terminal outcome of a tier request: a reply, or a typed failure when
/// no rung could meet the deadline.
#[derive(Debug, Clone)]
pub enum TierOutcome {
    /// Served within the deadline.
    Reply(TierReply),
    /// No rung could serve in time; carries the decisive error.
    Failed(ServeError),
}

/// Handle of a tier submission; redeem with
/// [`TieredService::take_outcome`] after a [`TieredService::flush`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TierTicket(u64);

/// Per-submission options of [`TieredService::submit`].
#[derive(Debug, Clone, Copy)]
pub struct TierSubmit {
    /// Home rack of the submitting board.
    pub rack: usize,
    /// Submitting client identity (rate-limit key inside the services).
    pub client: ClientId,
    /// Absolute completion deadline.
    pub deadline: Option<SimTime>,
}

/// A breaker scope in the tier topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierScope {
    /// The breaker guarding rack `0..racks`.
    Rack(usize),
    /// The breaker guarding the regional tier.
    Regional,
}

/// One observed tier-breaker transition, for the chaos invariant checker
/// (which asserts every transition is an edge of the breaker FSM).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierTransition {
    /// Virtual time of the transition. Charge and cooldown moves are
    /// barrier-quantized (outcomes materialize at the flush); detector
    /// trips, recoveries and probation entries carry exact instants. Per
    /// scope, transition times never decrease.
    pub at: SimTime,
    /// Which breaker moved.
    pub scope: TierScope,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
    /// Whether this was a rejoin probation entry (the one legal edge
    /// into half-open that does not come from a cooldown).
    pub probation: bool,
}

/// Counters of the tiered ladder.
#[derive(Debug, Clone, Copy, Default)]
pub struct TierStats {
    /// Requests submitted to the tier.
    pub submitted: u64,
    /// Requests resolved with a reply.
    pub replies: u64,
    /// Requests resolved as typed failures.
    pub failed: u64,
    /// Replies served by the home rack.
    pub rack_served: u64,
    /// Replies served by the regional tier.
    pub regional_served: u64,
    /// Replies served by the local CPU rung.
    pub cpu_served: u64,
    /// Submissions that failed over away from their home rack.
    pub failovers: u64,
    /// Hedges fired to the regional tier.
    pub hedges: u64,
    /// Hedges that won their race.
    pub hedge_wins: u64,
    /// Hedges suppressed because the regional round trip could not beat
    /// the deadline, or the regional tier was down (network-aware
    /// feasibility; zero when [`TierConfig::regional_rtt`] is zero and
    /// no outage is injected).
    pub hedges_infeasible: u64,
    /// Heartbeats emitted by racks.
    pub heartbeats: u64,
    /// Racks declared suspected by the failure detector.
    pub suspects: u64,
    /// Suspicions cleared by a returning heartbeat.
    pub recoveries: u64,
    /// Sum of detection latencies (silence start → suspicion instant).
    pub detection_latency_total: SimDuration,
    /// Largest single detection latency.
    pub detection_latency_max: SimDuration,
}

/// Where a pending request's primary attempt went.
#[derive(Debug, Clone, Copy)]
enum Primary {
    Rack(RequestTicket),
    Regional,
    Cpu,
}

#[derive(Debug)]
struct PendingRequest {
    id: u64,
    rack: usize,
    rows: Matrix,
    submit_at: SimTime,
    deadline: Option<SimTime>,
    client: ClientId,
    /// Armed hedge instant (rack-routed requests only).
    hedge_at: Option<SimTime>,
    primary: Primary,
    failed_over: bool,
}

#[derive(Debug)]
struct RackSlot {
    service: NpuService,
    breaker: CircuitBreaker,
    partitioned: bool,
    silent: bool,
    silent_since: SimTime,
    /// When the last silence ended (ticks before this stay suppressed).
    resume_at: SimTime,
    suspected: bool,
    /// Next heartbeat tick to evaluate.
    beat_cursor: SimTime,
    /// Last heartbeat actually heard.
    last_beat: SimTime,
}

/// The two-tier failover ladder. See the module docs for the routing
/// rules.
#[derive(Debug)]
pub struct TieredService {
    config: TierConfig,
    racks: Vec<RackSlot>,
    regional: NpuService,
    regional_breaker: CircuitBreaker,
    mlp: Mlp,
    cpu: CpuInference,
    macs: usize,
    /// Regional latency multiplier in thousandths (slow-tier fault).
    slow_milli: u32,
    /// Regional outage fault: the backbone to the regional tier is cut,
    /// so failovers and hedges go straight to the CPU rung.
    regional_down: bool,
    /// Recent successful rack latencies, for the hedge quantile.
    latency_window: Vec<SimDuration>,
    pending: Vec<PendingRequest>,
    outcomes: HashMap<u64, TierOutcome>,
    transitions: Vec<TierTransition>,
    stats: TierStats,
    clock: SimTime,
    next_id: u64,
}

impl TieredService {
    /// Builds the topology: `config.racks` rack services plus one
    /// regional service, all compiled from `mlp`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; use
    /// [`TieredService::try_new`] to handle the error.
    pub fn new(mlp: &Mlp, config: TierConfig) -> Self {
        match Self::try_new(mlp, config) {
            Ok(tier) => tier,
            Err(err) => panic!("invalid tier configuration: {err}"),
        }
    }

    /// Fallible constructor.
    pub fn try_new(mlp: &Mlp, config: TierConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let racks = (0..config.racks)
            .map(|_| RackSlot {
                service: NpuService::new(mlp, config.rack_serve),
                breaker: CircuitBreaker::new(config.breaker_threshold, config.breaker_cooldown),
                partitioned: false,
                silent: false,
                silent_since: SimTime::ZERO,
                resume_at: SimTime::ZERO,
                suspected: false,
                beat_cursor: SimTime::ZERO,
                last_beat: SimTime::ZERO,
            })
            .collect();
        Ok(TieredService {
            regional: NpuService::new(mlp, config.regional_serve),
            regional_breaker: CircuitBreaker::new(
                config.breaker_threshold,
                config.breaker_cooldown,
            ),
            racks,
            mlp: mlp.clone(),
            cpu: CpuInference::cortex_a73(),
            macs: mlp.macs(),
            slow_milli: 1000,
            regional_down: false,
            latency_window: Vec::new(),
            pending: Vec::new(),
            outcomes: HashMap::new(),
            transitions: Vec::new(),
            stats: TierStats::default(),
            clock: SimTime::ZERO,
            next_id: 0,
            config,
        })
    }

    /// The tier configuration.
    pub fn config(&self) -> &TierConfig {
        &self.config
    }

    /// Tier counters.
    pub fn stats(&self) -> &TierStats {
        &self.stats
    }

    /// Current hedge timeout: `max(hedge_min, q-quantile of the recent
    /// rack latencies)`.
    pub fn hedge_timeout(&self) -> SimDuration {
        if self.latency_window.is_empty() {
            return self.config.hedge_min;
        }
        let mut sorted = self.latency_window.clone();
        sorted.sort();
        let rank = ((sorted.len() as f64) * self.config.hedge_quantile).ceil() as usize;
        let quantile = sorted[rank.clamp(1, sorted.len()) - 1];
        quantile.max(self.config.hedge_min)
    }

    /// State of a tier breaker.
    pub fn breaker_state(&self, scope: TierScope) -> BreakerState {
        match scope {
            TierScope::Rack(i) => self.racks[i].breaker.state(),
            TierScope::Regional => self.regional_breaker.state(),
        }
    }

    /// Whether the failure detector currently suspects `rack`.
    pub fn suspected(&self, rack: usize) -> bool {
        self.racks[rack].suspected
    }

    /// Drains the observed tier-breaker transitions.
    pub fn drain_transitions(&mut self) -> Vec<TierTransition> {
        std::mem::take(&mut self.transitions)
    }

    /// Drains the trace events of every owned service, tagged by scope
    /// (the regional tier reports as [`TierScope::Regional`]).
    pub fn drain_service_events(&mut self) -> Vec<(TierScope, Vec<TraceEvent>)> {
        let mut out = Vec::with_capacity(self.racks.len() + 1);
        for (i, rack) in self.racks.iter_mut().enumerate() {
            out.push((TierScope::Rack(i), rack.service.drain_events()));
        }
        out.push((TierScope::Regional, self.regional.drain_events()));
        out
    }

    /// Sum of breaker opens across every rung (device breakers inside
    /// the services plus the tier breakers).
    pub fn breaker_opens(&self) -> u64 {
        let device: u64 = self
            .racks
            .iter()
            .map(|r| r.service.breaker_opens())
            .sum::<u64>()
            + self.regional.breaker_opens();
        let tier: u64 = self.racks.iter().map(|r| r.breaker.opens()).sum::<u64>()
            + self.regional_breaker.opens();
        device + tier
    }

    // ---- fault hooks (driven by the chaos schedule) ----

    /// Partitions (or heals) `rack` from the regional tier. Partitioned
    /// racks are bypassed at submit time.
    pub fn set_partitioned(&mut self, rack: usize, partitioned: bool) {
        self.racks[rack].partitioned = partitioned;
    }

    /// Silences (or restores) `rack`'s heartbeats from `at` on. The
    /// service stays healthy — only the failure detector goes blind.
    pub fn set_heartbeat_silent(&mut self, rack: usize, silent: bool, at: SimTime) {
        let slot = &mut self.racks[rack];
        if silent && !slot.silent {
            slot.silent_since = at;
        }
        if !silent && slot.silent {
            slot.resume_at = at;
        }
        slot.silent = silent;
    }

    /// Multiplies regional-tier latency by `factor_milli / 1000`
    /// (1000 restores nominal speed).
    pub fn set_tier_slowdown(&mut self, factor_milli: u32) {
        self.slow_milli = factor_milli.max(1);
    }

    /// Cuts (or restores) the backbone to the regional tier, as during a
    /// regional outage storm: while down, failovers and hedges skip the
    /// regional rung and go straight to the CPU, without charging the
    /// regional breaker (an unreachable tier is not a failing tier).
    pub fn set_regional_down(&mut self, down: bool) {
        self.regional_down = down;
    }

    /// Puts `rack`'s tier breaker into half-open probation, as when its
    /// board rejoins after a crash.
    pub fn begin_rack_probation(&mut self, rack: usize, at: SimTime) {
        let from = self.racks[rack].breaker.state();
        self.racks[rack].breaker.begin_probation();
        self.record_transition(at, TierScope::Rack(rack), from, true);
    }

    // ---- request path ----

    /// Submits one request at `now` (nondecreasing across calls between
    /// flushes). Routing happens here; the outcome materializes at the
    /// next [`TieredService::flush`].
    pub fn submit(
        &mut self,
        rows: Matrix,
        now: SimTime,
        opts: TierSubmit,
    ) -> Result<TierTicket, ServeError> {
        if rows.rows() == 0 {
            return Err(ServeError::InvalidInput {
                reason: "empty request",
            });
        }
        if rows.cols() != self.mlp.input_size() {
            return Err(ServeError::InvalidInput {
                reason: "input width mismatch",
            });
        }
        assert!(opts.rack < self.racks.len(), "rack index out of range");
        self.clock = self.clock.max(now);
        self.stats.submitted += 1;
        let id = self.next_id;
        self.next_id += 1;

        let rack_usable = {
            let slot = &self.racks[opts.rack];
            !slot.partitioned && !slot.suspected && slot.breaker.state() != BreakerState::Open
        };
        let hedge_timeout = self.hedge_timeout();
        let mut failed_over = false;
        let primary = if rack_usable {
            let submit = self.racks[opts.rack].service.submit_with(
                &rows,
                now,
                SubmitOptions {
                    client: opts.client,
                    deadline: opts.deadline,
                    hold: SimDuration::ZERO,
                },
            );
            match submit {
                Ok(ticket) => Primary::Rack(ticket),
                // Admission rejection (shed, rate limit, infeasible
                // deadline) is back-pressure, not a rack failure: fail
                // over without charging the tier breaker.
                Err(_) => {
                    failed_over = true;
                    self.regional_or_cpu(now, opts.deadline)
                }
            }
        } else {
            failed_over = true;
            self.regional_or_cpu(now, opts.deadline)
        };
        if failed_over {
            self.stats.failovers += 1;
        }
        let hedge_at = match primary {
            Primary::Rack(_) => Some(now + hedge_timeout),
            _ => None,
        };
        self.pending.push(PendingRequest {
            id,
            rack: opts.rack,
            rows,
            submit_at: now,
            deadline: opts.deadline,
            client: opts.client,
            hedge_at,
            primary,
            failed_over,
        });
        Ok(TierTicket(id))
    }

    /// Failover target below the rack rung: the regional tier when it is
    /// reachable and a completion can still cross the backbone before
    /// the deadline, else the local CPU.
    fn regional_or_cpu(&self, now: SimTime, deadline: Option<SimTime>) -> Primary {
        if self.regional_down || self.regional_breaker.state() == BreakerState::Open {
            return Primary::Cpu;
        }
        let rtt = self.config.regional_rtt;
        if !rtt.is_zero() {
            if let Some(deadline) = deadline {
                // Even a zero-service-time regional reply lands at
                // `now + rtt`: past the deadline, the round trip is
                // wasted work and the CPU rung is the only feasible one.
                if now + rtt > deadline {
                    return Primary::Cpu;
                }
            }
        }
        Primary::Regional
    }

    /// Redeems a ticket after a flush.
    pub fn take_outcome(&mut self, ticket: TierTicket) -> Option<TierOutcome> {
        self.outcomes.remove(&ticket.0)
    }

    // ---- barrier advance ----

    /// Advances the tier to `barrier`: heartbeats and the failure
    /// detector, tier-breaker cooldowns, every owned service, hedges and
    /// the CPU last rung. Afterwards every submitted request has exactly
    /// one outcome.
    pub fn flush(&mut self, barrier: SimTime) {
        self.clock = self.clock.max(barrier);
        self.advance_detector(barrier);
        self.advance_breaker_cooldowns(barrier);
        for rack in &mut self.racks {
            rack.service.flush(barrier);
        }
        self.resolve_pending(barrier);
    }

    /// Replays heartbeat ticks up to `now` and updates suspicion.
    fn advance_detector(&mut self, now: SimTime) {
        let interval = self.config.heartbeat_interval;
        let timeout = self.config.heartbeat_timeout;
        for (i, slot) in self.racks.iter_mut().enumerate() {
            while slot.beat_cursor <= now {
                let tick = slot.beat_cursor;
                slot.beat_cursor += interval;
                // Silence applies from its exact start instant, and
                // recovery from its exact end — the flags are set at
                // barriers but the tick replay honors the instants.
                let suppressed = if slot.silent {
                    tick >= slot.silent_since
                } else {
                    tick < slot.resume_at && tick >= slot.silent_since
                };
                if suppressed {
                    continue;
                }
                self.stats.heartbeats += 1;
                slot.last_beat = tick;
                if slot.suspected {
                    // First heartbeat after silence: recover through
                    // half-open probation.
                    slot.suspected = false;
                    self.stats.recoveries += 1;
                    let from = slot.breaker.state();
                    slot.breaker.begin_probation();
                    if from != BreakerState::HalfOpen {
                        self.transitions.push(TierTransition {
                            at: tick,
                            scope: TierScope::Rack(i),
                            from,
                            to: BreakerState::HalfOpen,
                            probation: true,
                        });
                    }
                }
            }
            if !slot.suspected && now.since(slot.last_beat) > timeout {
                // Suspected at the exact instant the timeout elapsed.
                let detected_at = slot.last_beat + timeout;
                slot.suspected = true;
                self.stats.suspects += 1;
                let detection = detected_at.since(slot.silent_since.min(detected_at));
                self.stats.detection_latency_total += detection;
                self.stats.detection_latency_max = self.stats.detection_latency_max.max(detection);
                let from = slot.breaker.state();
                slot.breaker.trip();
                if from != BreakerState::Open {
                    self.transitions.push(TierTransition {
                        at: detected_at,
                        scope: TierScope::Rack(i),
                        from,
                        to: BreakerState::Open,
                        probation: false,
                    });
                }
            }
        }
    }

    fn advance_breaker_cooldowns(&mut self, at: SimTime) {
        for i in 0..self.racks.len() {
            // A suspected rack stays fenced: its breaker reopens on the
            // next detector pass anyway, so skip the cooldown while the
            // detector still suspects it.
            if self.racks[i].suspected {
                continue;
            }
            let from = self.racks[i].breaker.state();
            if self.racks[i].breaker.epoch_elapsed() {
                self.transitions.push(TierTransition {
                    at,
                    scope: TierScope::Rack(i),
                    from,
                    to: BreakerState::HalfOpen,
                    probation: false,
                });
            }
        }
        let from = self.regional_breaker.state();
        if self.regional_breaker.epoch_elapsed() {
            self.transitions.push(TierTransition {
                at,
                scope: TierScope::Regional,
                from,
                to: BreakerState::HalfOpen,
                probation: false,
            });
        }
    }

    fn record_transition(
        &mut self,
        at: SimTime,
        scope: TierScope,
        from: BreakerState,
        probation: bool,
    ) {
        let to = match scope {
            TierScope::Rack(i) => self.racks[i].breaker.state(),
            TierScope::Regional => self.regional_breaker.state(),
        };
        if from != to {
            self.transitions.push(TierTransition {
                at,
                scope,
                from,
                to,
                probation,
            });
        }
    }

    /// Scales a regional latency by the slow-tier factor.
    fn scale_regional(&self, latency: SimDuration) -> SimDuration {
        SimDuration::from_nanos(
            ((latency.as_nanos() as u128 * self.slow_milli as u128) / 1000) as u64,
        )
    }

    /// Resolution of one pending request after the rack rung.
    fn resolve_pending(&mut self, barrier: SimTime) {
        let pendings = std::mem::take(&mut self.pending);
        // Phase 1: rack outcomes, hedge decisions, regional submissions.
        struct Ladder {
            pending: PendingRequest,
            /// Successful rack completion `(reply, completed_at)`.
            rack_reply: Option<(ClientReply, SimTime)>,
            /// When the rack rung was given up on (hedge instant or
            /// submit instant for direct failovers).
            handover_at: SimTime,
            hedged: bool,
            regional: Option<RequestTicket>,
            /// When the regional submission was made (if any).
            regional_at: SimTime,
        }
        let mut ladders: Vec<Ladder> = Vec::with_capacity(pendings.len());
        // Regional submissions must reach the service in nondecreasing
        // time order; collect, sort, submit, then flush once.
        let mut regional_submits: Vec<(SimTime, usize)> = Vec::new();
        for pending in pendings {
            let mut ladder = Ladder {
                handover_at: pending.submit_at,
                rack_reply: None,
                hedged: false,
                regional: None,
                regional_at: pending.submit_at,
                pending,
            };
            match ladder.pending.primary {
                Primary::Rack(ticket) => {
                    let hedge_at = ladder.pending.hedge_at.expect("rack primaries arm a hedge");
                    let slot = &mut self.racks[ladder.pending.rack];
                    let outcome = slot.service.take_outcome(ticket);
                    let mut rack_failed_at: Option<SimTime> = None;
                    match outcome {
                        Some(Ok(reply)) if reply.output.is_some() => {
                            let completed = ladder.pending.submit_at + reply.latency;
                            self.latency_window.push(reply.latency);
                            if self.latency_window.len() > self.config.hedge_window {
                                let excess = self.latency_window.len() - self.config.hedge_window;
                                self.latency_window.drain(..excess);
                            }
                            // A suspected rack's breaker belongs to the
                            // failure detector: an in-flight success from
                            // before the silence is stale evidence and
                            // must not close it.
                            if !slot.suspected {
                                let from = slot.breaker.state();
                                slot.breaker.record_success();
                                self.record_transition(
                                    barrier,
                                    TierScope::Rack(ladder.pending.rack),
                                    from,
                                    false,
                                );
                            }
                            ladder.rack_reply = Some((reply, completed));
                        }
                        Some(Ok(_)) | Some(Err(_)) | None => {
                            // A fail-fast error (or a reply with no
                            // output) is a rack-rung failure.
                            let at = match outcome {
                                Some(Err(ServeError::DeadlineExceeded { at, .. })) => at,
                                _ => barrier,
                            };
                            rack_failed_at = Some(at);
                            if !slot.suspected {
                                let from = slot.breaker.state();
                                slot.breaker.record_failure();
                                self.record_transition(
                                    barrier,
                                    TierScope::Rack(ladder.pending.rack),
                                    from,
                                    false,
                                );
                            }
                        }
                    }
                    // Hedge decision: at `hedge_at` the reply had not
                    // arrived (completion later, or it never will).
                    let hedge_needed = match (&ladder.rack_reply, rack_failed_at) {
                        (Some((_, completed)), _) => *completed > hedge_at,
                        (None, _) => true,
                    };
                    if hedge_needed {
                        let rtt = self.config.regional_rtt;
                        // Network-aware hedge feasibility: a duplicate
                        // that cannot cross the backbone and return
                        // before the deadline (or reach a downed
                        // regional tier at all) is never fired.
                        let infeasible = self.regional_down
                            || (!rtt.is_zero()
                                && ladder
                                    .pending
                                    .deadline
                                    .is_some_and(|deadline| hedge_at + rtt > deadline));
                        if infeasible {
                            self.stats.hedges_infeasible += 1;
                            ladder.handover_at = match rack_failed_at {
                                Some(at) => at.max(hedge_at),
                                None => hedge_at,
                            };
                        } else if self.regional_breaker.state() != BreakerState::Open {
                            ladder.hedged = true;
                            ladder.handover_at = hedge_at;
                            self.stats.hedges += 1;
                            regional_submits.push((hedge_at, ladders.len()));
                        } else {
                            // Regional rung fenced: hand straight to the
                            // CPU rung at the instant the rack was given
                            // up on.
                            ladder.handover_at = match rack_failed_at {
                                Some(at) => at.max(hedge_at),
                                None => hedge_at,
                            };
                        }
                    }
                }
                Primary::Regional => {
                    regional_submits.push((ladder.pending.submit_at, ladders.len()));
                }
                Primary::Cpu => {}
            }
            ladders.push(ladder);
        }

        // Phase 2: regional rung.
        regional_submits.sort_by_key(|&(at, idx)| (at, idx));
        for (at, idx) in regional_submits {
            let ladder = &mut ladders[idx];
            let submit = self.regional.submit_with(
                &ladder.pending.rows,
                at,
                SubmitOptions {
                    client: ladder.pending.client,
                    deadline: ladder.pending.deadline,
                    hold: SimDuration::ZERO,
                },
            );
            match submit {
                Ok(ticket) => {
                    ladder.regional = Some(ticket);
                    ladder.regional_at = at;
                }
                Err(_) => {
                    // Regional admission rejected: the CPU rung takes
                    // over from the rejection instant.
                    ladder.handover_at = ladder.handover_at.max(at);
                }
            }
        }
        self.regional.flush(barrier);

        // Phase 3: race resolution and the CPU last rung.
        for ladder in ladders {
            let Ladder {
                pending,
                rack_reply,
                mut handover_at,
                hedged,
                regional,
                regional_at,
            } = ladder;
            let regional_reply: Option<(ClientReply, SimTime)> = regional.and_then(|ticket| {
                match self.regional.take_outcome(ticket) {
                    Some(Ok(reply)) if reply.output.is_some() => {
                        // The backbone round trip rides on every
                        // regional completion, after the slow-tier
                        // scaling (the RTT is wire time, not service
                        // time).
                        let latency = self.scale_regional(reply.latency) + self.config.regional_rtt;
                        let completed = regional_at + latency;
                        // A slow-tier-stretched completion past the
                        // deadline is a failure, never a late reply.
                        let late = pending
                            .deadline
                            .is_some_and(|deadline| completed > deadline);
                        if late {
                            handover_at = handover_at.max(completed);
                            None
                        } else {
                            Some((reply, completed))
                        }
                    }
                    Some(Err(ServeError::DeadlineExceeded { at, .. })) => {
                        handover_at = handover_at.max(at);
                        None
                    }
                    _ => None,
                }
            });
            // Charge the regional breaker once per regional attempt.
            if regional.is_some() {
                let from = self.regional_breaker.state();
                match &regional_reply {
                    Some(_) => self.regional_breaker.record_success(),
                    None => self.regional_breaker.record_failure(),
                }
                self.record_transition(barrier, TierScope::Regional, from, false);
            }

            // The race: earliest completion wins; ties go to the rack.
            let outcome = match (rack_reply, regional_reply) {
                (Some((reply, rack_done)), Some((hedge, hedge_done))) => {
                    if hedge_done < rack_done {
                        self.stats.hedge_wins += 1;
                        self.reply(
                            &pending,
                            hedge,
                            hedge_done,
                            ServedBy::Regional,
                            hedged,
                            true,
                        )
                    } else {
                        self.reply(
                            &pending,
                            reply,
                            rack_done,
                            ServedBy::Rack(pending.rack),
                            hedged,
                            false,
                        )
                    }
                }
                (Some((reply, rack_done)), None) => self.reply(
                    &pending,
                    reply,
                    rack_done,
                    ServedBy::Rack(pending.rack),
                    hedged,
                    false,
                ),
                (None, Some((hedge, hedge_done))) => {
                    if hedged {
                        self.stats.hedge_wins += 1;
                    }
                    self.reply(
                        &pending,
                        hedge,
                        hedge_done,
                        ServedBy::Regional,
                        hedged,
                        hedged,
                    )
                }
                (None, None) => self.cpu_rung(&pending, handover_at, hedged),
            };
            match &outcome {
                TierOutcome::Reply(reply) => {
                    self.stats.replies += 1;
                    match reply.served_by {
                        ServedBy::Rack(_) => self.stats.rack_served += 1,
                        ServedBy::Regional => self.stats.regional_served += 1,
                        ServedBy::LocalCpu => self.stats.cpu_served += 1,
                    }
                }
                TierOutcome::Failed(_) => self.stats.failed += 1,
            }
            self.outcomes.insert(pending.id, outcome);
        }
    }

    fn reply(
        &self,
        pending: &PendingRequest,
        reply: ClientReply,
        completed_at: SimTime,
        served_by: ServedBy,
        hedged: bool,
        hedge_won: bool,
    ) -> TierOutcome {
        debug_assert!(
            pending.deadline.is_none_or(|d| completed_at <= d),
            "tier delivered a late reply"
        );
        TierOutcome::Reply(TierReply {
            output: reply.output.expect("winning rung carries an output"),
            latency: completed_at.since(pending.submit_at),
            completed_at,
            served_by,
            hedged,
            hedge_won,
            failed_over: pending.failed_over,
        })
    }

    /// Last rung: local CPU compute from `start`. Delivers only when the
    /// deadline holds; otherwise resolves as a typed failure.
    fn cpu_rung(&self, pending: &PendingRequest, start: SimTime, hedged: bool) -> TierOutcome {
        let start = start.max(pending.submit_at);
        let latency = self.cpu.latency(self.macs, pending.rows.rows());
        let completed_at = start + latency;
        if let Some(deadline) = pending.deadline {
            if completed_at > deadline {
                return TierOutcome::Failed(ServeError::DeadlineExceeded {
                    deadline,
                    at: completed_at,
                    late_by: completed_at.since(deadline),
                });
            }
        }
        TierOutcome::Reply(TierReply {
            output: self.mlp.forward_batch(&pending.rows),
            latency: completed_at.since(pending.submit_at),
            completed_at,
            served_by: ServedBy::LocalCpu,
            hedged,
            hedge_won: false,
            failed_over: pending.failed_over,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::Mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp() -> Mlp {
        let mut rng = StdRng::seed_from_u64(9);
        Mlp::with_topology(8, 4, 16, 2, &mut rng)
    }

    fn rows(mlp: &Mlp, n: usize) -> Matrix {
        Matrix::from_rows(
            (0..n)
                .map(|i| {
                    (0..mlp.input_size())
                        .map(|j| (i + j) as f32 * 0.1)
                        .collect()
                })
                .collect(),
        )
    }

    fn submit_opts(rack: usize) -> TierSubmit {
        TierSubmit {
            rack,
            client: ClientId::new(7),
            deadline: None,
        }
    }

    #[test]
    fn healthy_tier_serves_from_the_home_rack() {
        let mlp = mlp();
        let mut tier = TieredService::new(&mlp, TierConfig::default());
        let ticket = tier
            .submit(rows(&mlp, 2), SimTime::from_millis(1), submit_opts(1))
            .unwrap();
        tier.flush(SimTime::from_millis(500));
        match tier.take_outcome(ticket).expect("resolved") {
            TierOutcome::Reply(reply) => {
                assert_eq!(reply.served_by, ServedBy::Rack(1));
                assert!(!reply.failed_over);
                assert_eq!(reply.output.rows(), 2);
            }
            TierOutcome::Failed(err) => panic!("unexpected failure: {err}"),
        }
        assert_eq!(tier.stats().rack_served, 1);
        assert_eq!(tier.stats().failovers, 0);
    }

    #[test]
    fn partitioned_rack_fails_over_to_regional() {
        let mlp = mlp();
        let mut tier = TieredService::new(&mlp, TierConfig::default());
        tier.set_partitioned(0, true);
        let ticket = tier
            .submit(rows(&mlp, 1), SimTime::from_millis(1), submit_opts(0))
            .unwrap();
        tier.flush(SimTime::from_millis(500));
        match tier.take_outcome(ticket).expect("resolved") {
            TierOutcome::Reply(reply) => {
                assert_eq!(reply.served_by, ServedBy::Regional);
                assert!(reply.failed_over);
            }
            TierOutcome::Failed(err) => panic!("unexpected failure: {err}"),
        }
        assert_eq!(tier.stats().failovers, 1);
    }

    #[test]
    fn silent_rack_is_suspected_at_the_exact_timeout_instant() {
        let mlp = mlp();
        let config = TierConfig::default();
        let timeout = config.heartbeat_timeout;
        let interval = config.heartbeat_interval;
        let mut tier = TieredService::new(&mlp, config);
        let silence = SimTime::from_millis(100);
        tier.set_heartbeat_silent(2, true, silence);
        tier.flush(SimTime::from_secs(1));
        assert!(tier.suspected(2));
        assert_eq!(tier.breaker_state(TierScope::Rack(2)), BreakerState::Open);
        assert_eq!(tier.stats().suspects, 1);
        // Last beat was the interval tick strictly before the silence
        // start (a tick at the silence instant is already silent);
        // detection fires exactly `timeout` later.
        let last_beat = SimTime::from_nanos(
            (silence.as_nanos() - 1) / interval.as_nanos() * interval.as_nanos(),
        );
        let expected = (last_beat + timeout).since(silence);
        assert_eq!(tier.stats().detection_latency_max, expected);
        // Submissions now fail over.
        let ticket = tier
            .submit(rows(&mlp, 1), SimTime::from_secs(1), submit_opts(2))
            .unwrap();
        tier.flush(SimTime::from_millis(1500));
        match tier.take_outcome(ticket).unwrap() {
            TierOutcome::Reply(reply) => {
                assert_eq!(reply.served_by, ServedBy::Regional);
                assert!(reply.failed_over);
            }
            TierOutcome::Failed(err) => panic!("unexpected failure: {err}"),
        }
        // Heartbeats resume: suspicion clears into half-open probation.
        tier.set_heartbeat_silent(2, false, SimTime::from_millis(1500));
        tier.flush(SimTime::from_secs(2));
        assert!(!tier.suspected(2));
        assert_eq!(
            tier.breaker_state(TierScope::Rack(2)),
            BreakerState::HalfOpen
        );
        assert_eq!(tier.stats().recoveries, 1);
    }

    #[test]
    fn hedge_fires_when_the_rack_is_slower_than_the_timeout() {
        let mlp = mlp();
        // A zero-floor hedge timeout with an empty window hedges
        // everything: the first request races rack vs regional.
        let config = TierConfig {
            hedge_min: SimDuration::ZERO,
            ..TierConfig::default()
        };
        let mut tier = TieredService::new(&mlp, config);
        let ticket = tier
            .submit(rows(&mlp, 1), SimTime::from_millis(1), submit_opts(0))
            .unwrap();
        tier.flush(SimTime::from_millis(500));
        assert_eq!(tier.stats().hedges, 1);
        match tier.take_outcome(ticket).unwrap() {
            TierOutcome::Reply(reply) => assert!(reply.hedged),
            TierOutcome::Failed(err) => panic!("unexpected failure: {err}"),
        }
        // Later requests learn the observed latency and stop hedging
        // (the p99 of the window now covers the rack's service time).
        let ticket = tier
            .submit(rows(&mlp, 1), SimTime::from_millis(600), submit_opts(0))
            .unwrap();
        tier.flush(SimTime::from_millis(1100));
        assert_eq!(tier.stats().hedges, 1, "no second hedge");
        match tier.take_outcome(ticket).unwrap() {
            TierOutcome::Reply(reply) => {
                assert!(!reply.hedged);
                assert_eq!(reply.served_by, ServedBy::Rack(0));
            }
            TierOutcome::Failed(err) => panic!("unexpected failure: {err}"),
        }
    }

    #[test]
    fn cpu_last_rung_serves_when_both_tiers_are_fenced() {
        let mlp = mlp();
        let mut tier = TieredService::new(&mlp, TierConfig::default());
        tier.set_partitioned(3, true);
        // Trip the regional breaker by hand: every regional rung is
        // fenced and the CPU must serve.
        for _ in 0..tier.config.breaker_threshold {
            tier.regional_breaker.record_failure();
        }
        let ticket = tier
            .submit(rows(&mlp, 2), SimTime::from_millis(1), submit_opts(3))
            .unwrap();
        tier.flush(SimTime::from_millis(500));
        match tier.take_outcome(ticket).unwrap() {
            TierOutcome::Reply(reply) => {
                assert_eq!(reply.served_by, ServedBy::LocalCpu);
                assert!(reply.failed_over);
                // Bit-exact with the float model.
                assert_eq!(reply.output, mlp.forward_batch(&rows(&mlp, 2)));
            }
            TierOutcome::Failed(err) => panic!("unexpected failure: {err}"),
        }
        assert_eq!(tier.stats().cpu_served, 1);
    }

    #[test]
    fn impossible_deadline_fails_typed_instead_of_late() {
        let mlp = mlp();
        let mut tier = TieredService::new(&mlp, TierConfig::default());
        tier.set_partitioned(0, true);
        for _ in 0..tier.config.breaker_threshold {
            tier.regional_breaker.record_failure();
        }
        let opts = TierSubmit {
            rack: 0,
            client: ClientId::new(1),
            deadline: Some(SimTime::from_millis(1) + SimDuration::from_nanos(10)),
        };
        let ticket = tier
            .submit(rows(&mlp, 1), SimTime::from_millis(1), opts)
            .unwrap();
        tier.flush(SimTime::from_millis(500));
        match tier.take_outcome(ticket).unwrap() {
            TierOutcome::Failed(ServeError::DeadlineExceeded { .. }) => {}
            other => panic!("expected a typed deadline failure, got {other:?}"),
        }
        assert_eq!(tier.stats().failed, 1);
        assert_eq!(tier.stats().replies, 0);
    }

    #[test]
    fn conservation_every_ticket_resolves_exactly_once() {
        let mlp = mlp();
        let config = TierConfig {
            hedge_min: SimDuration::from_nanos(100),
            ..TierConfig::default()
        };
        let mut tier = TieredService::new(&mlp, config);
        tier.set_heartbeat_silent(1, true, SimTime::ZERO);
        let mut tickets = Vec::new();
        for i in 0..40u64 {
            let at = SimTime::from_millis(1 + i * 7);
            let opts = submit_opts((i % 4) as usize);
            tickets.push(tier.submit(rows(&mlp, 1), at, opts).unwrap());
        }
        tier.flush(SimTime::from_millis(600));
        let mut resolved = 0;
        for ticket in &tickets {
            if tier.take_outcome(*ticket).is_some() {
                resolved += 1;
            }
            assert!(tier.take_outcome(*ticket).is_none(), "double resolution");
        }
        assert_eq!(resolved, tickets.len());
        let stats = tier.stats();
        assert_eq!(stats.replies + stats.failed, tickets.len() as u64);
    }

    #[test]
    fn regional_rtt_rides_on_regional_completions() {
        let mlp = mlp();
        let rtt = SimDuration::from_millis(8);
        let run = |regional_rtt: SimDuration| {
            let config = TierConfig {
                regional_rtt,
                ..TierConfig::default()
            };
            let mut tier = TieredService::new(&mlp, config);
            tier.set_partitioned(0, true);
            let ticket = tier
                .submit(rows(&mlp, 1), SimTime::from_millis(1), submit_opts(0))
                .unwrap();
            tier.flush(SimTime::from_millis(500));
            match tier.take_outcome(ticket).unwrap() {
                TierOutcome::Reply(reply) => {
                    assert_eq!(reply.served_by, ServedBy::Regional);
                    reply.completed_at
                }
                TierOutcome::Failed(err) => panic!("unexpected failure: {err}"),
            }
        };
        let plain = run(SimDuration::ZERO);
        let delayed = run(rtt);
        assert_eq!(delayed.since(plain), rtt);
    }

    #[test]
    fn infeasible_backbone_deadline_fails_over_to_cpu_not_regional() {
        let mlp = mlp();
        let config = TierConfig {
            regional_rtt: SimDuration::from_millis(250),
            ..TierConfig::default()
        };
        let mut tier = TieredService::new(&mlp, config);
        tier.set_partitioned(0, true);
        let opts = TierSubmit {
            rack: 0,
            client: ClientId::new(1),
            // Tighter than the backbone round trip: the regional rung
            // cannot possibly answer in time, the CPU can.
            deadline: Some(SimTime::from_millis(1) + SimDuration::from_millis(100)),
        };
        let ticket = tier
            .submit(rows(&mlp, 1), SimTime::from_millis(1), opts)
            .unwrap();
        tier.flush(SimTime::from_millis(500));
        match tier.take_outcome(ticket).unwrap() {
            TierOutcome::Reply(reply) => {
                assert_eq!(reply.served_by, ServedBy::LocalCpu);
                assert!(reply.failed_over);
            }
            TierOutcome::Failed(err) => panic!("unexpected failure: {err}"),
        }
        // The regional tier never saw the request, so its breaker was
        // not charged either way.
        assert_eq!(tier.stats().regional_served, 0);
    }

    #[test]
    fn network_infeasible_hedge_is_suppressed() {
        let mlp = mlp();
        // Zero hedge floor + empty window hedges every rack request —
        // unless the backbone RTT makes the duplicate pointless.
        let config = TierConfig {
            hedge_min: SimDuration::ZERO,
            regional_rtt: SimDuration::from_secs(1),
            ..TierConfig::default()
        };
        let mut tier = TieredService::new(&mlp, config);
        let opts = TierSubmit {
            rack: 0,
            client: ClientId::new(7),
            deadline: Some(SimTime::from_millis(1) + SimDuration::from_millis(400)),
        };
        let ticket = tier
            .submit(rows(&mlp, 1), SimTime::from_millis(1), opts)
            .unwrap();
        tier.flush(SimTime::from_millis(401));
        assert_eq!(tier.stats().hedges, 0, "hedge cannot beat the deadline");
        assert_eq!(tier.stats().hedges_infeasible, 1);
        match tier.take_outcome(ticket).unwrap() {
            TierOutcome::Reply(reply) => {
                assert!(!reply.hedged);
                assert_eq!(reply.served_by, ServedBy::Rack(0));
            }
            TierOutcome::Failed(err) => panic!("unexpected failure: {err}"),
        }
    }

    #[test]
    fn regional_outage_routes_failovers_to_cpu_and_heals() {
        let mlp = mlp();
        let mut tier = TieredService::new(&mlp, TierConfig::default());
        tier.set_partitioned(0, true);
        tier.set_regional_down(true);
        let ticket = tier
            .submit(rows(&mlp, 1), SimTime::from_millis(1), submit_opts(0))
            .unwrap();
        tier.flush(SimTime::from_millis(500));
        match tier.take_outcome(ticket).unwrap() {
            TierOutcome::Reply(reply) => assert_eq!(reply.served_by, ServedBy::LocalCpu),
            TierOutcome::Failed(err) => panic!("unexpected failure: {err}"),
        }
        // An unreachable tier is not a failing tier: the breaker stayed
        // closed, so the heal restores regional failover immediately.
        assert_eq!(
            tier.breaker_state(TierScope::Regional),
            BreakerState::Closed
        );
        tier.set_regional_down(false);
        let ticket = tier
            .submit(rows(&mlp, 1), SimTime::from_millis(600), submit_opts(0))
            .unwrap();
        tier.flush(SimTime::from_millis(1100));
        match tier.take_outcome(ticket).unwrap() {
            TierOutcome::Reply(reply) => assert_eq!(reply.served_by, ServedBy::Regional),
            TierOutcome::Failed(err) => panic!("unexpected failure: {err}"),
        }
    }

    #[test]
    fn invalid_input_is_rejected_at_the_door() {
        let mlp = mlp();
        let mut tier = TieredService::new(&mlp, TierConfig::default());
        let empty = Matrix::zeros(0, mlp.input_size());
        assert!(matches!(
            tier.submit(empty, SimTime::ZERO, submit_opts(0)),
            Err(ServeError::InvalidInput { .. })
        ));
        let narrow = Matrix::zeros(1, mlp.input_size() + 1);
        assert!(matches!(
            tier.submit(narrow, SimTime::ZERO, submit_opts(0)),
            Err(ServeError::InvalidInput { .. })
        ));
    }

    #[test]
    fn config_validation_rejects_degenerate_topologies() {
        let config = TierConfig {
            racks: 0,
            ..TierConfig::default()
        };
        assert_eq!(config.validate(), Err(ConfigError::ZeroRacks));
        let config = TierConfig {
            heartbeat_timeout: SimDuration::from_nanos(1),
            ..TierConfig::default()
        };
        assert_eq!(config.validate(), Err(ConfigError::InvalidHeartbeat));
        let config = TierConfig {
            hedge_quantile: 1.5,
            ..TierConfig::default()
        };
        assert_eq!(config.validate(), Err(ConfigError::InvalidHedge));
    }
}

//! Client-side retry classification and deterministic jittered backoff.

use hmc_types::SimDuration;

/// Whether an error is worth resubmitting after a backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryClass {
    /// Transient condition (shed, rate limit, device fault): back off by
    /// the advertised or computed delay, then resubmit.
    Retryable,
    /// Permanent condition (deadline passed, malformed input): give the
    /// request up immediately.
    Terminal,
}

/// Exponential backoff with deterministic jitter.
///
/// The delay for retry `attempt` (1-based) is
/// `base * multiplier^(attempt-1)`, clamped to `max`, floored at the
/// service's retry-after hint when one was advertised, plus a jitter in
/// `[0, delay/4)` drawn from a SplitMix64 hash of the caller-provided
/// seed and the attempt number. Everything is pure arithmetic on virtual
/// time, so two runs with the same schedule produce bit-identical
/// backoffs — jitter decorrelates *clients*, not runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Resubmissions after the first attempt before the client gives up.
    pub max_attempts: u32,
    /// First retry's base delay.
    pub base: SimDuration,
    /// Growth factor per retry.
    pub multiplier: f64,
    /// Upper clamp on the un-jittered delay.
    pub max: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base: SimDuration::from_millis(1),
            multiplier: 2.0,
            max: SimDuration::from_millis(16),
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry `attempt` (1-based). `hint` is the
    /// service's retry-after, used as a floor; `seed` decorrelates
    /// clients (hash a client id and the submission time into it).
    pub fn backoff(&self, attempt: u32, hint: Option<SimDuration>, seed: u64) -> SimDuration {
        let exp = self.base.as_secs_f64() * self.multiplier.powi(attempt.saturating_sub(1) as i32);
        let clamped = exp.min(self.max.as_secs_f64());
        let floored = match hint {
            Some(h) => clamped.max(h.as_secs_f64()),
            None => clamped,
        };
        let jitter_unit =
            sim_core::splitmix64(seed ^ u64::from(attempt)) as f64 / (u64::MAX as f64 + 1.0);
        SimDuration::from_secs_f64(floored + jitter_unit * (clamped / 4.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_clamps() {
        let policy = RetryPolicy::default();
        let b1 = policy.backoff(1, None, 7);
        let b2 = policy.backoff(2, None, 7);
        let b3 = policy.backoff(3, None, 7);
        assert!(b2 > b1, "backoff must grow: {b1:?} vs {b2:?}");
        assert!(b3 > b2);
        // Deep attempts clamp at max (+ up to 25% jitter).
        let deep = policy.backoff(30, None, 7);
        assert!(deep <= SimDuration::from_secs_f64(policy.max.as_secs_f64() * 1.25));
    }

    #[test]
    fn hint_floors_the_delay() {
        let policy = RetryPolicy::default();
        let hint = SimDuration::from_millis(40);
        let b = policy.backoff(1, Some(hint), 3);
        assert!(b >= hint);
    }

    #[test]
    fn jitter_is_deterministic_and_seed_sensitive() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff(2, None, 11), policy.backoff(2, None, 11));
        assert_ne!(policy.backoff(2, None, 11), policy.backoff(2, None, 12));
    }
}

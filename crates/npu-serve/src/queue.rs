//! Bounded submission queue with admission control.

use hmc_types::{SimDuration, SimTime};
use nn::Matrix;

/// Admission-control rejection: the queue is at capacity. The caller
/// should retry no earlier than `retry_after` from the rejected submit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected {
    /// Back-off hint advertised by the service.
    pub retry_after: SimDuration,
}

/// One queued inference request.
#[derive(Debug, Clone)]
pub(crate) struct QueuedRequest {
    /// Ticket id.
    pub id: u64,
    /// The request's stacked feature rows.
    pub rows: Matrix,
    /// Virtual submission time.
    pub submitted_at: SimTime,
    /// Latest dispatch time the batcher may delay this request to.
    pub deadline: SimTime,
}

/// A bounded queue ordered by `(deadline, id)` — the dynamic batcher
/// always drains the most urgent requests first, and admission control
/// rejects (rather than queues) once `capacity` requests wait.
///
/// # Examples
///
/// ```
/// use hmc_types::SimDuration;
/// use npu_serve::SubmissionQueue;
///
/// let queue = SubmissionQueue::new(8, SimDuration::from_millis(1));
/// assert_eq!(queue.len(), 0);
/// assert!(queue.next_deadline().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct SubmissionQueue {
    capacity: usize,
    retry_after: SimDuration,
    /// Kept sorted by `(deadline, id)`.
    entries: Vec<QueuedRequest>,
}

impl SubmissionQueue {
    /// An empty queue admitting at most `capacity` pending requests.
    pub fn new(capacity: usize, retry_after: SimDuration) -> Self {
        SubmissionQueue {
            capacity,
            retry_after,
            entries: Vec::new(),
        }
    }

    /// Pending requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The earliest deadline among pending requests.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.entries.first().map(|e| e.deadline)
    }

    /// Admits a request, keeping `(deadline, id)` order, or rejects it
    /// with the retry-after hint when the queue is full.
    pub(crate) fn try_push(&mut self, request: QueuedRequest) -> Result<(), Rejected> {
        if self.entries.len() >= self.capacity {
            return Err(Rejected {
                retry_after: self.retry_after,
            });
        }
        let key = (request.deadline, request.id);
        let at = self.entries.partition_point(|e| (e.deadline, e.id) <= key);
        self.entries.insert(at, request);
        Ok(())
    }

    /// Removes and returns the `n` most urgent requests (fewer when less
    /// is pending).
    pub(crate) fn take(&mut self, n: usize) -> Vec<QueuedRequest> {
        let n = n.min(self.entries.len());
        self.entries.drain(..n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, deadline_ms: u64) -> QueuedRequest {
        QueuedRequest {
            id,
            rows: Matrix::zeros(1, 2),
            submitted_at: SimTime::ZERO,
            deadline: SimTime::from_millis(deadline_ms),
        }
    }

    #[test]
    fn drains_in_deadline_order() {
        let mut q = SubmissionQueue::new(8, SimDuration::from_millis(1));
        q.try_push(req(0, 30)).unwrap();
        q.try_push(req(1, 10)).unwrap();
        q.try_push(req(2, 20)).unwrap();
        assert_eq!(q.next_deadline(), Some(SimTime::from_millis(10)));
        let taken = q.take(2);
        assert_eq!(taken[0].id, 1);
        assert_eq!(taken[1].id, 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn equal_deadlines_keep_submission_order() {
        let mut q = SubmissionQueue::new(8, SimDuration::from_millis(1));
        for id in 0..4 {
            q.try_push(req(id, 10)).unwrap();
        }
        let ids: Vec<u64> = q.take(4).into_iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rejects_at_capacity_with_retry_hint() {
        let mut q = SubmissionQueue::new(2, SimDuration::from_millis(3));
        q.try_push(req(0, 10)).unwrap();
        q.try_push(req(1, 10)).unwrap();
        let err = q.try_push(req(2, 10)).unwrap_err();
        assert_eq!(err.retry_after, SimDuration::from_millis(3));
        assert_eq!(q.len(), 2);
        // Draining makes room again.
        q.take(1);
        assert!(q.try_push(req(3, 12)).is_ok());
    }
}

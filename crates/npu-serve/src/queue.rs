//! Bounded submission queue with admission control.

use hmc_types::{SimDuration, SimTime};
use nn::Matrix;

use crate::limiter::ClientId;

/// Admission-control rejection: the queue is at capacity. The caller
/// should retry no earlier than `retry_after` from the rejected submit;
/// `depth` reports how many requests were already waiting, so callers can
/// scale their own back-off with the backlog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected {
    /// Back-off hint advertised by the service.
    pub retry_after: SimDuration,
    /// Pending requests at the instant of the rejection.
    pub depth: usize,
}

/// One queued inference request.
#[derive(Debug, Clone)]
pub(crate) struct QueuedRequest {
    /// Ticket id.
    pub id: u64,
    /// Submitting client.
    pub client: ClientId,
    /// The request's stacked feature rows.
    pub rows: Matrix,
    /// Virtual submission time.
    pub submitted_at: SimTime,
    /// When the payload becomes batchable (slow-loris hold, clamped).
    pub ready_at: SimTime,
    /// Latest dispatch time the batcher may delay this request to.
    pub dispatch_deadline: SimTime,
    /// Absolute completion deadline the client asked for, if any. A reply
    /// after this instant is worthless — the service fails the request
    /// fast instead of computing it.
    pub deadline: Option<SimTime>,
    /// Route to the CPU fallback (graceful degrade) instead of the pool.
    pub route_cpu: bool,
}

/// A bounded queue ordered by `(dispatch_deadline, id)` — the dynamic
/// batcher always drains the most urgent requests first, and admission
/// control rejects (rather than queues) once `capacity` requests wait.
///
/// # Examples
///
/// ```
/// use hmc_types::SimDuration;
/// use npu_serve::SubmissionQueue;
///
/// let queue = SubmissionQueue::new(8, SimDuration::from_millis(1));
/// assert_eq!(queue.len(), 0);
/// assert!(queue.next_deadline().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct SubmissionQueue {
    capacity: usize,
    retry_after: SimDuration,
    /// Kept sorted by `(dispatch_deadline, id)`.
    entries: Vec<QueuedRequest>,
}

impl SubmissionQueue {
    /// An empty queue admitting at most `capacity` pending requests.
    pub fn new(capacity: usize, retry_after: SimDuration) -> Self {
        SubmissionQueue {
            capacity,
            retry_after,
            entries: Vec::new(),
        }
    }

    /// Pending requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The earliest dispatch deadline among pending requests.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.entries.first().map(|e| e.dispatch_deadline)
    }

    /// Total feature rows pending (backlog size in work units).
    pub fn backlog_rows(&self) -> usize {
        self.entries.iter().map(|e| e.rows.rows()).sum()
    }

    /// Pending requests whose payload is ready at `at` (slow-loris holds
    /// excluded).
    pub(crate) fn ready_len(&self, at: SimTime) -> usize {
        self.entries.iter().filter(|e| e.ready_at <= at).count()
    }

    /// The earliest instant any pending payload becomes ready, if one is
    /// still held back.
    pub(crate) fn earliest_ready(&self) -> Option<SimTime> {
        self.entries.iter().map(|e| e.ready_at).min()
    }

    /// Admits a request, keeping `(dispatch_deadline, id)` order, or
    /// rejects it with the retry-after hint when the queue is full.
    pub(crate) fn try_push(&mut self, request: QueuedRequest) -> Result<(), Rejected> {
        if self.entries.len() >= self.capacity {
            return Err(Rejected {
                retry_after: self.retry_after,
                depth: self.entries.len(),
            });
        }
        let key = (request.dispatch_deadline, request.id);
        let at = self
            .entries
            .partition_point(|e| (e.dispatch_deadline, e.id) <= key);
        self.entries.insert(at, request);
        Ok(())
    }

    /// Removes and returns the `n` most urgent requests (fewer when less
    /// is pending).
    #[cfg(test)]
    pub(crate) fn take(&mut self, n: usize) -> Vec<QueuedRequest> {
        let n = n.min(self.entries.len());
        self.entries.drain(..n).collect()
    }

    /// Removes and returns the `n` most urgent requests whose payloads
    /// are ready at `at`. Held (slow-loris) requests keep their queue
    /// slots but are skipped.
    pub(crate) fn take_ready(&mut self, n: usize, at: SimTime) -> Vec<QueuedRequest> {
        let mut taken = Vec::new();
        let mut i = 0;
        while i < self.entries.len() && taken.len() < n {
            if self.entries[i].ready_at <= at {
                taken.push(self.entries.remove(i));
            } else {
                i += 1;
            }
        }
        taken
    }

    /// Removes and returns every pending request whose absolute deadline
    /// has already passed at `at` — they can no longer be served on time
    /// and must fail fast instead of burning pool capacity.
    pub(crate) fn take_expired(&mut self, at: SimTime) -> Vec<QueuedRequest> {
        let mut expired = Vec::new();
        let mut i = 0;
        while i < self.entries.len() {
            if self.entries[i].deadline.is_some_and(|d| d < at) {
                expired.push(self.entries.remove(i));
            } else {
                i += 1;
            }
        }
        expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn req(id: u64, deadline_ms: u64) -> QueuedRequest {
        QueuedRequest {
            id,
            client: ClientId::default(),
            rows: Matrix::zeros(1, 2),
            submitted_at: SimTime::ZERO,
            ready_at: SimTime::ZERO,
            dispatch_deadline: SimTime::from_millis(deadline_ms),
            deadline: None,
            route_cpu: false,
        }
    }

    #[test]
    fn drains_in_deadline_order() {
        let mut q = SubmissionQueue::new(8, SimDuration::from_millis(1));
        q.try_push(req(0, 30)).unwrap();
        q.try_push(req(1, 10)).unwrap();
        q.try_push(req(2, 20)).unwrap();
        assert_eq!(q.next_deadline(), Some(SimTime::from_millis(10)));
        let taken = q.take(2);
        assert_eq!(taken[0].id, 1);
        assert_eq!(taken[1].id, 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn equal_deadlines_keep_submission_order() {
        let mut q = SubmissionQueue::new(8, SimDuration::from_millis(1));
        for id in 0..4 {
            q.try_push(req(id, 10)).unwrap();
        }
        let ids: Vec<u64> = q.take(4).into_iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rejects_at_capacity_with_retry_hint_and_depth() {
        let mut q = SubmissionQueue::new(2, SimDuration::from_millis(3));
        q.try_push(req(0, 10)).unwrap();
        q.try_push(req(1, 10)).unwrap();
        let err = q.try_push(req(2, 10)).unwrap_err();
        assert_eq!(err.retry_after, SimDuration::from_millis(3));
        assert_eq!(err.depth, 2);
        assert_eq!(q.len(), 2);
        // Draining makes room again.
        q.take(1);
        assert!(q.try_push(req(3, 12)).is_ok());
    }

    #[test]
    fn held_requests_are_skipped_but_keep_their_slots() {
        let mut q = SubmissionQueue::new(4, SimDuration::from_millis(1));
        let mut held = req(0, 5);
        held.ready_at = SimTime::from_millis(9);
        q.try_push(held).unwrap();
        q.try_push(req(1, 10)).unwrap();

        let at = SimTime::from_millis(3);
        assert_eq!(q.ready_len(at), 1);
        assert_eq!(q.earliest_ready(), Some(SimTime::ZERO));
        let taken = q.take_ready(4, at);
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].id, 1);
        // The held request still occupies its slot...
        assert_eq!(q.len(), 1);
        // ...and is drained once its payload arrives.
        let taken = q.take_ready(4, SimTime::from_millis(9));
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].id, 0);
    }

    proptest! {
        /// Any interleaving of pushes (with heavily duplicated deadlines)
        /// and drains keeps the queue within capacity and drains in
        /// strict `(dispatch_deadline, id)` order — equal deadlines tie-
        /// break by submission order, with no request lost or duplicated.
        #[test]
        fn interleavings_drain_in_strict_key_order_within_capacity(
            // 0 ⇒ drain one; 1..=6 ⇒ push with deadline (op - 1) ms.
            ops in proptest::collection::vec(0u64..7, 1..80),
            capacity in 1usize..12,
        ) {
            let mut q = SubmissionQueue::new(capacity, SimDuration::from_millis(1));
            // Reference model: the multiset of keys still queued.
            let mut model: Vec<(SimTime, u64)> = Vec::new();
            let mut next_id = 0u64;
            for &op in &ops {
                if op == 0 {
                    let taken = q.take(1);
                    if let Some(r) = taken.first() {
                        let min = *model.iter().min().expect("model tracks queue");
                        prop_assert_eq!((r.dispatch_deadline, r.id), min);
                        model.retain(|&k| k != min);
                    } else {
                        prop_assert!(model.is_empty());
                    }
                } else {
                    let deadline_ms = op - 1;
                    match q.try_push(req(next_id, deadline_ms)) {
                        Ok(()) => {
                            model.push((SimTime::from_millis(deadline_ms), next_id));
                            next_id += 1;
                        }
                        Err(rejected) => {
                            prop_assert_eq!(rejected.depth, capacity);
                            prop_assert_eq!(model.len(), capacity);
                        }
                    }
                }
                prop_assert!(q.len() <= capacity, "capacity exceeded");
                prop_assert_eq!(q.len(), model.len());
            }
            // The final drain is strictly increasing: every queued request
            // comes out exactly once, most urgent first.
            let rest = q.take(usize::MAX);
            prop_assert_eq!(rest.len(), model.len());
            let keys: Vec<_> = rest.iter().map(|r| (r.dispatch_deadline, r.id)).collect();
            for pair in keys.windows(2) {
                prop_assert!(pair[0] < pair[1], "drain order not strict: {pair:?}");
            }
        }
    }

    #[test]
    fn expired_deadlines_are_drained_separately() {
        let mut q = SubmissionQueue::new(4, SimDuration::from_millis(1));
        let mut doomed = req(0, 5);
        doomed.deadline = Some(SimTime::from_millis(4));
        q.try_push(doomed).unwrap();
        let mut fine = req(1, 6);
        fine.deadline = Some(SimTime::from_millis(40));
        q.try_push(fine).unwrap();
        q.try_push(req(2, 7)).unwrap();

        let expired = q.take_expired(SimTime::from_millis(10));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].id, 0);
        assert_eq!(q.len(), 2);
        // Nothing else expires — no deadline, or a deadline still ahead.
        assert!(q.take_expired(SimTime::from_millis(10)).is_empty());
    }
}

//! Service configuration.

use std::fmt;

use hmc_types::SimDuration;
use npu::KernelMode;

use crate::limiter::RateLimit;
use crate::retry::RetryPolicy;

/// Tunables of the shared inference service.
///
/// The middleware fields (`shed_*`, `cpu_degrade_watermark`,
/// `rate_limit`) all default to *disabled*, so a default configuration
/// behaves exactly like the pre-middleware service: admission control is
/// queue capacity alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// NPU devices in the pool.
    pub devices: usize,
    /// Worker threads computing ready batches (std threads, no runtime).
    pub workers: usize,
    /// Maximum requests coalesced into one batch call; reaching it
    /// dispatches immediately.
    pub max_batch: usize,
    /// Deadline of the dynamic batcher: a pending request is dispatched at
    /// the latest `max_wait` after it is ready, batched with whatever else
    /// is waiting.
    pub max_wait: SimDuration,
    /// Admission control: pending requests beyond this are rejected with a
    /// retry-after hint instead of queued.
    pub queue_capacity: usize,
    /// The static floor of the back-off hint returned with a rejection
    /// (the shed layer scales the hint up with the backlog).
    pub retry_after: SimDuration,
    /// Consecutive failures after which a device's circuit breaker opens.
    pub breaker_threshold: u32,
    /// Dispatches a breaker stays open before a half-open probe.
    pub breaker_cooldown: u32,
    /// Client-side retry schedule of a [`crate::SharedClient`]
    /// (resubmissions after retryable errors, with jittered backoff).
    pub retry: RetryPolicy,
    /// Shed every submission arriving at this queue depth or deeper.
    /// `None` disables the depth watermark.
    pub shed_depth_watermark: Option<usize>,
    /// Shed every submission whose estimated service latency reaches this
    /// mark. `None` disables the latency watermark.
    pub shed_latency_watermark: Option<SimDuration>,
    /// Before shedding: once the estimated service latency reaches this
    /// mark, admit but route to the CPU fallback to spare pool capacity.
    /// `None` disables graceful degrade.
    pub cpu_degrade_watermark: Option<SimDuration>,
    /// Per-client token-bucket rate limit. `None` disables rate limiting.
    pub rate_limit: Option<RateLimit>,
    /// Safety margin of the deadline-feasibility check: a request whose
    /// absolute deadline is closer than this to its earliest dispatch is
    /// rejected as infeasible instead of admitted-then-expired.
    pub deadline_margin: SimDuration,
    /// Upper clamp on a submission's `hold` (slow-loris guard): a client
    /// may delay its payload's readiness at most this long while holding
    /// a queue slot.
    pub max_hold: SimDuration,
    /// Numeric inference kernel used for NPU-path batches. Both modes are
    /// bit-identical; `Scalar` forces the reference loop for differential
    /// runs.
    pub kernel: KernelMode,
    /// Capacity of the policy-output cache keyed on the quantized feature
    /// vector. Zero disables the cache. The cache replays numeric outputs
    /// only — simulated device time, occupancy and batching are untouched.
    pub policy_cache: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            devices: 2,
            workers: 4,
            max_batch: 16,
            // Half the driver round-trip: waiting this long to fill a
            // batch costs less than a second round-trip would.
            max_wait: SimDuration::from_millis(2),
            queue_capacity: 64,
            retry_after: SimDuration::from_millis(1),
            breaker_threshold: 3,
            breaker_cooldown: 8,
            retry: RetryPolicy::default(),
            shed_depth_watermark: None,
            shed_latency_watermark: None,
            cpu_degrade_watermark: None,
            rate_limit: None,
            // One driver round-trip: a tighter deadline cannot survive
            // even an empty queue.
            deadline_margin: SimDuration::from_millis(4),
            max_hold: SimDuration::from_millis(50),
            kernel: KernelMode::default(),
            policy_cache: 0,
        }
    }
}

/// Why a [`ServeConfig`] was rejected by [`ServeConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `devices` was zero.
    ZeroDevices,
    /// `workers` was zero.
    ZeroWorkers,
    /// `max_batch` was zero.
    ZeroMaxBatch,
    /// `queue_capacity` was zero.
    ZeroQueueCapacity,
    /// `shed_depth_watermark` was `Some(0)` — that sheds everything.
    ZeroDepthWatermark,
    /// `rate_limit` had a burst below one token or a non-positive refill.
    InvalidRateLimit,
    /// `retry` had a zero base, a multiplier below one, or `max < base`.
    InvalidRetryPolicy,
    /// A tier topology had zero racks.
    ZeroRacks,
    /// Heartbeat interval was zero, or the timeout was shorter than the
    /// interval (every rack would look dead).
    InvalidHeartbeat,
    /// Hedge quantile outside `[0, 1]`, or a zero latency window.
    InvalidHedge,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            ConfigError::ZeroDevices => "need at least one device",
            ConfigError::ZeroWorkers => "need at least one worker",
            ConfigError::ZeroMaxBatch => "batch size must be positive",
            ConfigError::ZeroQueueCapacity => "queue capacity must be positive",
            ConfigError::ZeroDepthWatermark => "a zero depth watermark sheds every request",
            ConfigError::InvalidRateLimit => {
                "rate limit needs burst >= 1 and a positive refill rate"
            }
            ConfigError::InvalidRetryPolicy => {
                "retry policy needs a positive base, multiplier >= 1 and max >= base"
            }
            ConfigError::ZeroRacks => "need at least one rack",
            ConfigError::InvalidHeartbeat => {
                "heartbeat needs a positive interval and timeout >= interval"
            }
            ConfigError::InvalidHedge => {
                "hedge needs a quantile in [0, 1] and a positive latency window"
            }
        };
        f.write_str(text)
    }
}

impl std::error::Error for ConfigError {}

impl ServeConfig {
    /// Validates the configuration, returning the first violated
    /// invariant: non-zero pool, batch, capacity and workers, a usable
    /// depth watermark, a sane rate limit and a sane retry policy.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.devices == 0 {
            return Err(ConfigError::ZeroDevices);
        }
        if self.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if self.max_batch == 0 {
            return Err(ConfigError::ZeroMaxBatch);
        }
        if self.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if self.shed_depth_watermark == Some(0) {
            return Err(ConfigError::ZeroDepthWatermark);
        }
        if let Some(limit) = self.rate_limit {
            if !limit.is_valid() {
                return Err(ConfigError::InvalidRateLimit);
            }
        }
        if self.retry.base.is_zero()
            || self.retry.multiplier < 1.0
            || self.retry.max < self.retry.base
        {
            return Err(ConfigError::InvalidRetryPolicy);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(ServeConfig::default().validate(), Ok(()));
    }

    #[test]
    fn zero_devices_rejected() {
        let config = ServeConfig {
            devices: 0,
            ..ServeConfig::default()
        };
        assert_eq!(config.validate(), Err(ConfigError::ZeroDevices));
    }

    #[test]
    fn zero_workers_rejected() {
        let config = ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        };
        assert_eq!(config.validate(), Err(ConfigError::ZeroWorkers));
    }

    #[test]
    fn zero_max_batch_rejected() {
        let config = ServeConfig {
            max_batch: 0,
            ..ServeConfig::default()
        };
        assert_eq!(config.validate(), Err(ConfigError::ZeroMaxBatch));
    }

    #[test]
    fn zero_queue_capacity_rejected() {
        let config = ServeConfig {
            queue_capacity: 0,
            ..ServeConfig::default()
        };
        assert_eq!(config.validate(), Err(ConfigError::ZeroQueueCapacity));
    }

    #[test]
    fn zero_depth_watermark_rejected() {
        let config = ServeConfig {
            shed_depth_watermark: Some(0),
            ..ServeConfig::default()
        };
        assert_eq!(config.validate(), Err(ConfigError::ZeroDepthWatermark));
    }

    #[test]
    fn non_positive_rate_limit_rejected() {
        for limit in [
            RateLimit {
                burst: 0.0,
                refill_per_sec: 10.0,
            },
            RateLimit {
                burst: 4.0,
                refill_per_sec: 0.0,
            },
        ] {
            let config = ServeConfig {
                rate_limit: Some(limit),
                ..ServeConfig::default()
            };
            assert_eq!(config.validate(), Err(ConfigError::InvalidRateLimit));
        }
    }

    #[test]
    fn degenerate_retry_policy_rejected() {
        let retry = crate::RetryPolicy {
            multiplier: 0.5,
            ..crate::RetryPolicy::default()
        };
        let config = ServeConfig {
            retry,
            ..ServeConfig::default()
        };
        assert_eq!(config.validate(), Err(ConfigError::InvalidRetryPolicy));
    }

    #[test]
    fn errors_display_the_violated_invariant() {
        assert!(ConfigError::ZeroDevices.to_string().contains("device"));
        assert!(ConfigError::InvalidRateLimit.to_string().contains("burst"));
    }
}

//! Service configuration.

use hmc_types::SimDuration;

/// Tunables of the shared inference service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// NPU devices in the pool.
    pub devices: usize,
    /// Worker threads computing ready batches (std threads, no runtime).
    pub workers: usize,
    /// Maximum requests coalesced into one batch call; reaching it
    /// dispatches immediately.
    pub max_batch: usize,
    /// Deadline of the dynamic batcher: a pending request is dispatched at
    /// the latest `max_wait` after submission, batched with whatever else
    /// is waiting.
    pub max_wait: SimDuration,
    /// Admission control: pending requests beyond this are rejected with a
    /// retry-after hint instead of queued.
    pub queue_capacity: usize,
    /// The back-off hint returned with a rejection.
    pub retry_after: SimDuration,
    /// Consecutive failures after which a device's circuit breaker opens.
    pub breaker_threshold: u32,
    /// Dispatches a breaker stays open before a half-open probe.
    pub breaker_cooldown: u32,
    /// Times a [`crate::SharedClient`] re-submits after a rejection before
    /// giving the epoch up.
    pub client_retries: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            devices: 2,
            workers: 4,
            max_batch: 16,
            // Half the driver round-trip: waiting this long to fill a
            // batch costs less than a second round-trip would.
            max_wait: SimDuration::from_millis(2),
            queue_capacity: 64,
            retry_after: SimDuration::from_millis(1),
            breaker_threshold: 3,
            breaker_cooldown: 8,
            client_retries: 3,
        }
    }
}

impl ServeConfig {
    /// Validates the configuration (non-zero pool, batch and capacity).
    ///
    /// # Panics
    ///
    /// Panics on a zero device count, batch size, queue capacity or worker
    /// count.
    pub fn validate(&self) {
        assert!(self.devices > 0, "need at least one device");
        assert!(self.workers > 0, "need at least one worker");
        assert!(self.max_batch > 0, "batch size must be positive");
        assert!(self.queue_capacity > 0, "queue capacity must be positive");
    }
}

//! Per-client token-bucket rate limiting in virtual time.

use std::collections::HashMap;
use std::fmt;

use hmc_types::{SimDuration, SimTime};

/// Stable identity of a submitting client (a board in the fleet).
///
/// Keys the rate limiter's token buckets and flows into the
/// `RequestAdmitted`/`RequestShed` trace events so overload behavior is
/// attributable per client. The default id `0` is used by callers that
/// predate client identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ClientId(u64);

impl ClientId {
    /// A client id with the given value.
    pub fn new(id: u64) -> Self {
        ClientId(id)
    }

    /// The raw id.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Token-bucket parameters, applied per client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Bucket capacity: requests a client may burst before throttling.
    pub burst: f64,
    /// Tokens refilled per virtual second.
    pub refill_per_sec: f64,
}

impl RateLimit {
    /// Validates the parameters (positive burst and refill rate).
    pub(crate) fn is_valid(&self) -> bool {
        self.burst >= 1.0 && self.refill_per_sec > 0.0
    }
}

/// One client's bucket: a fractional token count plus the virtual instant
/// it was last refilled at.
#[derive(Debug, Clone)]
struct TokenBucket {
    tokens: f64,
    last: SimTime,
}

/// Per-client token buckets refilled in virtual time.
///
/// Buckets are keyed by [`ClientId`] and created full on first use.
/// All arithmetic is on virtual timestamps, so admission decisions are
/// bit-identical across runs and thread budgets.
#[derive(Debug, Clone)]
pub(crate) struct RateLimiter {
    limit: RateLimit,
    buckets: HashMap<u64, TokenBucket>,
}

impl RateLimiter {
    pub(crate) fn new(limit: RateLimit) -> Self {
        RateLimiter {
            limit,
            buckets: HashMap::new(),
        }
    }

    /// Takes one token from `client`'s bucket at virtual time `now`, or
    /// returns how long until a token will be available.
    pub(crate) fn try_acquire(
        &mut self,
        client: ClientId,
        now: SimTime,
    ) -> Result<(), SimDuration> {
        let bucket = self.buckets.entry(client.value()).or_insert(TokenBucket {
            tokens: self.limit.burst,
            last: now,
        });
        // `now` never precedes `last`: the service clock is monotone and
        // stamps are clamped to it before admission runs.
        let elapsed = now.since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.limit.refill_per_sec).min(self.limit.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - bucket.tokens;
            Err(SimDuration::from_secs_f64(
                deficit / self.limit.refill_per_sec,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(t: u64) -> SimTime {
        SimTime::from_millis(t)
    }

    #[test]
    fn burst_then_throttle_then_refill() {
        let mut limiter = RateLimiter::new(RateLimit {
            burst: 2.0,
            refill_per_sec: 1000.0, // 1 token per ms
        });
        let c = ClientId::new(1);
        assert!(limiter.try_acquire(c, ms(0)).is_ok());
        assert!(limiter.try_acquire(c, ms(0)).is_ok());
        let wait = limiter.try_acquire(c, ms(0)).unwrap_err();
        assert_eq!(wait, SimDuration::from_millis(1));
        // After the advertised wait the token is there.
        assert!(limiter.try_acquire(c, ms(1)).is_ok());
    }

    #[test]
    fn buckets_are_independent_per_client() {
        let mut limiter = RateLimiter::new(RateLimit {
            burst: 1.0,
            refill_per_sec: 1.0,
        });
        assert!(limiter.try_acquire(ClientId::new(1), ms(0)).is_ok());
        assert!(limiter.try_acquire(ClientId::new(1), ms(0)).is_err());
        // A different client still has its full burst.
        assert!(limiter.try_acquire(ClientId::new(2), ms(0)).is_ok());
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut limiter = RateLimiter::new(RateLimit {
            burst: 2.0,
            refill_per_sec: 1000.0,
        });
        let c = ClientId::new(9);
        assert!(limiter.try_acquire(c, ms(0)).is_ok());
        // A long idle period must not accumulate more than `burst`.
        for _ in 0..2 {
            assert!(limiter.try_acquire(c, ms(1000)).is_ok());
        }
        assert!(limiter.try_acquire(c, ms(1000)).is_err());
    }
}

//! Event-driven host for [`NpuService`]: batch-deadline dispatch as
//! posted kernel events instead of lazy piggybacking on submissions.
//!
//! The service itself is pull-driven — every entry point clamps the
//! clock forward and calls [`NpuService::run_until`], which dispatches
//! all batches whose `max_wait` deadline has passed. [`Evented`] hosts
//! that same machinery on a `sim-core` kernel: it keeps exactly one
//! `DispatchDue` event armed at [`NpuService::next_dispatch_deadline`]
//! and cancels/reschedules it whenever a submission moves the deadline.
//! Because `run_until` is incremental and idempotent, firing it from
//! deadline events and then again from the next submission performs the
//! identical dispatch sequence — the `evented` unit tests assert
//! reply-for-reply equality against a directly-driven service.
//!
//! Client token buckets need no refill events: the per-client limiter
//! refills lazily from elapsed virtual time at each admission check
//! (see `limiter.rs`), which is already the event-driven behaviour.

use hmc_types::SimTime;
use nn::Matrix;
use sim_core::{ComponentId, EventId, Kernel, KernelStats};
use topil::ClientReply;

use crate::error::ServeError;
use crate::queue::Rejected;
use crate::service::{NpuService, RequestTicket, SubmitOptions};
use crate::stats::{MetricsSnapshot, ServeStats};

/// The single event kind the host posts: "the earliest batch deadline
/// is due — dispatch".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DispatchDue;

/// The armed wake-up, if any: the scheduled event and the deadline it
/// was armed for (so an unchanged deadline never reschedules).
#[derive(Debug, Clone, Copy)]
struct Armed {
    id: EventId,
    at: SimTime,
}

/// Kernel state: the wrapped service plus the armed-event bookkeeping
/// (handlers re-arm after dispatching).
struct Inner {
    service: NpuService,
    armed: Option<Armed>,
}

/// An [`NpuService`] hosted on the `sim-core` event kernel.
///
/// # Examples
///
/// ```
/// use hmc_types::SimTime;
/// use nn::{Matrix, Mlp};
/// use npu_serve::{Evented, ServeConfig};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mlp = Mlp::with_topology(4, 1, 8, 2, &mut StdRng::seed_from_u64(0));
/// let mut host = Evented::new(npu_serve::NpuService::new(&mlp, ServeConfig::default()));
/// let ticket = host
///     .submit(&Matrix::from_rows(vec![vec![0.5; 4]]), SimTime::ZERO)
///     .unwrap();
/// // Pump virtual time forward: the batch deadline fires as an event.
/// host.pump(SimTime::from_secs(1));
/// assert!(host.take_reply(ticket).is_some());
/// ```
pub struct Evented {
    inner: Inner,
    kernel: Kernel<'static, DispatchDue, Inner>,
    dispatcher: ComponentId,
}

impl Evented {
    /// Wraps `service`; any already-queued work is armed immediately.
    pub fn new(service: NpuService) -> Self {
        let mut kernel: Kernel<DispatchDue, Inner> = Kernel::new(0);
        let dispatcher = kernel.register("npu-dispatch", |inner: &mut Inner, sched, event| {
            inner.armed = None;
            inner.service.run_until(event.time);
            if let Some(deadline) = inner.service.next_dispatch_deadline() {
                let id = sched.schedule(deadline, event.dst, 0, DispatchDue);
                inner.armed = Some(Armed { id, at: deadline });
            }
        });
        let mut host = Evented {
            inner: Inner {
                service,
                armed: None,
            },
            kernel,
            dispatcher,
        };
        host.sync();
        host
    }

    /// Executes every dispatch deadline up to `now` as kernel events
    /// and advances the virtual clock.
    pub fn pump(&mut self, now: SimTime) {
        self.kernel.run_until(&mut self.inner, now);
    }

    /// Submits one request (see [`NpuService::submit`]), re-arming the
    /// dispatch wake-up if the earliest deadline moved.
    ///
    /// # Errors
    ///
    /// Propagates [`NpuService::submit`] rejections unchanged.
    pub fn submit(&mut self, rows: &Matrix, now: SimTime) -> Result<RequestTicket, Rejected> {
        self.pump(now);
        let result = self.inner.service.submit(rows, now);
        self.sync();
        result
    }

    /// Submits with explicit options (see [`NpuService::submit_with`]).
    ///
    /// # Errors
    ///
    /// Propagates [`NpuService::submit_with`] errors unchanged.
    pub fn submit_with(
        &mut self,
        rows: &Matrix,
        now: SimTime,
        opts: SubmitOptions,
    ) -> Result<RequestTicket, ServeError> {
        self.pump(now);
        let result = self.inner.service.submit_with(rows, now, opts);
        self.sync();
        result
    }

    /// Pumps to `now`, then force-dispatches everything still pending
    /// (see [`NpuService::flush`]).
    pub fn flush(&mut self, now: SimTime) {
        self.pump(now);
        self.inner.service.flush(now);
        self.sync();
    }

    /// Redeems a ticket (see [`NpuService::take_reply`]).
    pub fn take_reply(&mut self, ticket: RequestTicket) -> Option<ClientReply> {
        self.inner.service.take_reply(ticket)
    }

    /// Redeems a ticket as a typed outcome (see
    /// [`NpuService::take_outcome`]).
    pub fn take_outcome(
        &mut self,
        ticket: RequestTicket,
    ) -> Option<Result<ClientReply, ServeError>> {
        self.inner.service.take_outcome(ticket)
    }

    /// Pumps to `now` and cuts a metrics epoch (see
    /// [`NpuService::epoch_metrics`]).
    pub fn epoch_metrics(&mut self, now: SimTime) -> MetricsSnapshot {
        self.pump(now);
        let snapshot = self.inner.service.epoch_metrics(now);
        self.sync();
        snapshot
    }

    /// Service-side counters.
    pub fn stats(&self) -> &ServeStats {
        self.inner.service.stats()
    }

    /// Kernel-side counters (events scheduled / executed / cancelled,
    /// handler invocations).
    pub fn kernel_stats(&mut self) -> (KernelStats, sim_core::QueueStats) {
        let queue = self.kernel.scheduler().queue_stats();
        (self.kernel.stats(), queue)
    }

    /// Shared read access to the wrapped service.
    pub fn service(&self) -> &NpuService {
        &self.inner.service
    }

    /// Unwraps the service, discarding the kernel.
    pub fn into_inner(self) -> NpuService {
        self.inner.service
    }

    /// Re-arms the dispatch wake-up to the service's earliest deadline:
    /// cancels a stale event, keeps an accurate one, schedules a new
    /// one when the deadline moved (or first appeared).
    fn sync(&mut self) {
        let want = self.inner.service.next_dispatch_deadline();
        match (want, self.inner.armed) {
            (None, None) => {}
            (Some(at), Some(armed)) if armed.at == at => {}
            (None, Some(armed)) => {
                self.kernel.scheduler().cancel(armed.id);
                self.inner.armed = None;
            }
            (Some(at), prev) => {
                if let Some(armed) = prev {
                    self.kernel.scheduler().cancel(armed.id);
                }
                let id = self
                    .kernel
                    .scheduler()
                    .schedule(at, self.dispatcher, 0, DispatchDue);
                self.inner.armed = Some(Armed { id, at });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServeConfig;
    use hmc_types::SimDuration;
    use nn::Mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn service() -> NpuService {
        let mlp = Mlp::with_topology(6, 1, 8, 2, &mut StdRng::seed_from_u64(7));
        NpuService::new(&mlp, ServeConfig::default())
    }

    fn row(v: f32) -> Matrix {
        Matrix::from_rows(vec![vec![v; 6]])
    }

    /// A scripted run through the event host matches the same script
    /// against a directly-driven service, reply for reply.
    #[test]
    fn event_pumped_matches_direct() {
        let script: Vec<(u64, f32)> = (0..40).map(|i| (i * 13 % 220, i as f32 / 40.0)).collect();
        let mut times: Vec<u64> = script.iter().map(|&(t, _)| t).collect();
        times.sort_unstable();

        let mut direct = service();
        let mut direct_tickets = Vec::new();
        for &(t, v) in &script {
            direct_tickets.push(direct.submit(&row(v), SimTime::from_millis(t)));
        }
        direct.flush(SimTime::from_secs(2));

        let mut host = Evented::new(service());
        let mut host_tickets = Vec::new();
        for &(t, v) in &script {
            // Pump past intermediate deadlines to force event-driven
            // dispatch where the direct service dispatched lazily.
            host.pump(SimTime::from_millis(t.saturating_sub(1)));
            host_tickets.push(host.submit(&row(v), SimTime::from_millis(t)));
        }
        host.flush(SimTime::from_secs(2));

        for (a, b) in direct_tickets.into_iter().zip(host_tickets) {
            match (a, b) {
                (Ok(ta), Ok(tb)) => {
                    assert_eq!(direct.take_reply(ta), host.take_reply(tb));
                }
                (Err(ea), Err(eb)) => assert_eq!(ea, eb),
                (a, b) => panic!("divergent admission: {a:?} vs {b:?}"),
            }
        }
        assert_eq!(direct.stats(), host.stats());
    }

    /// The host keeps exactly one dispatch event armed and fires it at
    /// the batch deadline without any intervening submission.
    #[test]
    fn dispatch_fires_without_submissions() {
        let mut host = Evented::new(service());
        let ticket = host.submit(&row(0.25), SimTime::ZERO).unwrap();
        assert!(host.take_reply(ticket).is_none(), "dispatched too early");
        let deadline = host
            .service()
            .next_dispatch_deadline()
            .expect("queued request must arm a deadline");
        host.pump(deadline);
        assert!(
            host.take_reply(ticket).is_some(),
            "deadline event did not dispatch the batch"
        );
        let (kernel, queue) = host.kernel_stats();
        assert!(kernel.handler_invocations >= 1);
        assert_eq!(
            queue.scheduled,
            queue.executed + queue.cancelled + host_pending(&queue)
        );
    }

    fn host_pending(stats: &sim_core::QueueStats) -> u64 {
        stats.scheduled - stats.executed - stats.cancelled
    }

    /// Rescheduling: an earlier submission pulls the armed deadline in;
    /// the stale event is cancelled rather than double-fired.
    #[test]
    fn earlier_deadline_reschedules() {
        let mut host = Evented::new(service());
        let slow = host
            .submit_with(
                &row(0.5),
                SimTime::ZERO,
                SubmitOptions {
                    hold: SimDuration::from_millis(50),
                    ..SubmitOptions::default()
                },
            )
            .unwrap();
        let fast = host.submit(&row(0.75), SimTime::from_millis(1)).unwrap();
        host.pump(SimTime::from_secs(1));
        assert!(host.take_reply(fast).is_some());
        assert!(host.take_reply(slow).is_some());
        let (_, queue) = host.kernel_stats();
        assert!(queue.cancelled >= 1, "stale deadline was not cancelled");
    }
}

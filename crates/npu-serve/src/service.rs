//! The shared inference service: admission middleware, dynamic batcher
//! and virtual-time device pool.

use std::collections::HashMap;

use faults::{BreakerState, CircuitBreaker, FaultInjector, ServeFault};
use hmc_types::{SimDuration, SimTime};
use nn::{Matrix, Mlp};
use npu::{
    CacheStats, CpuInference, InferScratch, KernelMode, NpuDevice, NpuModel, Occupancy, PolicyCache,
};
use topil::{ClientJob, ClientReply, InferenceBackend};
use trace::{FaultKind, TraceBackend, TraceEvent};

use crate::config::ConfigError;
use crate::error::ServeError;
use crate::limiter::ClientId;
use crate::middleware::{self, Admission, AdmissionContext, AdmissionStack};
use crate::queue::QueuedRequest;
use crate::shed::Backlog;
use crate::stats::MetricsSnapshot;
use crate::{Rejected, ServeConfig, ServeStats, SubmissionQueue};

/// Handle of an admitted request; redeem it with
/// [`NpuService::take_reply`] (or [`NpuService::take_outcome`]) once the
/// service has advanced past the request's completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestTicket(u64);

/// Per-submission options of [`NpuService::submit_with`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SubmitOptions {
    /// Submitting client (rate-limit key and trace identity).
    pub client: ClientId,
    /// Absolute completion deadline. A reply after this instant is
    /// worthless: the service refuses infeasible deadlines at admission
    /// and fails queued requests fast once the deadline cannot be met,
    /// instead of computing-then-discarding.
    pub deadline: Option<SimTime>,
    /// How long after submission the payload becomes batchable (a
    /// slow-loris client holds its bytes back). Clamped to
    /// [`ServeConfig::max_hold`]; the request occupies a queue slot for
    /// the whole hold.
    pub hold: SimDuration,
}

/// One pooled device: its cost model, busy-horizon bookkeeping, and the
/// circuit breaker fencing it off after consecutive failures.
#[derive(Debug, Clone)]
struct DeviceLane {
    device: NpuDevice,
    occupancy: Occupancy,
    breaker: CircuitBreaker,
}

/// A dispatched batch whose output has not been computed yet. Scheduling
/// (device choice, timing, faults, breakers) happens at dispatch;
/// the numeric inference is deferred so the worker pool can compute many
/// batches in parallel.
#[derive(Debug, Clone)]
struct BatchPlan {
    requests: Vec<QueuedRequest>,
    /// Pool index of the serving device; `None` when the CPU served.
    device: Option<u8>,
    /// Device attempt `(latency, ok)`, when one was made.
    npu: Option<(SimDuration, bool)>,
    /// CPU-fallback latency, when the CPU (also) served the batch.
    fallback: Option<SimDuration>,
    completes_at: SimTime,
    breaker_opened: bool,
}

/// Counter values at the last metrics snapshot, for per-epoch deltas.
#[derive(Debug, Clone, Copy, Default)]
struct EpochMark {
    at: SimTime,
    admitted: u64,
    served: u64,
    shed: u64,
    expired: u64,
    attempts: u64,
    busy: SimDuration,
    cache_hits: u64,
    cache_misses: u64,
}

/// Outcome of probing the policy cache for one request group. Probes run
/// sequentially in dispatch order *before* the worker pool computes, so
/// hit/miss counters never depend on thread scheduling.
#[derive(Debug, Clone)]
enum GroupProbe {
    /// The quantized codes were resident: the output is replayed and the
    /// kernel is skipped for this group.
    Hit(Vec<f32>),
    /// The codes were absent: the worker computes from the prequantized
    /// input and the result is inserted afterwards.
    Miss { q: Vec<i8>, scale: f32 },
}

/// Cache probes of one batch plan; empty when the cache is disabled or
/// the plan runs on the CPU-fallback (float) path, which bypasses the
/// int8 cache entirely.
#[derive(Debug, Clone, Default)]
struct PlanProbe {
    groups: Vec<GroupProbe>,
}

/// The shared NPU inference service.
///
/// The service runs in **virtual time**: `submit`, `run_until` and
/// `flush` carry explicit [`SimTime`] stamps and the service's clock only
/// moves forward. Given the same submission schedule it produces the same
/// batches, latencies and outputs — and because multi-request batches are
/// executed with per-request quantization groups, every reply is
/// bit-identical to serving that request alone on a dedicated device.
///
/// Every submission runs through the admission middleware stack
/// (validation → deadline feasibility → per-client rate limit → load
/// shedding; see [`crate::middleware`]) before it may occupy a queue
/// slot. With a default [`ServeConfig`] every middleware feature is
/// disabled and admission control is queue capacity alone.
#[derive(Debug)]
pub struct NpuService {
    config: ServeConfig,
    /// The compiled int8 model every pooled device executes.
    model: NpuModel,
    /// Float model for the CPU fallback path (mirrors the dedicated
    /// client's fallback substrate).
    mlp: Mlp,
    /// Cost model of one pool device (the pool is homogeneous).
    device_model: NpuDevice,
    cpu: CpuInference,
    macs: usize,
    lanes: Vec<DeviceLane>,
    injector: Option<FaultInjector>,
    admission: AdmissionStack,
    queue: SubmissionQueue,
    /// Dispatched batches awaiting numeric computation.
    inflight: Vec<BatchPlan>,
    replies: HashMap<u64, ClientReply>,
    /// Terminal outcomes of requests that were admitted but failed fast
    /// (deadline passed before compute), by ticket id.
    failures: HashMap<u64, ServeError>,
    stats: ServeStats,
    events: Vec<TraceEvent>,
    mark: EpochMark,
    clock: SimTime,
    next_id: u64,
    /// Policy-output cache over quantized feature groups (`None` when
    /// [`ServeConfig::policy_cache`] is zero). Replays numeric outputs
    /// only; device timing and occupancy are charged as if computed.
    cache: Option<PolicyCache>,
}

impl NpuService {
    /// Compiles `mlp` for the pool and starts an idle service.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (see [`ServeConfig::validate`]);
    /// use [`NpuService::try_new`] to handle the error instead.
    pub fn new(mlp: &Mlp, config: ServeConfig) -> Self {
        match Self::try_new(mlp, config) {
            Ok(service) => service,
            Err(err) => panic!("invalid serve configuration: {err}"),
        }
    }

    /// Compiles `mlp` for the pool and starts an idle service, or returns
    /// which configuration invariant was violated.
    pub fn try_new(mlp: &Mlp, config: ServeConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let device_model = NpuDevice::kirin970();
        let lanes = (0..config.devices)
            .map(|_| DeviceLane {
                device: device_model,
                occupancy: Occupancy::new(),
                breaker: CircuitBreaker::new(config.breaker_threshold, config.breaker_cooldown),
            })
            .collect();
        Ok(NpuService {
            model: NpuModel::compile(mlp),
            mlp: mlp.clone(),
            device_model,
            cpu: CpuInference::cortex_a73(),
            macs: mlp.macs(),
            lanes,
            injector: None,
            admission: AdmissionStack::standard(&config),
            queue: SubmissionQueue::new(config.queue_capacity, config.retry_after),
            inflight: Vec::new(),
            replies: HashMap::new(),
            failures: HashMap::new(),
            stats: ServeStats::default(),
            events: Vec::new(),
            mark: EpochMark::default(),
            clock: SimTime::ZERO,
            next_id: 0,
            cache: (config.policy_cache > 0).then(|| PolicyCache::new(config.policy_cache)),
            config,
        })
    }

    /// Attaches a fault injector; its `serve` domain draws one fate per
    /// dispatched batch that reaches a device.
    pub fn with_fault_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The service's virtual clock.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Requests waiting in the submission queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Names of the admission middleware layers, in execution order.
    pub fn admission_layers(&self) -> Vec<&'static str> {
        self.admission.layer_names()
    }

    /// Circuit-breaker states of the pool, by device index.
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.lanes.iter().map(|l| l.breaker.state()).collect()
    }

    /// Total breaker openings across the pool.
    pub fn breaker_opens(&self) -> u64 {
        self.lanes.iter().map(|l| l.breaker.opens()).sum()
    }

    /// Whether every device is currently fenced off.
    pub fn all_breakers_open(&self) -> bool {
        self.lanes
            .iter()
            .all(|l| l.breaker.state() == BreakerState::Open)
    }

    /// Per-device busy time accumulated so far, by pool index.
    pub fn device_busy_times(&self) -> Vec<SimDuration> {
        self.lanes.iter().map(|l| l.occupancy.busy_time()).collect()
    }

    /// Counters of the policy-output cache, `None` when it is disabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Drains the trace events accumulated since the last drain, in
    /// emission order (`BatchDispatched`, `QueueSaturated`,
    /// `RequestAdmitted`, `RequestShed`, `DeadlineMiss`,
    /// `RetryScheduled`, and `Fault` for breaker transitions).
    pub fn drain_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Submits one request (`rows` feature rows, one board's epoch batch)
    /// at virtual time `now`, with default [`SubmitOptions`] (anonymous
    /// client, no completion deadline, no hold).
    ///
    /// Admission control rejects the request with a retry-after hint when
    /// the queue is at capacity or a shed watermark fires. An admitted
    /// request dispatches once `max_batch` requests wait or its
    /// `max_wait` deadline passes, whichever is first.
    ///
    /// # Panics
    ///
    /// Panics on an empty request or mismatched feature width (use
    /// [`NpuService::submit_with`] for a typed `InvalidInput` error
    /// instead).
    pub fn submit(&mut self, rows: &Matrix, now: SimTime) -> Result<RequestTicket, Rejected> {
        assert!(rows.rows() > 0, "empty request");
        assert_eq!(rows.cols(), self.model.input_size(), "input width mismatch");
        self.submit_with(rows, now, SubmitOptions::default())
            .map_err(|err| Rejected {
                retry_after: err.retry_after().unwrap_or(self.config.retry_after),
                depth: self.queue.len(),
            })
    }

    /// Submits one request with explicit [`SubmitOptions`] at virtual
    /// time `now`.
    ///
    /// The submission runs through the admission middleware stack; on
    /// failure the typed [`ServeError`] reports whether a retry can
    /// succeed ([`ServeError::retry_class`]) and how long to back off
    /// ([`ServeError::retry_after`]).
    ///
    /// # Errors
    ///
    /// * [`ServeError::InvalidInput`] — empty request or feature-width
    ///   mismatch (terminal),
    /// * [`ServeError::DeadlineExceeded`] — the deadline cannot be met
    ///   even by the earliest possible completion (terminal),
    /// * [`ServeError::RateLimited`] — the client's token bucket is empty
    ///   (retryable),
    /// * [`ServeError::Shed`] — a shed watermark fired or the queue is at
    ///   capacity (retryable).
    pub fn submit_with(
        &mut self,
        rows: &Matrix,
        now: SimTime,
        opts: SubmitOptions,
    ) -> Result<RequestTicket, ServeError> {
        let now = self.clock.max(now);
        // Fire deadlines that elapsed before this arrival.
        self.run_until(now);
        let ready_at = now + opts.hold.min(self.config.max_hold);
        let backlog = self.backlog(now);
        let ctx = AdmissionContext {
            config: &self.config,
            now,
            client: opts.client,
            deadline: opts.deadline,
            ready_at,
            rows: rows.rows(),
            cols: rows.cols(),
            expected_cols: self.model.input_size(),
            backlog,
        };
        let admission = match self.admission.admit(&ctx) {
            Ok(admission) => admission,
            Err(err) => {
                self.note_admission_failure(&err, now, opts.client);
                return Err(err);
            }
        };

        let id = self.next_id;
        let request = QueuedRequest {
            id,
            client: opts.client,
            rows: rows.clone(),
            submitted_at: now,
            ready_at,
            dispatch_deadline: ready_at + self.config.max_wait,
            deadline: opts.deadline,
            route_cpu: admission == Admission::DegradeCpu,
        };
        match self.queue.try_push(request) {
            Err(rejected) => {
                self.stats.rejected += 1;
                self.events.push(TraceEvent::QueueSaturated {
                    at: now,
                    depth: rejected.depth as u32,
                    retry_after: rejected.retry_after,
                });
                Err(middleware::queue_full_error(
                    rejected.depth,
                    rejected.retry_after,
                ))
            }
            Ok(()) => {
                self.next_id += 1;
                self.stats.submitted += 1;
                if admission == Admission::DegradeCpu {
                    self.stats.degraded += 1;
                }
                self.events.push(TraceEvent::RequestAdmitted {
                    at: now,
                    request: id,
                    client: opts.client.value(),
                    depth: self.queue.len() as u32,
                });
                while self.queue.ready_len(now) >= self.config.max_batch {
                    self.dispatch_one(now);
                }
                Ok(RequestTicket(id))
            }
        }
    }

    /// The earliest batch-dispatch deadline among queued requests —
    /// the next instant at which [`NpuService::run_until`] would do
    /// work. Event-driven hosts ([`crate::Evented`]) schedule their
    /// wake-up here and reschedule whenever a submission changes it.
    pub fn next_dispatch_deadline(&self) -> Option<SimTime> {
        self.queue.next_deadline()
    }

    /// Advances virtual time to `now`, dispatching every batch whose
    /// `max_wait` deadline falls at or before it.
    pub fn run_until(&mut self, now: SimTime) {
        loop {
            let next = match self.queue.next_deadline() {
                Some(deadline) if deadline <= now => deadline,
                _ => break,
            };
            let at = self.clock.max(next);
            self.clock = at;
            self.dispatch_one(at);
        }
        self.clock = self.clock.max(now);
    }

    /// Advances to `now` and force-dispatches everything still pending
    /// (end of an epoch or shutdown): afterwards every admitted request
    /// has an outcome — a reply, or a fail-fast deadline error.
    pub fn flush(&mut self, now: SimTime) {
        self.run_until(now);
        while !self.queue.is_empty() {
            let at = self.clock;
            if !self.dispatch_one(at) {
                // Everything left is held back (slow-loris); jump the
                // clock to the earliest readiness instead of spinning.
                match self.queue.earliest_ready() {
                    Some(ready) => self.clock = self.clock.max(ready),
                    None => break,
                }
            }
        }
        self.drain_compute();
    }

    /// Redeems a ticket. Returns `None` while the request is still
    /// pending (advance the clock past its deadline, or `flush`) — and
    /// also for requests that failed fast on their deadline; use
    /// [`NpuService::take_outcome`] to observe those.
    pub fn take_reply(&mut self, ticket: RequestTicket) -> Option<ClientReply> {
        self.drain_compute();
        self.replies.remove(&ticket.0)
    }

    /// Redeems a ticket as a typed outcome: `Ok` with the reply, or `Err`
    /// with the terminal error of a request that failed fast (deadline
    /// passed while queued). Returns `None` while the request is still
    /// pending.
    pub fn take_outcome(
        &mut self,
        ticket: RequestTicket,
    ) -> Option<Result<ClientReply, ServeError>> {
        self.drain_compute();
        if let Some(reply) = self.replies.remove(&ticket.0) {
            return Some(Ok(reply));
        }
        self.failures.remove(&ticket.0).map(Err)
    }

    /// Records a client-side retry decision (for trace and statistics):
    /// `attempt` is 1-based, `backoff` the jittered wait before the
    /// resubmission.
    pub fn record_retry(
        &mut self,
        client: ClientId,
        attempt: u32,
        backoff: SimDuration,
        at: SimTime,
    ) {
        self.stats.retries += 1;
        self.events.push(TraceEvent::RetryScheduled {
            at: self.clock.max(at),
            client: client.value(),
            attempt,
            backoff,
        });
    }

    /// Cuts a per-epoch metrics snapshot at `now`: pool utilization,
    /// queue depth, shed rate and p99 queue wait since the previous
    /// snapshot (or service start). Counters in the snapshot are deltas
    /// over that window.
    pub fn epoch_metrics(&mut self, now: SimTime) -> MetricsSnapshot {
        let now = self.clock.max(now);
        let busy: SimDuration = self.lanes.iter().map(|l| l.occupancy.busy_time()).sum();
        let shed_total = self.stats.shed + self.stats.rejected + self.stats.rate_limited;
        let attempts = self.stats.submitted + shed_total;
        let window = now.since(self.mark.at).as_secs_f64() * self.lanes.len() as f64;
        let utilization = if window > 0.0 {
            ((busy - self.mark.busy).as_secs_f64() / window).max(0.0)
        } else {
            0.0
        };
        let attempts_delta = attempts - self.mark.attempts;
        let shed_delta = shed_total - self.mark.shed;
        let snapshot = MetricsSnapshot {
            from: self.mark.at,
            to: now,
            queue_depth: self.queue.len(),
            utilization,
            shed_rate: if attempts_delta > 0 {
                shed_delta as f64 / attempts_delta as f64
            } else {
                0.0
            },
            p99_queue_wait: self.stats.queue_wait_percentile(0.99),
            admitted: self.stats.submitted - self.mark.admitted,
            served: self.stats.served - self.mark.served,
            shed: shed_delta,
            expired: self.stats.expired - self.mark.expired,
            cache_hits: self.stats.cache_hits - self.mark.cache_hits,
            cache_misses: self.stats.cache_misses - self.mark.cache_misses,
        };
        if let Some(cache) = &self.cache {
            self.events.push(TraceEvent::CacheReport {
                at: now,
                hits: snapshot.cache_hits,
                misses: snapshot.cache_misses,
                entries: cache.len() as u64,
            });
        }
        self.mark = EpochMark {
            at: now,
            admitted: self.stats.submitted,
            served: self.stats.served,
            shed: shed_total,
            expired: self.stats.expired,
            attempts,
            busy,
            cache_hits: self.stats.cache_hits,
            cache_misses: self.stats.cache_misses,
        };
        snapshot
    }

    /// Snapshot of the backlog for admission decisions at `at`.
    fn backlog(&self, at: SimTime) -> Backlog {
        let healthy = self
            .lanes
            .iter()
            .filter(|l| l.breaker.state() != BreakerState::Open)
            .count();
        let earliest_free = self
            .lanes
            .iter()
            .filter(|l| l.breaker.state() != BreakerState::Open)
            .map(|l| l.occupancy.next_start(at).since(at))
            .min()
            .unwrap_or(SimDuration::ZERO);
        let batch_latency = if healthy > 0 {
            self.device_model
                .inference_latency(&self.model, self.config.max_batch)
        } else {
            self.cpu.latency(self.macs, self.config.max_batch)
        };
        Backlog {
            depth: self.queue.len(),
            healthy_devices: healthy,
            earliest_free,
            batch_latency,
        }
    }

    /// Translates an admission failure into statistics and trace events.
    fn note_admission_failure(&mut self, err: &ServeError, now: SimTime, client: ClientId) {
        match *err {
            ServeError::DeadlineExceeded {
                deadline, late_by, ..
            } => {
                self.events.push(TraceEvent::DeadlineMiss {
                    at: now,
                    request: u64::MAX,
                    client: client.value(),
                    deadline,
                    late_by,
                });
            }
            ServeError::RateLimited { retry_after, .. } => {
                self.stats.rate_limited += 1;
                self.events.push(TraceEvent::RequestShed {
                    at: now,
                    client: client.value(),
                    reason: trace::ShedReason::RateLimited,
                    depth: self.queue.len() as u32,
                    retry_after,
                });
            }
            ServeError::Shed {
                reason,
                depth,
                retry_after,
            } => {
                self.stats.shed += 1;
                self.events.push(TraceEvent::RequestShed {
                    at: now,
                    client: client.value(),
                    reason,
                    depth: depth as u32,
                    retry_after,
                });
            }
            ServeError::InvalidInput { .. } => {}
        }
    }

    /// Forms one batch from the most urgent ready requests and schedules
    /// it on the pool. Returns whether any progress was made (a batch
    /// dispatched or expired requests failed fast); `false` means every
    /// pending request is still held back.
    fn dispatch_one(&mut self, at: SimTime) -> bool {
        let mut progress = self.fail_expired(at);
        let taken = self.queue.take_ready(self.config.max_batch, at);
        if taken.is_empty() {
            return progress;
        }
        progress = true;
        for request in &taken {
            self.stats.record_queue_wait(at.since(request.submitted_at));
        }
        self.advance_breakers(at);

        // Graceful-degrade members bypass the pool entirely.
        let (degraded, pooled): (Vec<_>, Vec<_>) = taken.into_iter().partition(|r| r.route_cpu);
        if !degraded.is_empty() {
            self.dispatch_cpu(degraded, at);
        }
        if pooled.is_empty() {
            return progress;
        }

        // Earliest-free healthy device; ties go to the lowest index.
        let lane_idx = self
            .lanes
            .iter()
            .enumerate()
            .filter(|(_, l)| l.breaker.state() != BreakerState::Open)
            .min_by_key(|(i, l)| (l.occupancy.next_start(at), *i))
            .map(|(i, _)| i);
        match lane_idx {
            None => {
                // Every device fenced off: serve the batch on the host
                // CPU so no request is dropped.
                self.dispatch_cpu(pooled, at);
            }
            Some(i) => {
                let fault = match &mut self.injector {
                    Some(injector) => injector.serve_batch(),
                    None => ServeFault::None,
                };
                self.dispatch_npu(pooled, i, fault, at);
            }
        }
        progress
    }

    /// Advances open breakers' cooldowns one step per dispatch, tracing
    /// half-open transitions.
    fn advance_breakers(&mut self, at: SimTime) {
        for lane in &mut self.lanes {
            if lane.breaker.state() == BreakerState::Open && lane.breaker.epoch_elapsed() {
                self.events.push(TraceEvent::Fault {
                    at,
                    kind: FaultKind::BreakerHalfOpen,
                });
            }
        }
    }

    /// Schedules a batch on pool device `lane` with the drawn `fault`.
    fn dispatch_npu(
        &mut self,
        requests: Vec<QueuedRequest>,
        lane: usize,
        fault: ServeFault,
        at: SimTime,
    ) {
        // Feasibility uses the batch's TRUE completion — device start,
        // fault-stretched latency, and the CPU re-serve after a failure —
        // so an admitted-and-served request can never miss its deadline,
        // even under a fault storm.
        let start = self.lanes[lane].occupancy.next_start(at);
        let rows: usize = requests.iter().map(|r| r.rows.rows()).sum();
        let estimate =
            start + self.npu_latency(lane, rows, fault) + self.failure_reserve(rows, fault);
        let requests = self.fail_infeasible(requests, estimate, at);
        if requests.is_empty() {
            return;
        }
        let rows: usize = requests.iter().map(|r| r.rows.rows()).sum();
        let latency = self.npu_latency(lane, rows, fault);
        let cpu_latency = self.cpu.latency(self.macs, rows);

        let lane_ref = &mut self.lanes[lane];
        let (_start, end) = lane_ref.occupancy.reserve(at, latency);
        let plan = if matches!(fault, ServeFault::Failure) {
            // The device burned its reservation, the breaker records the
            // failure, and the CPU re-serves the batch afterwards.
            let opens_before = lane_ref.breaker.opens();
            lane_ref.breaker.record_failure();
            let breaker_opened = lane_ref.breaker.opens() > opens_before;
            if breaker_opened {
                self.events.push(TraceEvent::Fault {
                    at,
                    kind: FaultKind::BreakerOpen,
                });
            }
            self.stats.failed_batches += 1;
            self.stats.cpu_fallback_batches += 1;
            BatchPlan {
                requests,
                device: Some(lane as u8),
                npu: Some((latency, false)),
                fallback: Some(cpu_latency),
                completes_at: end + cpu_latency,
                breaker_opened,
            }
        } else {
            let was_half_open = lane_ref.breaker.state() == BreakerState::HalfOpen;
            lane_ref.breaker.record_success();
            if was_half_open {
                self.events.push(TraceEvent::Fault {
                    at,
                    kind: FaultKind::BreakerClosed,
                });
            }
            BatchPlan {
                requests,
                device: Some(lane as u8),
                npu: Some((latency, true)),
                fallback: None,
                completes_at: end,
                breaker_opened: false,
            }
        };
        self.finish_plan(plan, at, rows);
    }

    /// Schedules a batch directly on the host CPU (graceful degrade, or
    /// every breaker open).
    fn dispatch_cpu(&mut self, requests: Vec<QueuedRequest>, at: SimTime) {
        let rows: usize = requests.iter().map(|r| r.rows.rows()).sum();
        let estimate = at + self.cpu.latency(self.macs, rows);
        let requests = self.fail_infeasible(requests, estimate, at);
        if requests.is_empty() {
            return;
        }
        let rows: usize = requests.iter().map(|r| r.rows.rows()).sum();
        let cpu_latency = self.cpu.latency(self.macs, rows);
        self.stats.cpu_fallback_batches += 1;
        let plan = BatchPlan {
            requests,
            device: None,
            npu: None,
            fallback: Some(cpu_latency),
            completes_at: at + cpu_latency,
            breaker_opened: false,
        };
        self.finish_plan(plan, at, rows);
    }

    /// Device latency for `rows` on `lane`, with the fault's slowdown
    /// applied.
    fn npu_latency(&self, lane: usize, rows: usize, fault: ServeFault) -> SimDuration {
        let base = self.lanes[lane].device.inference_latency(&self.model, rows);
        match fault {
            ServeFault::Slowdown(factor) => SimDuration::from_secs_f64(base.as_secs_f64() * factor),
            _ => base,
        }
    }

    /// The CPU re-serve time appended to a batch's completion when its
    /// device attempt fails.
    fn failure_reserve(&self, rows: usize, fault: ServeFault) -> SimDuration {
        if matches!(fault, ServeFault::Failure) {
            self.cpu.latency(self.macs, rows)
        } else {
            SimDuration::ZERO
        }
    }

    /// Drops every member whose absolute deadline precedes the batch's
    /// completion estimate, failing it fast with a typed error, and
    /// returns the survivors.
    fn fail_infeasible(
        &mut self,
        requests: Vec<QueuedRequest>,
        completes_at: SimTime,
        at: SimTime,
    ) -> Vec<QueuedRequest> {
        let mut kept = Vec::with_capacity(requests.len());
        for request in requests {
            match request.deadline {
                Some(deadline) if deadline < completes_at => {
                    self.fail_deadline(request, at, completes_at);
                }
                _ => kept.push(request),
            }
        }
        kept
    }

    /// Fails every queued request whose deadline has already passed.
    /// Returns whether any expired.
    fn fail_expired(&mut self, at: SimTime) -> bool {
        let expired = self.queue.take_expired(at);
        let any = !expired.is_empty();
        for request in expired {
            self.fail_deadline(request, at, at);
        }
        any
    }

    /// Records the fail-fast outcome of one deadline-doomed request.
    fn fail_deadline(&mut self, request: QueuedRequest, at: SimTime, completes_at: SimTime) {
        let deadline = request
            .deadline
            .expect("deadline-failed request carries a deadline");
        let late_by = completes_at.since(deadline);
        self.stats.expired += 1;
        self.events.push(TraceEvent::DeadlineMiss {
            at,
            request: request.id,
            client: request.client.value(),
            deadline,
            late_by,
        });
        self.failures.insert(
            request.id,
            ServeError::DeadlineExceeded {
                deadline,
                at,
                late_by,
            },
        );
    }

    /// Accounts and traces a planned batch.
    fn finish_plan(&mut self, plan: BatchPlan, at: SimTime, rows: usize) {
        self.stats.record_batch(plan.requests.len(), rows);
        self.events.push(TraceEvent::BatchDispatched {
            at,
            device: plan.device,
            requests: plan.requests.len() as u32,
            rows: rows as u32,
            latency: plan.completes_at.since(at),
        });
        self.inflight.push(plan);
    }

    /// Computes every in-flight batch on the worker pool and files the
    /// per-request replies. Join order is dispatch order, so results are
    /// deterministic regardless of worker interleaving; cache probes and
    /// inserts are sequential passes around the parallel compute, so the
    /// hit/miss counters are also schedule-independent.
    fn drain_compute(&mut self) {
        if self.inflight.is_empty() {
            return;
        }
        let plans = std::mem::take(&mut self.inflight);
        let probes: Vec<PlanProbe> = {
            let model = &self.model;
            match self.cache.as_mut() {
                Some(cache) => plans.iter().map(|p| probe_plan(model, cache, p)).collect(),
                None => plans.iter().map(|_| PlanProbe::default()).collect(),
            }
        };
        let outputs = compute_outputs(
            &self.model,
            &self.mlp,
            &plans,
            &probes,
            self.config.kernel,
            self.config.workers,
        );
        for ((plan, probe), output) in plans.into_iter().zip(probes).zip(outputs) {
            self.absorb_probe(&plan, probe, &output);
            self.file_replies(plan, output);
        }
    }

    /// Counts this plan's probes and inserts the freshly computed miss
    /// outputs, in dispatch order.
    fn absorb_probe(&mut self, plan: &BatchPlan, probe: PlanProbe, output: &Matrix) {
        if probe.groups.is_empty() {
            return;
        }
        let cache = self.cache.as_mut().expect("probed plans imply a cache");
        let cols = output.cols();
        let mut start_row = 0usize;
        for (request, group) in plan.requests.iter().zip(probe.groups) {
            let n = request.rows.rows();
            match group {
                GroupProbe::Hit(_) => self.stats.cache_hits += 1,
                GroupProbe::Miss { q, scale } => {
                    self.stats.cache_misses += 1;
                    let out = &output.as_slice()[start_row * cols..(start_row + n) * cols];
                    cache.insert(&q, scale, n, out);
                }
            }
            start_row += n;
        }
    }

    /// Splits a batch output back into per-request replies.
    fn file_replies(&mut self, plan: BatchPlan, output: Matrix) {
        let total_rows: usize = plan.requests.iter().map(|r| r.rows.rows()).sum();
        let mut jobs = Vec::new();
        if let Some((latency, ok)) = plan.npu {
            jobs.push(ClientJob {
                batch: total_rows as u32,
                latency,
                backend: TraceBackend::Npu,
                ok,
            });
        }
        if let Some(cpu_latency) = plan.fallback {
            jobs.push(ClientJob {
                batch: total_rows as u32,
                latency: cpu_latency,
                backend: TraceBackend::Cpu,
                ok: true,
            });
        }
        let backend = if plan.fallback.is_some() {
            InferenceBackend::Cpu
        } else {
            InferenceBackend::Npu
        };
        let npu_failures = u32::from(matches!(plan.npu, Some((_, false))));
        let cols = output.cols();
        let mut start_row = 0usize;
        for request in &plan.requests {
            let n = request.rows.rows();
            let flat = output.as_slice()[start_row * cols..(start_row + n) * cols].to_vec();
            start_row += n;
            let latency = plan.completes_at.since(request.submitted_at);
            // Safety net behind the fail-fast pipeline: a reply delivered
            // past its deadline is a deadline miss. The feasibility checks
            // exist to keep this counter at zero.
            if request.deadline.is_some_and(|d| plan.completes_at > d) {
                self.stats.deadline_misses += 1;
            }
            self.stats.record_reply(latency);
            self.replies.insert(
                request.id,
                ClientReply {
                    output: Some(Matrix::from_flat(n, cols, flat)),
                    latency,
                    // The board pays the driver marshalling for its own
                    // rows; the batched device time is the service's.
                    cpu_time: self.device_model.host_cpu_time(n),
                    backend,
                    npu_failures,
                    fallback_active: plan.fallback.is_some(),
                    jobs: jobs.clone(),
                    breaker_opened: plan.breaker_opened,
                },
            );
        }
    }
}

/// Quantizes every group of `plan` and probes the cache sequentially, in
/// dispatch order. CPU-fallback plans use the float path and bypass the
/// int8 cache (empty probe).
fn probe_plan(model: &NpuModel, cache: &mut PolicyCache, plan: &BatchPlan) -> PlanProbe {
    if plan.fallback.is_some() {
        return PlanProbe::default();
    }
    let mut q = Vec::new();
    let groups = plan
        .requests
        .iter()
        .map(|request| {
            let rows = request.rows.rows();
            let scale = model.quantize_input(request.rows.as_slice(), &mut q);
            match cache.probe(&q, scale, rows) {
                Some(out) => GroupProbe::Hit(out.to_vec()),
                None => GroupProbe::Miss {
                    q: std::mem::take(&mut q),
                    scale,
                },
            }
        })
        .collect();
    PlanProbe { groups }
}

/// Runs the numeric inference for `plans` on a pool of std worker
/// threads. Plan `i` is handled by worker `i % workers`; results are
/// re-assembled by index, so the output order never depends on thread
/// scheduling. Each worker reuses one [`InferScratch`] across its plans.
fn compute_outputs(
    model: &NpuModel,
    mlp: &Mlp,
    plans: &[BatchPlan],
    probes: &[PlanProbe],
    kernel: KernelMode,
    workers: usize,
) -> Vec<Matrix> {
    let n = plans.len();
    let workers = workers.min(n).max(1);
    let mut outputs: Vec<Option<Matrix>> = vec![None; n];
    if workers == 1 {
        let mut scratch = InferScratch::new();
        for ((slot, plan), probe) in outputs.iter_mut().zip(plans).zip(probes) {
            *slot = Some(run_plan(model, mlp, plan, probe, kernel, &mut scratch));
        }
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut scratch = InferScratch::new();
                        plans
                            .iter()
                            .zip(probes)
                            .enumerate()
                            .skip(w)
                            .step_by(workers)
                            .map(|(i, (plan, probe))| {
                                (i, run_plan(model, mlp, plan, probe, kernel, &mut scratch))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (i, output) in handle.join().expect("serve worker panicked") {
                    outputs[i] = Some(output);
                }
            }
        });
    }
    outputs
        .into_iter()
        .map(|o| o.expect("every plan computed"))
        .collect()
}

/// Executes one batch: int8 grouped inference on the NPU path (one
/// quantization group per request, bit-identical to dedicated issuance),
/// float inference on the CPU-fallback path (mirroring the dedicated
/// client's fallback substrate). With a non-empty probe, cache hits are
/// replayed and only misses run the kernel — from prequantized codes, so
/// quantization is never done twice.
fn run_plan(
    model: &NpuModel,
    mlp: &Mlp,
    plan: &BatchPlan,
    probe: &PlanProbe,
    kernel: KernelMode,
    scratch: &mut InferScratch,
) -> Matrix {
    let cols = plan.requests[0].rows.cols();
    let total_rows: usize = plan.requests.iter().map(|r| r.rows.rows()).sum();
    if plan.fallback.is_some() {
        let mut flat = Vec::with_capacity(total_rows * cols);
        for request in &plan.requests {
            flat.extend_from_slice(request.rows.as_slice());
        }
        return mlp.forward_batch(&Matrix::from_flat(total_rows, cols, flat));
    }
    if probe.groups.is_empty() {
        let mut flat = Vec::with_capacity(total_rows * cols);
        for request in &plan.requests {
            flat.extend_from_slice(request.rows.as_slice());
        }
        let stacked = Matrix::from_flat(total_rows, cols, flat);
        let groups: Vec<usize> = plan.requests.iter().map(|r| r.rows.rows()).collect();
        return model.infer_grouped_with(&stacked, &groups, kernel);
    }
    let out_cols = model.output_size();
    let mut flat = Vec::with_capacity(total_rows * out_cols);
    for (request, group) in plan.requests.iter().zip(&probe.groups) {
        match group {
            GroupProbe::Hit(out) => flat.extend_from_slice(out),
            GroupProbe::Miss { q, scale } => {
                let rows = request.rows.rows();
                flat.extend_from_slice(model.infer_prequant(q, *scale, rows, kernel, scratch));
            }
        }
    }
    Matrix::from_flat(total_rows, out_cols, flat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limiter::RateLimit;
    use faults::FaultPlan;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp() -> Mlp {
        Mlp::with_topology(21, 4, 64, 8, &mut StdRng::seed_from_u64(3))
    }

    fn request(seed: usize, rows: usize) -> Matrix {
        Matrix::from_rows(
            (0..rows)
                .map(|r| {
                    (0..21)
                        .map(|c| ((seed * 31 + r * 7 + c * 3) % 17) as f32 / 17.0 - 0.5)
                        .collect()
                })
                .collect(),
        )
    }

    fn ms(t: u64) -> SimTime {
        SimTime::from_millis(t)
    }

    #[test]
    fn deadline_coalesces_waiting_requests_into_one_batch() {
        let net = mlp();
        let mut service = NpuService::new(&net, ServeConfig::default());
        let tickets: Vec<_> = (0..4)
            .map(|i| service.submit(&request(i, 2), ms(10)).unwrap())
            .collect();
        // Nothing dispatched before the oldest deadline.
        assert_eq!(service.stats().batches, 0);
        service.run_until(ms(13)); // max_wait = 2 ms
        assert_eq!(service.stats().batches, 1);
        assert_eq!(service.stats().batch_histogram()[4], 1);
        for t in tickets {
            let reply = service.take_reply(t).unwrap();
            assert_eq!(reply.output.unwrap().rows(), 2);
            assert!(!reply.fallback_active);
        }
        assert_eq!(service.stats().dropped(), 0);
    }

    #[test]
    fn full_batch_dispatches_immediately() {
        let net = mlp();
        let config = ServeConfig {
            max_batch: 3,
            ..ServeConfig::default()
        };
        let mut service = NpuService::new(&net, config);
        for i in 0..3 {
            service.submit(&request(i, 1), ms(5)).unwrap();
        }
        // The third submission filled the batch: dispatched at 5 ms, not
        // at the 7 ms deadline.
        assert_eq!(service.stats().batches, 1);
        let events = service.drain_events();
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::BatchDispatched {
                at,
                requests: 3,
                rows: 3,
                ..
            } if *at == ms(5)
        )));
    }

    #[test]
    fn admission_control_rejects_and_recovers() {
        let net = mlp();
        let config = ServeConfig {
            queue_capacity: 2,
            max_batch: 16,
            ..ServeConfig::default()
        };
        let mut service = NpuService::new(&net, config);
        service.submit(&request(0, 1), ms(1)).unwrap();
        service.submit(&request(1, 1), ms(1)).unwrap();
        let rejected = service.submit(&request(2, 1), ms(1)).unwrap_err();
        assert_eq!(rejected.retry_after, config.retry_after);
        assert_eq!(rejected.depth, 2);
        assert_eq!(service.stats().rejected, 1);
        let events = service.drain_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::QueueSaturated { depth: 2, .. })));
        // After the deadline drains the queue, the retry is admitted.
        let t = service.submit(&request(2, 1), ms(4)).unwrap();
        service.flush(ms(10));
        assert!(service.take_reply(t).unwrap().output.is_some());
        assert_eq!(service.stats().dropped(), 0);
    }

    #[test]
    fn batched_replies_bit_identical_to_dedicated_inference() {
        let net = mlp();
        let compiled = NpuModel::compile(&net);
        let mut service = NpuService::new(&net, ServeConfig::default());
        let requests: Vec<Matrix> = (0..5).map(|i| request(i, 1 + i % 3)).collect();
        let tickets: Vec<_> = requests
            .iter()
            .map(|r| service.submit(r, ms(2)).unwrap())
            .collect();
        service.flush(ms(100));
        assert!(service.stats().batches < 5, "requests must coalesce");
        for (r, t) in requests.iter().zip(tickets) {
            let reply = service.take_reply(t).unwrap();
            // Same bits as a dedicated device serving this request alone.
            assert_eq!(reply.output.unwrap(), compiled.infer(r));
        }
    }

    #[test]
    fn occupancy_queues_batches_behind_busy_devices() {
        let net = mlp();
        let config = ServeConfig {
            devices: 1,
            max_batch: 1,
            ..ServeConfig::default()
        };
        let mut service = NpuService::new(&net, config);
        // Three single-request batches dispatched back to back on one
        // device: each completion is pushed behind the previous one.
        let tickets: Vec<_> = (0..3)
            .map(|i| service.submit(&request(i, 1), ms(1)).unwrap())
            .collect();
        service.flush(ms(1));
        let latencies: Vec<_> = tickets
            .into_iter()
            .map(|t| service.take_reply(t).unwrap().latency)
            .collect();
        assert!(latencies[1] > latencies[0]);
        assert!(latencies[2] > latencies[1]);
        assert_eq!(service.device_busy_times().len(), 1);
        assert!(service.device_busy_times()[0] >= latencies[0] * 2);
    }

    #[test]
    fn device_failures_open_breaker_and_drain_to_cpu() {
        let net = mlp();
        let mut plan = FaultPlan::none(11);
        plan.serve.failure_rate = 1.0;
        let config = ServeConfig {
            devices: 2,
            max_batch: 1,
            breaker_threshold: 2,
            breaker_cooldown: 50,
            ..ServeConfig::default()
        };
        let mut service =
            NpuService::new(&net, config).with_fault_injector(FaultInjector::new(plan));
        let mut replies = Vec::new();
        for i in 0..8 {
            let t = service.submit(&request(i, 1), ms(i as u64)).unwrap();
            service.flush(ms(i as u64));
            replies.push(service.take_reply(t).unwrap());
        }
        // Two failures per device open both breakers...
        assert!(service.all_breakers_open());
        assert_eq!(service.breaker_opens(), 2);
        // ...and each opening is a drained trace event.
        let events = service.drain_events();
        let opens = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Fault {
                        kind: FaultKind::BreakerOpen,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(opens, 2);
        // ...yet every request was answered (failed batches re-served on
        // the CPU, later ones drained directly to the fallback).
        assert_eq!(service.stats().dropped(), 0);
        assert!(replies.iter().all(|r| r.output.is_some()));
        assert!(replies.iter().all(|r| r.fallback_active));
        let last = replies.last().unwrap();
        // Once fenced off, no device attempt is made at all.
        assert_eq!(last.npu_failures, 0);
        assert_eq!(last.jobs.len(), 1);
        assert_eq!(last.jobs[0].backend, TraceBackend::Cpu);
    }

    #[test]
    fn slowdown_faults_stretch_batch_latency() {
        let net = mlp();
        let mut plan = FaultPlan::none(13);
        plan.serve.slowdown_rate = 1.0;
        plan.serve.slowdown_factor = 10.0;
        let config = ServeConfig {
            max_batch: 1,
            ..ServeConfig::default()
        };
        let mut clean = NpuService::new(&net, config);
        let mut slowed =
            NpuService::new(&net, config).with_fault_injector(FaultInjector::new(plan));
        let tc = clean.submit(&request(0, 2), ms(1)).unwrap();
        let ts = slowed.submit(&request(0, 2), ms(1)).unwrap();
        clean.flush(ms(1));
        slowed.flush(ms(1));
        let fast = clean.take_reply(tc).unwrap();
        let slow = slowed.take_reply(ts).unwrap();
        assert_eq!(fast.output, slow.output, "slowdown must not corrupt data");
        let ratio = slow.latency.as_secs_f64() / fast.latency.as_secs_f64();
        assert!((9.0..11.0).contains(&ratio), "latency ratio {ratio}");
    }

    #[test]
    fn virtual_clock_is_monotone_across_out_of_order_submits() {
        let net = mlp();
        let mut service = NpuService::new(&net, ServeConfig::default());
        service.submit(&request(0, 1), ms(10)).unwrap();
        // An earlier stamp is clamped to the service clock, never
        // rewinding it.
        service.submit(&request(1, 1), ms(5)).unwrap();
        assert_eq!(service.now(), ms(10));
        service.flush(ms(20));
        assert_eq!(service.stats().dropped(), 0);
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let net = mlp();
        let config = ServeConfig {
            devices: 0,
            ..ServeConfig::default()
        };
        assert_eq!(
            NpuService::try_new(&net, config).err(),
            Some(ConfigError::ZeroDevices)
        );
    }

    #[test]
    fn infeasible_deadline_is_refused_at_admission() {
        let net = mlp();
        let mut service = NpuService::new(&net, ServeConfig::default());
        let opts = SubmitOptions {
            deadline: Some(ms(11)), // margin is 4 ms; 10 + 4 > 11
            ..SubmitOptions::default()
        };
        let err = service
            .submit_with(&request(0, 1), ms(10), opts)
            .unwrap_err();
        assert!(matches!(err, ServeError::DeadlineExceeded { .. }));
        assert_eq!(service.stats().submitted, 0);
        let events = service.drain_events();
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::DeadlineMiss {
                request: u64::MAX,
                ..
            }
        )));
    }

    #[test]
    fn admitted_deadlines_are_met_or_failed_fast_never_served_late() {
        let net = mlp();
        let config = ServeConfig {
            devices: 1,
            max_batch: 4,
            ..ServeConfig::default()
        };
        let mut service = NpuService::new(&net, config);
        // Saturate the single device so completions pile up, with tight
        // (but admissible) deadlines.
        let tickets: Vec<_> = (0..12)
            .map(|i| {
                let opts = SubmitOptions {
                    client: ClientId::new(i as u64),
                    deadline: Some(ms(10)),
                    ..SubmitOptions::default()
                };
                service.submit_with(&request(i, 4), ms(1), opts).unwrap()
            })
            .collect();
        service.flush(ms(200));
        let mut served = 0u64;
        let mut expired = 0u64;
        for t in tickets {
            match service.take_outcome(t).unwrap() {
                Ok(reply) => {
                    served += 1;
                    assert!(reply.output.is_some());
                }
                Err(ServeError::DeadlineExceeded { .. }) => expired += 1,
                Err(other) => panic!("unexpected terminal error: {other}"),
            }
        }
        assert_eq!(served + expired, 12);
        assert!(expired > 0, "the backlog must doom some deadlines");
        assert!(served > 0, "the earliest batches must meet theirs");
        // The invariant the whole pipeline exists for:
        assert_eq!(service.stats().deadline_misses, 0);
        assert_eq!(service.stats().expired, expired);
        assert_eq!(service.stats().dropped(), 0);
    }

    #[test]
    fn depth_watermark_sheds_with_backlog_scaled_hint() {
        let net = mlp();
        let config = ServeConfig {
            shed_depth_watermark: Some(2),
            max_batch: 16,
            ..ServeConfig::default()
        };
        let mut service = NpuService::new(&net, config);
        service.submit(&request(0, 1), ms(1)).unwrap();
        service.submit(&request(1, 1), ms(1)).unwrap();
        let err = service
            .submit_with(&request(2, 1), ms(1), SubmitOptions::default())
            .unwrap_err();
        let ServeError::Shed {
            reason,
            depth,
            retry_after,
        } = err
        else {
            panic!("expected a shed, got {err:?}");
        };
        assert_eq!(reason, trace::ShedReason::DepthWatermark);
        assert_eq!(depth, 2);
        assert!(retry_after >= config.retry_after);
        assert_eq!(service.stats().shed, 1);
        let events = service.drain_events();
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::RequestShed {
                reason: trace::ShedReason::DepthWatermark,
                ..
            }
        )));
    }

    #[test]
    fn rate_limiter_is_per_client() {
        let net = mlp();
        let config = ServeConfig {
            rate_limit: Some(RateLimit {
                burst: 2.0,
                refill_per_sec: 10.0,
            }),
            ..ServeConfig::default()
        };
        let mut service = NpuService::new(&net, config);
        let hog = SubmitOptions {
            client: ClientId::new(1),
            ..SubmitOptions::default()
        };
        let other = SubmitOptions {
            client: ClientId::new(2),
            ..SubmitOptions::default()
        };
        service.submit_with(&request(0, 1), ms(1), hog).unwrap();
        service.submit_with(&request(1, 1), ms(1), hog).unwrap();
        let err = service.submit_with(&request(2, 1), ms(1), hog).unwrap_err();
        assert!(matches!(
            err,
            ServeError::RateLimited { client, .. } if client == ClientId::new(1)
        ));
        // A different client is unaffected by the hog's empty bucket.
        service.submit_with(&request(3, 1), ms(1), other).unwrap();
        assert_eq!(service.stats().rate_limited, 1);
        // Virtual-time refill: 100 ms at 10 tokens/s is one token.
        service.flush(ms(10));
        service.submit_with(&request(4, 1), ms(101), hog).unwrap();
        service.flush(ms(200));
        assert_eq!(service.stats().dropped(), 0);
    }

    #[test]
    fn degrade_watermark_routes_to_cpu_before_shedding() {
        let net = mlp();
        let config = ServeConfig {
            cpu_degrade_watermark: Some(SimDuration::ZERO),
            max_batch: 4,
            ..ServeConfig::default()
        };
        let mut service = NpuService::new(&net, config);
        let t = service
            .submit_with(&request(0, 2), ms(1), SubmitOptions::default())
            .unwrap();
        service.flush(ms(10));
        let reply = service.take_reply(t).unwrap();
        assert!(reply.fallback_active, "degraded requests serve on the CPU");
        assert_eq!(reply.backend, InferenceBackend::Cpu);
        assert_eq!(service.stats().degraded, 1);
        assert_eq!(service.stats().cpu_fallback_batches, 1);
        // The pool never saw the request.
        assert!(service.device_busy_times().iter().all(|d| d.is_zero()));
    }

    #[test]
    fn held_submissions_batch_only_once_ready() {
        let net = mlp();
        let mut service = NpuService::new(&net, ServeConfig::default());
        let held = SubmitOptions {
            hold: SimDuration::from_millis(20),
            ..SubmitOptions::default()
        };
        let slow = service.submit_with(&request(0, 1), ms(1), held).unwrap();
        let fast = service
            .submit_with(&request(1, 1), ms(1), SubmitOptions::default())
            .unwrap();
        // The prompt request dispatches at its own max_wait deadline; the
        // slow-loris request stays queued until its payload arrives.
        service.run_until(ms(10));
        assert!(service.take_reply(fast).is_some());
        assert!(service.take_reply(slow).is_none());
        assert_eq!(service.pending(), 1);
        service.flush(ms(40));
        assert!(service.take_reply(slow).is_some());
        assert_eq!(service.stats().dropped(), 0);
    }

    #[test]
    fn hold_is_clamped_to_max_hold() {
        let net = mlp();
        let config = ServeConfig {
            max_hold: SimDuration::from_millis(5),
            ..ServeConfig::default()
        };
        let mut service = NpuService::new(&net, config);
        let loris = SubmitOptions {
            hold: SimDuration::from_secs(3600),
            ..SubmitOptions::default()
        };
        let t = service.submit_with(&request(0, 1), ms(0), loris).unwrap();
        // Ready at 5 ms (clamped), dispatched by 7 ms (max_wait 2 ms).
        service.run_until(ms(8));
        assert!(service.take_reply(t).is_some());
    }

    #[test]
    fn retry_records_are_traced() {
        let net = mlp();
        let mut service = NpuService::new(&net, ServeConfig::default());
        service.record_retry(ClientId::new(7), 1, SimDuration::from_millis(3), ms(2));
        assert_eq!(service.stats().retries, 1);
        let events = service.drain_events();
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::RetryScheduled {
                client: 7,
                attempt: 1,
                ..
            }
        )));
    }

    #[test]
    fn epoch_metrics_report_deltas_and_utilization() {
        let net = mlp();
        let config = ServeConfig {
            queue_capacity: 2,
            max_batch: 16,
            ..ServeConfig::default()
        };
        let mut service = NpuService::new(&net, config);
        service.submit(&request(0, 1), ms(1)).unwrap();
        service.submit(&request(1, 1), ms(1)).unwrap();
        let _ = service.submit(&request(2, 1), ms(1)); // queue full: shed
        service.flush(ms(100));
        let m = service.epoch_metrics(ms(100));
        assert_eq!(m.from, SimTime::ZERO);
        assert_eq!(m.to, ms(100));
        assert_eq!(m.admitted, 2);
        assert_eq!(m.served, 2);
        assert_eq!(m.shed, 1);
        assert_eq!(m.expired, 0);
        assert!((m.shed_rate - 1.0 / 3.0).abs() < 1e-9);
        assert!(m.utilization > 0.0, "the pool did work this epoch");
        assert!(m.p99_queue_wait.is_some());
        // The next epoch starts from zero deltas.
        let next = service.epoch_metrics(ms(200));
        assert_eq!(next.from, ms(100));
        assert_eq!(next.admitted, 0);
        assert_eq!(next.shed, 0);
        assert!((next.utilization - 0.0).abs() < 1e-9);
    }

    /// Regression guard for the policy cache's one safety property: a
    /// cache hit replays the numeric output and NOTHING else. Timing,
    /// fault-injector RNG draws, occupancy, breaker state and every
    /// reply byte must be identical whether the cache is off, warm, or
    /// running on the scalar kernel — only the hit/miss counters may
    /// move. A cache that skipped a device dispatch (and with it an RNG
    /// draw) would desynchronize the fault stream and fail this test on
    /// the first divergent slowdown.
    #[test]
    fn cache_hits_do_not_advance_rng_occupancy_or_timing() {
        let net = mlp();
        let run = |policy_cache: usize, kernel: KernelMode| {
            let mut plan = FaultPlan::none(17);
            plan.serve.slowdown_rate = 0.4;
            plan.serve.slowdown_factor = 3.0;
            plan.serve.failure_rate = 0.15;
            let config = ServeConfig {
                devices: 2,
                max_batch: 4,
                policy_cache,
                kernel,
                ..ServeConfig::default()
            };
            let mut service =
                NpuService::new(&net, config).with_fault_injector(FaultInjector::new(plan));
            let mut replies = Vec::new();
            for step in 0..24usize {
                // A pool of three recurring feature vectors: every
                // revisit after the first probe is a cache hit.
                let t = service
                    .submit(&request(step % 3, 1 + step % 2), ms(step as u64))
                    .unwrap();
                service.flush(ms(step as u64));
                replies.push(service.take_reply(t).unwrap());
            }
            let busy = service.device_busy_times();
            let stats = service.stats().clone();
            (replies, busy, stats)
        };
        let (cold, cold_busy, cold_stats) = run(0, KernelMode::Vectorized);
        let (warm, warm_busy, warm_stats) = run(64, KernelMode::Vectorized);
        let (scalar, scalar_busy, scalar_stats) = run(64, KernelMode::Scalar);

        assert_eq!(cold, warm, "cache hits changed a reply");
        assert_eq!(cold, scalar, "kernel choice changed a reply");
        assert_eq!(cold_busy, warm_busy, "cache hits changed occupancy");
        assert_eq!(cold_busy, scalar_busy, "kernel choice changed occupancy");

        // The warm run actually exercised the cache...
        assert_eq!(cold_stats.cache_hits + cold_stats.cache_misses, 0);
        assert!(warm_stats.cache_hits > 0, "recurring requests must hit");
        assert_eq!(warm_stats, scalar_stats, "counters are kernel-invariant");
        // ...and the hit/miss counters are the ONLY stats that moved.
        let neutral = |s: &ServeStats| {
            let mut s = s.clone();
            s.cache_hits = 0;
            s.cache_misses = 0;
            s
        };
        assert_eq!(neutral(&cold_stats), neutral(&warm_stats));
    }
}

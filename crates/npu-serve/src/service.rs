//! The shared inference service: dynamic batcher + virtual-time device
//! pool.

use std::collections::HashMap;

use faults::{BreakerState, CircuitBreaker, FaultInjector, ServeFault};
use hmc_types::{SimDuration, SimTime};
use nn::{Matrix, Mlp};
use npu::{CpuInference, NpuDevice, NpuModel, Occupancy};
use topil::{ClientJob, ClientReply, InferenceBackend};
use trace::{TraceBackend, TraceEvent};

use crate::queue::QueuedRequest;
use crate::{Rejected, ServeConfig, ServeStats, SubmissionQueue};

/// Handle of an admitted request; redeem it with
/// [`NpuService::take_reply`] once the service has advanced past the
/// request's completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestTicket(u64);

/// One pooled device: its cost model, busy-horizon bookkeeping, and the
/// circuit breaker fencing it off after consecutive failures.
#[derive(Debug, Clone)]
struct DeviceLane {
    device: NpuDevice,
    occupancy: Occupancy,
    breaker: CircuitBreaker,
}

/// A dispatched batch whose output has not been computed yet. Scheduling
/// (device choice, timing, faults, breakers) happens at dispatch;
/// the numeric inference is deferred so the worker pool can compute many
/// batches in parallel.
#[derive(Debug, Clone)]
struct BatchPlan {
    requests: Vec<QueuedRequest>,
    /// Pool index of the serving device; `None` when the CPU served.
    device: Option<u8>,
    /// Device attempt `(latency, ok)`, when one was made.
    npu: Option<(SimDuration, bool)>,
    /// CPU-fallback latency, when the CPU (also) served the batch.
    fallback: Option<SimDuration>,
    completes_at: SimTime,
    breaker_opened: bool,
}

/// The shared NPU inference service.
///
/// The service runs in **virtual time**: `submit`, `run_until` and
/// `flush` carry explicit [`SimTime`] stamps and the service's clock only
/// moves forward. Given the same submission schedule it produces the same
/// batches, latencies and outputs — and because multi-request batches are
/// executed with per-request quantization groups, every reply is
/// bit-identical to serving that request alone on a dedicated device.
#[derive(Debug)]
pub struct NpuService {
    config: ServeConfig,
    /// The compiled int8 model every pooled device executes.
    model: NpuModel,
    /// Float model for the CPU fallback path (mirrors the dedicated
    /// client's fallback substrate).
    mlp: Mlp,
    /// Cost model of one pool device (the pool is homogeneous).
    device_model: NpuDevice,
    cpu: CpuInference,
    macs: usize,
    lanes: Vec<DeviceLane>,
    injector: Option<FaultInjector>,
    queue: SubmissionQueue,
    /// Dispatched batches awaiting numeric computation.
    inflight: Vec<BatchPlan>,
    replies: HashMap<u64, ClientReply>,
    stats: ServeStats,
    events: Vec<TraceEvent>,
    clock: SimTime,
    next_id: u64,
}

impl NpuService {
    /// Compiles `mlp` for the pool and starts an idle service.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (see [`ServeConfig::validate`]).
    pub fn new(mlp: &Mlp, config: ServeConfig) -> Self {
        config.validate();
        let device_model = NpuDevice::kirin970();
        let lanes = (0..config.devices)
            .map(|_| DeviceLane {
                device: device_model,
                occupancy: Occupancy::new(),
                breaker: CircuitBreaker::new(config.breaker_threshold, config.breaker_cooldown),
            })
            .collect();
        NpuService {
            model: NpuModel::compile(mlp),
            mlp: mlp.clone(),
            device_model,
            cpu: CpuInference::cortex_a73(),
            macs: mlp.macs(),
            lanes,
            injector: None,
            queue: SubmissionQueue::new(config.queue_capacity, config.retry_after),
            inflight: Vec::new(),
            replies: HashMap::new(),
            stats: ServeStats::default(),
            events: Vec::new(),
            clock: SimTime::ZERO,
            next_id: 0,
            config,
        }
    }

    /// Attaches a fault injector; its `serve` domain draws one fate per
    /// dispatched batch that reaches a device.
    pub fn with_fault_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The service's virtual clock.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Requests waiting in the submission queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Circuit-breaker states of the pool, by device index.
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.lanes.iter().map(|l| l.breaker.state()).collect()
    }

    /// Total breaker openings across the pool.
    pub fn breaker_opens(&self) -> u64 {
        self.lanes.iter().map(|l| l.breaker.opens()).sum()
    }

    /// Whether every device is currently fenced off.
    pub fn all_breakers_open(&self) -> bool {
        self.lanes
            .iter()
            .all(|l| l.breaker.state() == BreakerState::Open)
    }

    /// Per-device busy time accumulated so far, by pool index.
    pub fn device_busy_times(&self) -> Vec<SimDuration> {
        self.lanes.iter().map(|l| l.occupancy.busy_time()).collect()
    }

    /// Drains the trace events (`BatchDispatched`, `QueueSaturated`)
    /// accumulated since the last drain, in dispatch order.
    pub fn drain_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Submits one request (`rows` feature rows, one board's epoch batch)
    /// at virtual time `now`.
    ///
    /// Admission control rejects the request with a retry-after hint when
    /// the queue is at capacity. An admitted request dispatches once
    /// `max_batch` requests wait or its `max_wait` deadline passes,
    /// whichever is first.
    ///
    /// # Panics
    ///
    /// Panics on an empty request or mismatched feature width.
    pub fn submit(&mut self, rows: &Matrix, now: SimTime) -> Result<RequestTicket, Rejected> {
        assert!(rows.rows() > 0, "empty request");
        assert_eq!(rows.cols(), self.model.input_size(), "input width mismatch");
        let now = self.clock.max(now);
        // Fire deadlines that elapsed before this arrival.
        self.run_until(now);
        let id = self.next_id;
        let request = QueuedRequest {
            id,
            rows: rows.clone(),
            submitted_at: now,
            deadline: now + self.config.max_wait,
        };
        match self.queue.try_push(request) {
            Err(rejected) => {
                self.stats.rejected += 1;
                self.events.push(TraceEvent::QueueSaturated {
                    at: now,
                    depth: self.queue.len() as u32,
                    retry_after: rejected.retry_after,
                });
                Err(rejected)
            }
            Ok(()) => {
                self.next_id += 1;
                self.stats.submitted += 1;
                while self.queue.len() >= self.config.max_batch {
                    self.dispatch_one(now);
                }
                Ok(RequestTicket(id))
            }
        }
    }

    /// Advances virtual time to `now`, dispatching every batch whose
    /// `max_wait` deadline falls at or before it.
    pub fn run_until(&mut self, now: SimTime) {
        while let Some(deadline) = self.queue.next_deadline() {
            if deadline > now {
                break;
            }
            let at = self.clock.max(deadline);
            self.clock = at;
            self.dispatch_one(at);
        }
        self.clock = self.clock.max(now);
    }

    /// Advances to `now` and force-dispatches everything still pending
    /// (end of an epoch or shutdown): afterwards every admitted request
    /// has a reply.
    pub fn flush(&mut self, now: SimTime) {
        self.run_until(now);
        while !self.queue.is_empty() {
            let at = self.clock;
            self.dispatch_one(at);
        }
        self.drain_compute();
    }

    /// Redeems a ticket. Returns `None` while the request is still
    /// pending (advance the clock past its deadline, or `flush`).
    pub fn take_reply(&mut self, ticket: RequestTicket) -> Option<ClientReply> {
        self.drain_compute();
        self.replies.remove(&ticket.0)
    }

    /// Forms one batch from the most urgent pending requests and
    /// schedules it on the pool.
    fn dispatch_one(&mut self, at: SimTime) {
        let requests = self.queue.take(self.config.max_batch);
        debug_assert!(!requests.is_empty(), "dispatch with empty queue");
        let rows: usize = requests.iter().map(|r| r.rows.rows()).sum();

        // Every dispatch advances open breakers' cooldowns one step.
        for lane in &mut self.lanes {
            if lane.breaker.state() == BreakerState::Open {
                lane.breaker.epoch_elapsed();
            }
        }

        // Earliest-free healthy device; ties go to the lowest index.
        let lane_idx = self
            .lanes
            .iter()
            .enumerate()
            .filter(|(_, l)| l.breaker.state() != BreakerState::Open)
            .min_by_key(|(i, l)| (l.occupancy.next_start(at), *i))
            .map(|(i, _)| i);

        let fault = match (&mut self.injector, lane_idx) {
            (Some(injector), Some(_)) => injector.serve_batch(),
            _ => ServeFault::None,
        };

        let plan = match lane_idx {
            None => {
                // Every device fenced off: serve the batch on the host
                // CPU so no request is dropped.
                let cpu_latency = self.cpu.latency(self.macs, rows);
                self.stats.cpu_fallback_batches += 1;
                BatchPlan {
                    requests,
                    device: None,
                    npu: None,
                    fallback: Some(cpu_latency),
                    completes_at: at + cpu_latency,
                    breaker_opened: false,
                }
            }
            Some(i) => {
                let lane = &mut self.lanes[i];
                let base = lane.device.inference_latency(&self.model, rows);
                let latency = match fault {
                    ServeFault::Slowdown(factor) => {
                        SimDuration::from_secs_f64(base.as_secs_f64() * factor)
                    }
                    _ => base,
                };
                let (_start, end) = lane.occupancy.reserve(at, latency);
                if let ServeFault::Failure = fault {
                    // The device burned its reservation, the breaker
                    // records the failure, and the CPU re-serves the
                    // batch afterwards.
                    let opens_before = lane.breaker.opens();
                    lane.breaker.record_failure();
                    let breaker_opened = lane.breaker.opens() > opens_before;
                    let cpu_latency = self.cpu.latency(self.macs, rows);
                    self.stats.failed_batches += 1;
                    self.stats.cpu_fallback_batches += 1;
                    BatchPlan {
                        requests,
                        device: Some(i as u8),
                        npu: Some((latency, false)),
                        fallback: Some(cpu_latency),
                        completes_at: end + cpu_latency,
                        breaker_opened,
                    }
                } else {
                    lane.breaker.record_success();
                    BatchPlan {
                        requests,
                        device: Some(i as u8),
                        npu: Some((latency, true)),
                        fallback: None,
                        completes_at: end,
                        breaker_opened: false,
                    }
                }
            }
        };

        self.stats.record_batch(plan.requests.len(), rows);
        self.events.push(TraceEvent::BatchDispatched {
            at,
            device: plan.device,
            requests: plan.requests.len() as u32,
            rows: rows as u32,
            latency: plan.completes_at.since(at),
        });
        self.inflight.push(plan);
    }

    /// Computes every in-flight batch on the worker pool and files the
    /// per-request replies. Join order is dispatch order, so results are
    /// deterministic regardless of worker interleaving.
    fn drain_compute(&mut self) {
        if self.inflight.is_empty() {
            return;
        }
        let plans = std::mem::take(&mut self.inflight);
        let outputs = compute_outputs(&self.model, &self.mlp, &plans, self.config.workers);
        for (plan, output) in plans.into_iter().zip(outputs) {
            self.file_replies(plan, output);
        }
    }

    /// Splits a batch output back into per-request replies.
    fn file_replies(&mut self, plan: BatchPlan, output: Matrix) {
        let total_rows: usize = plan.requests.iter().map(|r| r.rows.rows()).sum();
        let mut jobs = Vec::new();
        if let Some((latency, ok)) = plan.npu {
            jobs.push(ClientJob {
                batch: total_rows as u32,
                latency,
                backend: TraceBackend::Npu,
                ok,
            });
        }
        if let Some(cpu_latency) = plan.fallback {
            jobs.push(ClientJob {
                batch: total_rows as u32,
                latency: cpu_latency,
                backend: TraceBackend::Cpu,
                ok: true,
            });
        }
        let backend = if plan.fallback.is_some() {
            InferenceBackend::Cpu
        } else {
            InferenceBackend::Npu
        };
        let npu_failures = u32::from(matches!(plan.npu, Some((_, false))));
        let cols = output.cols();
        let mut start_row = 0usize;
        for request in &plan.requests {
            let n = request.rows.rows();
            let flat = output.as_slice()[start_row * cols..(start_row + n) * cols].to_vec();
            start_row += n;
            let latency = plan.completes_at.since(request.submitted_at);
            self.stats.record_reply(latency);
            self.replies.insert(
                request.id,
                ClientReply {
                    output: Some(Matrix::from_flat(n, cols, flat)),
                    latency,
                    // The board pays the driver marshalling for its own
                    // rows; the batched device time is the service's.
                    cpu_time: self.device_model.host_cpu_time(n),
                    backend,
                    npu_failures,
                    fallback_active: plan.fallback.is_some(),
                    jobs: jobs.clone(),
                    breaker_opened: plan.breaker_opened,
                },
            );
        }
    }
}

/// Runs the numeric inference for `plans` on a pool of std worker
/// threads. Plan `i` is handled by worker `i % workers`; results are
/// re-assembled by index, so the output order never depends on thread
/// scheduling.
fn compute_outputs(
    model: &NpuModel,
    mlp: &Mlp,
    plans: &[BatchPlan],
    workers: usize,
) -> Vec<Matrix> {
    let n = plans.len();
    let workers = workers.min(n).max(1);
    let mut outputs: Vec<Option<Matrix>> = vec![None; n];
    if workers == 1 {
        for (slot, plan) in outputs.iter_mut().zip(plans) {
            *slot = Some(run_plan(model, mlp, plan));
        }
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        plans
                            .iter()
                            .enumerate()
                            .skip(w)
                            .step_by(workers)
                            .map(|(i, plan)| (i, run_plan(model, mlp, plan)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (i, output) in handle.join().expect("serve worker panicked") {
                    outputs[i] = Some(output);
                }
            }
        });
    }
    outputs
        .into_iter()
        .map(|o| o.expect("every plan computed"))
        .collect()
}

/// Executes one batch: int8 grouped inference on the NPU path (one
/// quantization group per request, bit-identical to dedicated issuance),
/// float inference on the CPU-fallback path (mirroring the dedicated
/// client's fallback substrate).
fn run_plan(model: &NpuModel, mlp: &Mlp, plan: &BatchPlan) -> Matrix {
    let cols = plan.requests[0].rows.cols();
    let total_rows: usize = plan.requests.iter().map(|r| r.rows.rows()).sum();
    let mut flat = Vec::with_capacity(total_rows * cols);
    for request in &plan.requests {
        flat.extend_from_slice(request.rows.as_slice());
    }
    let stacked = Matrix::from_flat(total_rows, cols, flat);
    if plan.fallback.is_some() {
        mlp.forward_batch(&stacked)
    } else {
        let groups: Vec<usize> = plan.requests.iter().map(|r| r.rows.rows()).collect();
        model.infer_grouped(&stacked, &groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faults::FaultPlan;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp() -> Mlp {
        Mlp::with_topology(21, 4, 64, 8, &mut StdRng::seed_from_u64(3))
    }

    fn request(seed: usize, rows: usize) -> Matrix {
        Matrix::from_rows(
            (0..rows)
                .map(|r| {
                    (0..21)
                        .map(|c| ((seed * 31 + r * 7 + c * 3) % 17) as f32 / 17.0 - 0.5)
                        .collect()
                })
                .collect(),
        )
    }

    fn ms(t: u64) -> SimTime {
        SimTime::from_millis(t)
    }

    #[test]
    fn deadline_coalesces_waiting_requests_into_one_batch() {
        let net = mlp();
        let mut service = NpuService::new(&net, ServeConfig::default());
        let tickets: Vec<_> = (0..4)
            .map(|i| service.submit(&request(i, 2), ms(10)).unwrap())
            .collect();
        // Nothing dispatched before the oldest deadline.
        assert_eq!(service.stats().batches, 0);
        service.run_until(ms(13)); // max_wait = 2 ms
        assert_eq!(service.stats().batches, 1);
        assert_eq!(service.stats().batch_histogram()[4], 1);
        for t in tickets {
            let reply = service.take_reply(t).unwrap();
            assert_eq!(reply.output.unwrap().rows(), 2);
            assert!(!reply.fallback_active);
        }
        assert_eq!(service.stats().dropped(), 0);
    }

    #[test]
    fn full_batch_dispatches_immediately() {
        let net = mlp();
        let config = ServeConfig {
            max_batch: 3,
            ..ServeConfig::default()
        };
        let mut service = NpuService::new(&net, config);
        for i in 0..3 {
            service.submit(&request(i, 1), ms(5)).unwrap();
        }
        // The third submission filled the batch: dispatched at 5 ms, not
        // at the 7 ms deadline.
        assert_eq!(service.stats().batches, 1);
        let events = service.drain_events();
        match &events[0] {
            TraceEvent::BatchDispatched {
                at, requests, rows, ..
            } => {
                assert_eq!(*at, ms(5));
                assert_eq!(*requests, 3);
                assert_eq!(*rows, 3);
            }
            other => panic!("expected BatchDispatched, got {other:?}"),
        }
    }

    #[test]
    fn admission_control_rejects_and_recovers() {
        let net = mlp();
        let config = ServeConfig {
            queue_capacity: 2,
            max_batch: 16,
            ..ServeConfig::default()
        };
        let mut service = NpuService::new(&net, config);
        service.submit(&request(0, 1), ms(1)).unwrap();
        service.submit(&request(1, 1), ms(1)).unwrap();
        let rejected = service.submit(&request(2, 1), ms(1)).unwrap_err();
        assert_eq!(rejected.retry_after, config.retry_after);
        assert_eq!(service.stats().rejected, 1);
        let events = service.drain_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::QueueSaturated { depth: 2, .. })));
        // After the deadline drains the queue, the retry is admitted.
        let t = service.submit(&request(2, 1), ms(4)).unwrap();
        service.flush(ms(10));
        assert!(service.take_reply(t).unwrap().output.is_some());
        assert_eq!(service.stats().dropped(), 0);
    }

    #[test]
    fn batched_replies_bit_identical_to_dedicated_inference() {
        let net = mlp();
        let compiled = NpuModel::compile(&net);
        let mut service = NpuService::new(&net, ServeConfig::default());
        let requests: Vec<Matrix> = (0..5).map(|i| request(i, 1 + i % 3)).collect();
        let tickets: Vec<_> = requests
            .iter()
            .map(|r| service.submit(r, ms(2)).unwrap())
            .collect();
        service.flush(ms(100));
        assert!(service.stats().batches < 5, "requests must coalesce");
        for (r, t) in requests.iter().zip(tickets) {
            let reply = service.take_reply(t).unwrap();
            // Same bits as a dedicated device serving this request alone.
            assert_eq!(reply.output.unwrap(), compiled.infer(r));
        }
    }

    #[test]
    fn occupancy_queues_batches_behind_busy_devices() {
        let net = mlp();
        let config = ServeConfig {
            devices: 1,
            max_batch: 1,
            ..ServeConfig::default()
        };
        let mut service = NpuService::new(&net, config);
        // Three single-request batches dispatched back to back on one
        // device: each completion is pushed behind the previous one.
        let tickets: Vec<_> = (0..3)
            .map(|i| service.submit(&request(i, 1), ms(1)).unwrap())
            .collect();
        service.flush(ms(1));
        let latencies: Vec<_> = tickets
            .into_iter()
            .map(|t| service.take_reply(t).unwrap().latency)
            .collect();
        assert!(latencies[1] > latencies[0]);
        assert!(latencies[2] > latencies[1]);
        assert_eq!(service.device_busy_times().len(), 1);
        assert!(service.device_busy_times()[0] >= latencies[0] * 2);
    }

    #[test]
    fn device_failures_open_breaker_and_drain_to_cpu() {
        let net = mlp();
        let mut plan = FaultPlan::none(11);
        plan.serve.failure_rate = 1.0;
        let config = ServeConfig {
            devices: 2,
            max_batch: 1,
            breaker_threshold: 2,
            breaker_cooldown: 50,
            ..ServeConfig::default()
        };
        let mut service =
            NpuService::new(&net, config).with_fault_injector(FaultInjector::new(plan));
        let mut replies = Vec::new();
        for i in 0..8 {
            let t = service.submit(&request(i, 1), ms(i as u64)).unwrap();
            service.flush(ms(i as u64));
            replies.push(service.take_reply(t).unwrap());
        }
        // Two failures per device open both breakers...
        assert!(service.all_breakers_open());
        assert_eq!(service.breaker_opens(), 2);
        // ...yet every request was answered (failed batches re-served on
        // the CPU, later ones drained directly to the fallback).
        assert_eq!(service.stats().dropped(), 0);
        assert!(replies.iter().all(|r| r.output.is_some()));
        assert!(replies.iter().all(|r| r.fallback_active));
        let last = replies.last().unwrap();
        // Once fenced off, no device attempt is made at all.
        assert_eq!(last.npu_failures, 0);
        assert_eq!(last.jobs.len(), 1);
        assert_eq!(last.jobs[0].backend, TraceBackend::Cpu);
    }

    #[test]
    fn slowdown_faults_stretch_batch_latency() {
        let net = mlp();
        let mut plan = FaultPlan::none(13);
        plan.serve.slowdown_rate = 1.0;
        plan.serve.slowdown_factor = 10.0;
        let config = ServeConfig {
            max_batch: 1,
            ..ServeConfig::default()
        };
        let mut clean = NpuService::new(&net, config);
        let mut slowed =
            NpuService::new(&net, config).with_fault_injector(FaultInjector::new(plan));
        let tc = clean.submit(&request(0, 2), ms(1)).unwrap();
        let ts = slowed.submit(&request(0, 2), ms(1)).unwrap();
        clean.flush(ms(1));
        slowed.flush(ms(1));
        let fast = clean.take_reply(tc).unwrap();
        let slow = slowed.take_reply(ts).unwrap();
        assert_eq!(fast.output, slow.output, "slowdown must not corrupt data");
        let ratio = slow.latency.as_secs_f64() / fast.latency.as_secs_f64();
        assert!((9.0..11.0).contains(&ratio), "latency ratio {ratio}");
    }

    #[test]
    fn virtual_clock_is_monotone_across_out_of_order_submits() {
        let net = mlp();
        let mut service = NpuService::new(&net, ServeConfig::default());
        service.submit(&request(0, 1), ms(10)).unwrap();
        // An earlier stamp is clamped to the service clock, never
        // rewinding it.
        service.submit(&request(1, 1), ms(5)).unwrap();
        assert_eq!(service.now(), ms(10));
        service.flush(ms(20));
        assert_eq!(service.stats().dropped(), 0);
    }
}

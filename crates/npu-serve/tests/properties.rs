//! Property: serving through the shared batched service is bit-identical
//! to issuing every request on its own dedicated device, for any request
//! mix, submission interleaving and pool shape.

use hmc_types::SimTime;
use nn::{Matrix, Mlp};
use npu::NpuModel;
use npu_serve::{NpuService, ServeConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic pseudo-random feature batch for request `i`.
fn request(seed: u64, i: usize, rows: usize) -> Matrix {
    Matrix::from_rows(
        (0..rows)
            .map(|r| {
                (0..21)
                    .map(|c| {
                        let h = seed
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add((i * 131 + r * 17 + c) as u64)
                            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                        ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5
                    })
                    .collect()
            })
            .collect(),
    )
}

proptest! {
    #[test]
    fn batched_replies_match_dedicated_issuance(
        seed in 0u64..64,
        row_counts in proptest::collection::vec(1usize..5, 1..12),
        jitter_us in proptest::collection::vec(0u64..4000, 12),
        devices in 1usize..4,
        max_batch in 1usize..9,
    ) {
        let mlp = Mlp::with_topology(21, 4, 64, 8, &mut StdRng::seed_from_u64(seed));
        // Dedicated issuance: the compiled model serves each request
        // alone (exactly what a per-board HiaiClient computes).
        let dedicated = NpuModel::compile(&mlp);

        let config = ServeConfig {
            devices,
            max_batch,
            queue_capacity: 64,
            ..ServeConfig::default()
        };
        let mut service = NpuService::new(&mlp, config);

        let requests: Vec<Matrix> = row_counts
            .iter()
            .enumerate()
            .map(|(i, &rows)| request(seed, i, rows))
            .collect();
        // Arbitrary submission interleaving: jittered stamps, including
        // out-of-order ones the service clamps to its monotone clock.
        let tickets: Vec<_> = requests
            .iter()
            .zip(&jitter_us)
            .map(|(r, &us)| {
                let at = SimTime::from_nanos(us * 1_000);
                service.submit(r, at).expect("capacity fits every request")
            })
            .collect();
        service.flush(SimTime::from_secs(1));

        prop_assert_eq!(service.stats().dropped(), 0);
        for (r, ticket) in requests.iter().zip(tickets) {
            let reply = service.take_reply(ticket).expect("flushed");
            prop_assert!(!reply.fallback_active);
            let output = reply.output.expect("served");
            // Bit-identical, regardless of which batch the request
            // landed in or which device served it.
            prop_assert_eq!(&output, &dedicated.infer(r));
        }
    }
}

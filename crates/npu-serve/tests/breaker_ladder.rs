//! Breaker-ladder behavior under fault storms: every transition in the
//! open → half-open → {closed, open} ladder is legal and traced, and no
//! admitted request is ever lost — a fenced-off pool drains to the CPU.

use faults::{BreakerState, FaultInjector, FaultPlan};
use hmc_types::{SimDuration, SimTime};
use nn::{Matrix, Mlp};
use npu_serve::{
    ClientId, NpuService, ServeConfig, TierConfig, TierOutcome, TierScope, TierSubmit,
    TieredService,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use trace::{FaultKind, TraceEvent};

fn mlp() -> Mlp {
    Mlp::with_topology(21, 4, 64, 8, &mut StdRng::seed_from_u64(3))
}

fn request(seed: usize) -> Matrix {
    Matrix::from_rows(vec![(0..21)
        .map(|c| ((seed * 31 + c * 3) % 17) as f32 / 17.0 - 0.5)
        .collect()])
}

fn ms(t: u64) -> SimTime {
    SimTime::from_millis(t)
}

/// Extracts the breaker-transition ladder from a drained event stream.
fn transitions(events: &[TraceEvent]) -> Vec<FaultKind> {
    events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Fault { kind, .. }
                if matches!(
                    kind,
                    FaultKind::BreakerOpen | FaultKind::BreakerHalfOpen | FaultKind::BreakerClosed
                ) =>
            {
                Some(*kind)
            }
            _ => None,
        })
        .collect()
}

#[test]
fn intermittent_storm_recovers_half_open_to_closed() {
    let net = mlp();
    // One device, hair-trigger breaker, one-dispatch cooldown: an
    // intermittent storm (deterministic seed) keeps cycling the ladder.
    let mut plan = FaultPlan::none(21);
    plan.serve.failure_rate = 0.5;
    let config = ServeConfig {
        devices: 1,
        max_batch: 1,
        breaker_threshold: 1,
        breaker_cooldown: 1,
        ..ServeConfig::default()
    };
    let mut service = NpuService::new(&net, config).with_fault_injector(FaultInjector::new(plan));
    let mut replies = Vec::new();
    for i in 0..40 {
        let t = service.submit(&request(i), ms(i as u64)).unwrap();
        service.flush(ms(i as u64));
        replies.push(service.take_reply(t).expect("flushed"));
    }
    // Zero lost replies through the whole storm.
    assert_eq!(service.stats().dropped(), 0);
    assert!(replies.iter().all(|r| r.output.is_some()));
    assert!(
        service.breaker_opens() > 1,
        "the storm must trip the breaker"
    );

    // The drained trace must show the full ladder, every step legal:
    // Closed -open-> Open -half-open-> HalfOpen -{closed,open}-> ...
    let ladder = transitions(&service.drain_events());
    assert!(ladder.contains(&FaultKind::BreakerOpen));
    assert!(ladder.contains(&FaultKind::BreakerHalfOpen));
    assert!(
        ladder.contains(&FaultKind::BreakerClosed),
        "a half-open probe must succeed and close the breaker: {ladder:?}"
    );
    let mut state = BreakerState::Closed;
    for kind in ladder {
        state = match (state, kind) {
            (BreakerState::Closed, FaultKind::BreakerOpen) => BreakerState::Open,
            (BreakerState::Open, FaultKind::BreakerHalfOpen) => BreakerState::HalfOpen,
            (BreakerState::HalfOpen, FaultKind::BreakerClosed) => BreakerState::Closed,
            (BreakerState::HalfOpen, FaultKind::BreakerOpen) => BreakerState::Open,
            (from, kind) => panic!("illegal breaker transition {kind:?} from {from:?}"),
        };
    }
    // The traced ladder ends wherever the live breaker actually is.
    assert_eq!(service.breaker_states(), vec![state]);
}

#[test]
fn total_storm_fences_the_pool_and_drains_to_cpu_without_loss() {
    let net = mlp();
    let mut plan = FaultPlan::none(11);
    plan.serve.failure_rate = 1.0;
    let config = ServeConfig {
        devices: 3,
        max_batch: 1,
        breaker_threshold: 1,
        breaker_cooldown: 1_000,
        ..ServeConfig::default()
    };
    let mut service = NpuService::new(&net, config).with_fault_injector(FaultInjector::new(plan));
    let mut replies = Vec::new();
    for i in 0..12 {
        let t = service.submit(&request(i), ms(i as u64)).unwrap();
        service.flush(ms(i as u64));
        replies.push(service.take_reply(t).expect("flushed"));
    }
    // Each device fails once and is fenced off; everything after drains
    // straight to the CPU fallback — with zero lost replies.
    assert!(service.all_breakers_open());
    assert_eq!(service.breaker_opens(), 3);
    assert_eq!(service.stats().dropped(), 0);
    assert_eq!(service.stats().served, 12);
    assert!(replies.iter().all(|r| r.output.is_some()));
    assert!(replies.iter().all(|r| r.fallback_active));
    // The last replies never even attempt a device.
    assert_eq!(replies.last().unwrap().npu_failures, 0);

    // Exactly three open transitions in the trace, no recovery (the
    // cooldown outlives the run).
    let ladder = transitions(&service.drain_events());
    assert_eq!(
        ladder
            .iter()
            .filter(|k| **k == FaultKind::BreakerOpen)
            .count(),
        3
    );
    assert!(!ladder.contains(&FaultKind::BreakerClosed));
}

#[test]
fn storm_with_deadlines_never_serves_late() {
    let net = mlp();
    // A half-and-half storm with tight-but-feasible deadlines: admitted
    // requests are either served on time or failed fast — never computed
    // past their deadline.
    let mut plan = FaultPlan::none(5);
    plan.serve.failure_rate = 0.4;
    plan.serve.slowdown_rate = 0.4;
    plan.serve.slowdown_factor = 8.0;
    let config = ServeConfig {
        devices: 2,
        max_batch: 2,
        breaker_threshold: 2,
        breaker_cooldown: 2,
        ..ServeConfig::default()
    };
    let mut service = NpuService::new(&net, config).with_fault_injector(FaultInjector::new(plan));
    let mut tickets = Vec::new();
    for i in 0..30u64 {
        let opts = npu_serve::SubmitOptions {
            deadline: Some(ms(i + 12)),
            ..npu_serve::SubmitOptions::default()
        };
        match service.submit_with(&request(i as usize), ms(i), opts) {
            Ok(t) => tickets.push(t),
            Err(err) => assert!(
                err.retry_after().is_some() || err.retry_class() == npu_serve::RetryClass::Terminal
            ),
        }
    }
    service.flush(ms(500));
    let mut outcomes = 0;
    for t in tickets {
        match service.take_outcome(t).expect("flushed") {
            Ok(reply) => assert!(reply.output.is_some()),
            Err(err) => assert!(matches!(
                err,
                npu_serve::ServeError::DeadlineExceeded { .. }
            )),
        }
        outcomes += 1;
    }
    assert!(outcomes > 0);
    // The invariant under any storm: zero late replies.
    assert_eq!(service.stats().deadline_misses, 0);
    assert_eq!(service.stats().dropped(), 0);
}

/// A churn-friendly tier: two racks, a 50 ms heartbeat with a 160 ms
/// timeout, and a cooldown long enough that only an explicit rejoin can
/// half-open a tripped breaker within a test.
fn tier() -> TieredService {
    TieredService::new(
        &mlp(),
        TierConfig {
            racks: 2,
            hedge_min: SimDuration::from_millis(20),
            breaker_cooldown: 1_000,
            ..TierConfig::default()
        },
    )
}

fn tier_request(seed: usize) -> Matrix {
    request(seed)
}

#[test]
fn breaker_opens_while_its_board_is_crashing() {
    let mut service = tier();
    // The board behind rack 0 starts crashing at t=0: its heartbeats stop
    // mid-run while a request is still in flight on the rack.
    service.set_heartbeat_silent(0, true, ms(0));
    let early = service
        .submit(
            tier_request(0),
            ms(10),
            TierSubmit {
                rack: 0,
                client: ClientId::new(1),
                deadline: None,
            },
        )
        .expect("valid request");
    // The flush crosses the 160 ms silence threshold: the failure
    // detector must suspect the rack and trip its breaker open — and the
    // in-flight request must still resolve exactly once.
    service.flush(ms(300));
    assert!(service.suspected(0), "silent rack must be suspected");
    assert_eq!(
        service.breaker_state(TierScope::Rack(0)),
        BreakerState::Open
    );
    assert!(
        service.take_outcome(early).is_some(),
        "the in-flight request must drain despite the crash"
    );
    let trip = service
        .drain_transitions()
        .into_iter()
        .find(|t| t.scope == TierScope::Rack(0) && t.to == BreakerState::Open)
        .expect("the detector trip must be traced");
    assert_eq!(trip.from, BreakerState::Closed);
    assert!(!trip.probation);
    assert_eq!(
        trip.at,
        ms(160),
        "the trip carries the exact suspicion instant"
    );

    // Later submissions from the crashed board's clients fail over away
    // from the dead rack; nothing is lost.
    let late = service
        .submit(
            tier_request(1),
            ms(350),
            TierSubmit {
                rack: 0,
                client: ClientId::new(1),
                deadline: None,
            },
        )
        .expect("valid request");
    service.flush(ms(500));
    match service.take_outcome(late).expect("flushed") {
        TierOutcome::Reply(reply) => assert!(reply.failed_over, "a dead rack cannot serve"),
        TierOutcome::Failed(err) => panic!("failover path lost the request: {err}"),
    }
    let stats = *service.stats();
    assert_eq!(stats.suspects, 1);
    assert_eq!(stats.replies + stats.failed, stats.submitted);
    assert!(stats.failovers > 0);
}

#[test]
fn rejoining_board_starts_with_a_half_open_breaker() {
    let mut service = tier();
    // Crash: silence trips the rack breaker open (as above).
    service.set_heartbeat_silent(0, true, ms(0));
    service.flush(ms(300));
    assert_eq!(
        service.breaker_state(TierScope::Rack(0)),
        BreakerState::Open
    );
    service.drain_transitions();

    // Rejoin: heartbeats resume and the fleet enters the rack into
    // probation — the breaker must come back half-open, never closed.
    service.set_heartbeat_silent(0, false, ms(400));
    service.begin_rack_probation(0, ms(400));
    assert_eq!(
        service.breaker_state(TierScope::Rack(0)),
        BreakerState::HalfOpen
    );
    let probation = service
        .drain_transitions()
        .into_iter()
        .find(|t| t.scope == TierScope::Rack(0) && t.to == BreakerState::HalfOpen)
        .expect("the probation entry must be traced");
    assert!(probation.probation);
    assert_eq!(probation.from, BreakerState::Open);

    // Let the detector hear a heartbeat again, then send the probe: a
    // successful request through the rejoined rack closes the breaker.
    service.flush(ms(500));
    assert!(!service.suspected(0), "heard heartbeats clear suspicion");
    let probe = service
        .submit(
            tier_request(2),
            ms(510),
            TierSubmit {
                rack: 0,
                client: ClientId::new(2),
                deadline: None,
            },
        )
        .expect("valid request");
    service.flush(ms(700));
    match service.take_outcome(probe).expect("flushed") {
        TierOutcome::Reply(reply) => {
            assert!(!reply.failed_over, "a half-open rack admits its probe");
            assert_eq!(reply.served_by, npu_serve::ServedBy::Rack(0));
        }
        TierOutcome::Failed(err) => panic!("the probe must succeed: {err}"),
    }
    assert_eq!(
        service.breaker_state(TierScope::Rack(0)),
        BreakerState::Closed
    );
    let closes = service
        .drain_transitions()
        .into_iter()
        .filter(|t| t.scope == TierScope::Rack(0))
        .collect::<Vec<_>>();
    assert!(closes
        .iter()
        .any(|t| t.from == BreakerState::HalfOpen && t.to == BreakerState::Closed));
    let stats = *service.stats();
    assert_eq!(stats.recoveries, 1);
    assert_eq!(stats.replies + stats.failed, stats.submitted);
}

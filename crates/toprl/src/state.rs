//! State quantization and RL hyper-parameters.

use hikey_platform::{AppSnapshot, Platform};
use hmc_types::{Cluster, NUM_CORES};
use serde::{Deserialize, Serialize};

/// Actions: one migration target per core.
pub const NUM_ACTIONS: usize = NUM_CORES;

/// Quantized state-space size. With 8 actions this yields the paper's
/// Q-table of 288 × 8 = 2,304 entries.
pub const NUM_STATES: usize = 2 * 2 * 3 * 4 * 3 * 2;

/// Bins of the L2D access-rate feature (accesses per second).
const L2D_THRESHOLDS: [f64; 2] = [10.0e6, 40.0e6];

/// Q-learning hyper-parameters (taken from the paper / its reference
/// [Lu et al. 2015]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RlConfig {
    /// Exploration probability of the ε-greedy policy.
    pub epsilon: f64,
    /// Discount factor γ.
    pub gamma: f32,
    /// Learning rate α.
    pub alpha: f32,
    /// Reward baseline: `r = reward_base − T`.
    pub reward_base: f32,
    /// Reward on any QoS violation (empirically tuned in the paper).
    pub qos_penalty: f32,
}

impl Default for RlConfig {
    fn default() -> Self {
        RlConfig {
            epsilon: 0.1,
            gamma: 0.8,
            alpha: 0.05,
            reward_base: 80.0,
            qos_penalty: -200.0,
        }
    }
}

/// Quantizes an application's observation into a discrete state index.
///
/// Dimensions: AoI cluster (2) × QoS-met (2) × L2D bin (3) × LITTLE V/f
/// bin (4) × big V/f bin (3) × other-cluster-has-free-core (2).
pub fn quantize_state(platform: &Platform, snapshot: &AppSnapshot) -> usize {
    let cluster = snapshot.core.cluster().index(); // 2
    let qos_met = usize::from(snapshot.qos_current.meets(snapshot.qos_target.ips())); // 2
    let l2d = L2D_THRESHOLDS
        .iter()
        .position(|&t| snapshot.l2d_per_sec < t)
        .unwrap_or(L2D_THRESHOLDS.len()); // 3
    let fl_bin = bin_level(
        platform.cluster_level(Cluster::Little),
        platform.opp_table(Cluster::Little).len(),
        4,
    ); // 4
    let fb_bin = bin_level(
        platform.cluster_level(Cluster::Big),
        platform.opp_table(Cluster::Big).len(),
        3,
    ); // 3
    let other_free = usize::from(
        snapshot
            .core
            .cluster()
            .other()
            .cores()
            .any(|c| platform.apps_on_core(c) == 0),
    ); // 2
    let state = ((((cluster * 2 + qos_met) * 3 + l2d) * 4 + fl_bin) * 3 + fb_bin) * 2 + other_free;
    debug_assert!(state < NUM_STATES);
    state
}

/// Maps an OPP index in `0..table_len` onto `0..bins`.
fn bin_level(level: usize, table_len: usize, bins: usize) -> usize {
    (level * bins / table_len).min(bins - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hikey_platform::PlatformConfig;
    use hmc_types::CoreId;
    use workloads::{Benchmark, QosSpec, Workload};

    #[test]
    fn state_space_matches_paper_qtable_size() {
        assert_eq!(NUM_STATES * NUM_ACTIONS, 2304);
    }

    #[test]
    fn bin_level_covers_range() {
        assert_eq!(bin_level(0, 7, 4), 0);
        assert_eq!(bin_level(6, 7, 4), 3);
        assert_eq!(bin_level(8, 9, 3), 2);
        for level in 0..9 {
            assert!(bin_level(level, 9, 3) < 3);
        }
    }

    #[test]
    fn distinct_observations_map_to_distinct_states() {
        let mut platform = Platform::new(PlatformConfig::default());
        let w = Workload::single(Benchmark::Adi, QosSpec::FractionOfMaxBig(0.3));
        let spec = w.iter().next().unwrap();
        platform.admit(spec, CoreId::new(1)); // LITTLE
        platform.admit(spec, CoreId::new(5)); // big
        for _ in 0..200 {
            platform.tick();
        }
        let snaps = platform.snapshots();
        let s0 = quantize_state(&platform, &snaps[0]);
        let s1 = quantize_state(&platform, &snaps[1]);
        assert_ne!(s0, s1, "cluster dimension must separate the two");
        assert!(s0 < NUM_STATES && s1 < NUM_STATES);
    }

    #[test]
    fn frequency_change_changes_state() {
        let mut platform = Platform::new(PlatformConfig::default());
        let w = Workload::single(Benchmark::Adi, QosSpec::FractionOfMaxBig(0.3));
        platform.admit(w.iter().next().unwrap(), CoreId::new(5));
        for _ in 0..200 {
            platform.tick();
        }
        let hi = quantize_state(&platform, &platform.snapshots()[0]);
        platform.set_cluster_level(Cluster::Big, 0);
        for _ in 0..200 {
            platform.tick();
        }
        let lo = quantize_state(&platform, &platform.snapshots()[0]);
        assert_ne!(hi, lo);
    }
}

//! Crash-safe segmented pre-training: Q-table + exploration-schedule
//! snapshots.
//!
//! [`TopRlGovernor::pretrain`] runs one long monolithic simulation — a
//! crash near convergence loses hours of learning. [`pretrain_segmented`]
//! instead splits pre-training into fixed-length segments, each driven by
//! RNG streams derived from `(seed, segment)` rather than one sequential
//! RNG, and snapshots the shared [`QTable`], the [`ExplorationSchedule`]
//! and the segment cursor into a [`CheckpointStore`] after every segment.
//! A run interrupted after any segment resumes from the newest valid
//! snapshot and converges to the *same* table an uninterrupted run
//! produces; corrupt snapshots are skipped and quarantined, and snapshots
//! written under a different RNG implementation or schedule are discarded
//! (recorded in the outcome, never a panic).

use std::path::Path;

use checkpoint::{CheckpointError, CheckpointStore, Decoder, Encoder};
use hikey_platform::{SimConfig, Simulator};
use hmc_types::{SimDuration, SimTime};
use rand::RngCore;
use trace::{CheckpointScope, TraceEvent, TraceRecorder};
use workloads::{Benchmark, MixedWorkloadConfig, WorkloadGenerator};

use crate::governor::TopRlGovernor;
use crate::qtable::QTable;

/// Checkpoint kind tag for RL pre-training snapshots.
pub const RL_PRETRAIN_KIND: &str = "rl-pretrain";

/// Stream tag for per-segment workload RNGs.
const WORKLOAD_STREAM: u64 = 0x3A11_0C47_9D2E_5B01;
/// Stream tag for per-segment governor (exploration) RNGs.
const GOVERNOR_STREAM: u64 = 0x7C39_41E8_22B5_D600;

/// A decaying ε-greedy exploration schedule: segment `k` explores with
/// `max(min_epsilon, initial_epsilon · decay^k)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExplorationSchedule {
    /// ε of the first segment.
    pub initial_epsilon: f64,
    /// Per-segment multiplicative decay.
    pub decay: f64,
    /// Exploration floor.
    pub min_epsilon: f64,
}

impl Default for ExplorationSchedule {
    fn default() -> Self {
        ExplorationSchedule {
            initial_epsilon: 0.2,
            decay: 0.85,
            min_epsilon: 0.02,
        }
    }
}

impl ExplorationSchedule {
    /// ε used in segment `segment`.
    pub fn epsilon_at(&self, segment: u64) -> f64 {
        (self.initial_epsilon * self.decay.powi(segment.min(i32::MAX as u64) as i32))
            .max(self.min_epsilon)
    }
}

/// The persisted pre-training state.
#[derive(Debug, Clone, PartialEq)]
pub struct PretrainCheckpoint {
    /// The shared Q-table learned so far.
    pub qtable: QTable,
    /// The schedule the run was started with (a resume under a different
    /// schedule would diverge, so a mismatch discards the snapshot).
    pub schedule: ExplorationSchedule,
    /// The segment the resumed run will execute next.
    pub next_segment: u64,
    /// Q-table updates across all completed segments.
    pub updates: u64,
    /// Cumulative reward across all completed segments.
    pub cumulative_reward: f64,
}

impl PretrainCheckpoint {
    /// Serializes into a checkpoint payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_f32s(self.qtable.values());
        enc.put_f64(self.schedule.initial_epsilon);
        enc.put_f64(self.schedule.decay);
        enc.put_f64(self.schedule.min_epsilon);
        enc.put_u64(self.next_segment);
        enc.put_u64(self.updates);
        enc.put_f64(self.cumulative_reward);
        enc.finish()
    }

    /// Deserializes a payload produced by [`PretrainCheckpoint::encode`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency; never panics.
    pub fn decode(payload: &[u8]) -> Result<PretrainCheckpoint, String> {
        let err = |e: checkpoint::CodecError| e.to_string();
        let mut dec = Decoder::new(payload);
        let qtable = QTable::from_values(dec.get_f32s().map_err(err)?)?;
        let schedule = ExplorationSchedule {
            initial_epsilon: dec.get_f64().map_err(err)?,
            decay: dec.get_f64().map_err(err)?,
            min_epsilon: dec.get_f64().map_err(err)?,
        };
        let next_segment = dec.get_u64().map_err(err)?;
        let updates = dec.get_u64().map_err(err)?;
        let cumulative_reward = dec.get_f64().map_err(err)?;
        dec.expect_end().map_err(err)?;
        Ok(PretrainCheckpoint {
            qtable,
            schedule,
            next_segment,
            updates,
            cumulative_reward,
        })
    }
}

/// Settings of [`pretrain_segmented`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PretrainConfig {
    /// Total segments to run.
    pub segments: u64,
    /// Simulated time per segment.
    pub segment_time: SimDuration,
    /// Exploration schedule over segments.
    pub schedule: ExplorationSchedule,
    /// Snapshots kept on disk.
    pub retain: usize,
    /// Applications per segment's random training workload.
    pub apps_per_segment: usize,
    /// Thread budget for pre-generating the per-segment workloads. Each
    /// segment's workload derives from `(seed, segment)` independently, so
    /// the generated apps are identical at every budget; the learning loop
    /// itself stays sequential (segment `k+1` starts from segment `k`'s
    /// Q-table). Never persisted in snapshots.
    pub budget: par::Budget,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig {
            segments: 6,
            segment_time: SimDuration::from_secs(120),
            schedule: ExplorationSchedule::default(),
            retain: 3,
            apps_per_segment: 40,
            budget: par::Budget::serial(),
        }
    }
}

/// Outcome of a (possibly resumed) segmented pre-training run.
#[derive(Debug)]
pub struct SegmentedPretrainOutcome {
    /// The learned table — converged when `completed`, partial otherwise.
    pub qtable: QTable,
    /// `false` when interrupted before all segments finished.
    pub completed: bool,
    /// Segments executed in this invocation.
    pub segments_run: u64,
    /// Sequence number of the snapshot the run resumed from.
    pub resumed_from_seq: Option<u64>,
    /// Corrupt snapshots skipped (and quarantined) during recovery.
    pub corrupt_skipped: usize,
    /// Snapshots written by this invocation.
    pub snapshots_written: usize,
    /// Why a structurally valid newest snapshot was discarded.
    pub discarded: Option<String>,
    /// Q-table updates across all segments (including resumed-over ones).
    pub updates: u64,
    /// Cumulative reward across all segments.
    pub cumulative_reward: f64,
}

/// Runs (or resumes) segmented pre-training, snapshotting into `dir` after
/// every segment. `interrupt_after_segments` simulates a crash after that
/// many segments have executed in this invocation.
///
/// # Errors
///
/// Returns [`CheckpointError`] when the store cannot be opened or a
/// snapshot cannot be written. Corrupt snapshots on disk are skipped,
/// quarantined and counted — not errors.
pub fn pretrain_segmented(
    seed: u64,
    config: &PretrainConfig,
    dir: &Path,
    interrupt_after_segments: Option<u64>,
    mut recorder: Option<&mut TraceRecorder>,
) -> Result<SegmentedPretrainOutcome, CheckpointError> {
    let mut store = CheckpointStore::open(dir, RL_PRETRAIN_KIND, config.retain)?;
    let recovery = store.load_latest()?;
    let corrupt_skipped = recovery.skipped.len();
    let fingerprint = nn::rng_stream_fingerprint();

    let mut table = QTable::new();
    let mut start_segment = 0u64;
    let mut updates = 0u64;
    let mut cumulative_reward = 0.0f64;
    let mut resumed_from_seq = None;
    let mut discarded = None;

    if let Some(snapshot) = recovery.snapshot {
        if snapshot.rng_fingerprint != fingerprint {
            discarded = Some(format!(
                "RNG stream fingerprint mismatch: snapshot {:016x}, this build {:016x}",
                snapshot.rng_fingerprint, fingerprint
            ));
        } else {
            match PretrainCheckpoint::decode(&snapshot.payload) {
                Ok(ckpt) if ckpt.schedule == config.schedule => {
                    resumed_from_seq = Some(snapshot.seq);
                    if let Some(rec) = recorder.as_deref_mut() {
                        rec.record(TraceEvent::CheckpointRestored {
                            at: SimTime::ZERO,
                            scope: CheckpointScope::Rl,
                            seq: snapshot.seq,
                            skipped: corrupt_skipped as u32,
                        });
                    }
                    table = ckpt.qtable;
                    start_segment = ckpt.next_segment;
                    updates = ckpt.updates;
                    cumulative_reward = ckpt.cumulative_reward;
                }
                Ok(_) => {
                    discarded = Some("snapshot exploration schedule differs from config".into());
                }
                Err(e) => discarded = Some(format!("snapshot payload rejected: {e}")),
            }
        }
    }

    // Segment workloads derive from (seed, WORKLOAD_STREAM, segment)
    // independently of each other and of the learning loop, so they can be
    // pre-generated in parallel; par_map returns them in segment order.
    let workload_cfg = MixedWorkloadConfig {
        num_apps: config.apps_per_segment,
        mean_interarrival: SimDuration::from_secs(8),
        benchmarks: Benchmark::training_set().to_vec(),
        total_instructions: Some(8_000_000_000),
        ..MixedWorkloadConfig::default()
    };
    let pending: Vec<u64> = (start_segment..config.segments).collect();
    let workloads = par::par_map(&config.budget, &pending, |_, &segment| {
        let mut workload_rng = nn::derive_rng(seed, WORKLOAD_STREAM, segment);
        WorkloadGenerator::mixed(&workload_cfg, &mut workload_rng)
    });

    let mut segments_run = 0u64;
    let mut snapshots_written = 0usize;
    let mut completed = true;
    for (workload, &segment) in workloads.iter().zip(&pending) {
        let governor_seed = nn::derive_rng(seed, GOVERNOR_STREAM, segment).next_u64();
        let mut governor = TopRlGovernor::with_qtable(table, governor_seed)
            .with_epsilon(config.schedule.epsilon_at(segment));
        let sim = SimConfig {
            max_duration: config.segment_time,
            stop_when_idle: false,
            ..SimConfig::default()
        };
        let _ = Simulator::new(sim).run(workload, &mut governor);
        let stats = governor.stats();
        updates += stats.updates;
        cumulative_reward += stats.cumulative_reward;
        table = governor.into_qtable();
        segments_run += 1;

        let payload = PretrainCheckpoint {
            qtable: table.clone(),
            schedule: config.schedule,
            next_segment: segment + 1,
            updates,
            cumulative_reward,
        }
        .encode();
        let saved = store.save(&payload, fingerprint)?;
        snapshots_written += 1;
        if let Some(rec) = recorder.as_deref_mut() {
            rec.record(TraceEvent::CheckpointSaved {
                at: SimTime::from_nanos(segment + 1),
                scope: CheckpointScope::Rl,
                seq: saved.seq,
                bytes: saved.bytes,
            });
        }

        if interrupt_after_segments.is_some_and(|n| segments_run >= n)
            && segment + 1 < config.segments
        {
            completed = false;
            break;
        }
    }

    Ok(SegmentedPretrainOutcome {
        qtable: table,
        completed,
        segments_run,
        resumed_from_seq,
        corrupt_skipped,
        snapshots_written,
        discarded,
        updates,
        cumulative_reward,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("toprl-ckpt-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn quick_config() -> PretrainConfig {
        PretrainConfig {
            segments: 3,
            segment_time: SimDuration::from_secs(5),
            apps_per_segment: 6,
            ..PretrainConfig::default()
        }
    }

    #[test]
    fn schedule_decays_to_floor() {
        let s = ExplorationSchedule::default();
        assert_eq!(s.epsilon_at(0), s.initial_epsilon);
        assert!(s.epsilon_at(1) < s.epsilon_at(0));
        assert_eq!(s.epsilon_at(1000), s.min_epsilon);
    }

    #[test]
    fn checkpoint_round_trips_and_rejects_malformed() {
        let mut qtable = QTable::new();
        qtable.update(3, 1, 0.5);
        qtable.update(100, 7, -2.0);
        let ckpt = PretrainCheckpoint {
            qtable,
            schedule: ExplorationSchedule::default(),
            next_segment: 4,
            updates: 1234,
            cumulative_reward: -56.5,
        };
        let bytes = ckpt.encode();
        assert_eq!(PretrainCheckpoint::decode(&bytes).unwrap(), ckpt);
        for len in [0, 1, 8, bytes.len() - 1] {
            assert!(
                PretrainCheckpoint::decode(&bytes[..len]).is_err(),
                "len={len}"
            );
        }
    }

    #[test]
    fn qtable_from_values_validates() {
        assert!(QTable::from_values(vec![0.0; 3]).is_err());
        let mut v = vec![0.0; crate::NUM_STATES * crate::NUM_ACTIONS];
        v[7] = f32::NAN;
        assert!(QTable::from_values(v).is_err());
        let ok = QTable::from_values(vec![1.5; crate::NUM_STATES * crate::NUM_ACTIONS]).unwrap();
        assert_eq!(ok.value(0, 0), 1.5);
    }

    #[test]
    fn interrupted_resumed_pretraining_matches_uninterrupted() {
        let config = quick_config();

        let ref_dir = tmp_dir("ref");
        let reference = pretrain_segmented(17, &config, &ref_dir, None, None).unwrap();
        assert!(reference.completed);
        assert_eq!(reference.segments_run, 3);
        assert!(reference.qtable.nonzero_entries() > 0);

        let dir = tmp_dir("resume");
        let first = pretrain_segmented(17, &config, &dir, Some(1), None).unwrap();
        assert!(!first.completed);
        assert_eq!(first.segments_run, 1);

        let mut rec = trace::TraceConfig::full().recorder().unwrap();
        let second = pretrain_segmented(17, &config, &dir, None, Some(&mut rec)).unwrap();
        assert!(second.completed);
        assert_eq!(second.resumed_from_seq, Some(0));
        assert_eq!(second.qtable, reference.qtable);
        assert_eq!(second.updates, reference.updates);
        assert!(
            (second.cumulative_reward - reference.cumulative_reward).abs() < 1e-9,
            "reward history must match"
        );
        let log = rec.finish();
        assert!(log
            .events
            .iter()
            .any(|e| e.kind() == trace::EventKind::CheckpointRestored));

        std::fs::remove_dir_all(&ref_dir).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_previous() {
        let config = quick_config();
        let ref_dir = tmp_dir("cref");
        let reference = pretrain_segmented(23, &config, &ref_dir, None, None).unwrap();

        let dir = tmp_dir("corrupt");
        pretrain_segmented(23, &config, &dir, Some(2), None).unwrap();
        let store = CheckpointStore::open(&dir, RL_PRETRAIN_KIND, 3).unwrap();
        let newest = store.snapshot_paths().unwrap().pop().unwrap();
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(&newest, &bytes).unwrap();

        let resumed = pretrain_segmented(23, &config, &dir, None, None).unwrap();
        assert_eq!(resumed.corrupt_skipped, 1);
        assert_eq!(resumed.resumed_from_seq, Some(0));
        assert_eq!(resumed.segments_run, 2);
        assert_eq!(resumed.qtable, reference.qtable);

        std::fs::remove_dir_all(&ref_dir).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schedule_mismatch_discards_snapshot() {
        let config = quick_config();
        let dir = tmp_dir("sched");
        pretrain_segmented(29, &config, &dir, Some(1), None).unwrap();

        let changed = PretrainConfig {
            schedule: ExplorationSchedule {
                initial_epsilon: 0.5,
                ..ExplorationSchedule::default()
            },
            ..config
        };
        let outcome = pretrain_segmented(29, &changed, &dir, Some(1), None).unwrap();
        assert!(outcome.resumed_from_seq.is_none());
        assert!(outcome.discarded.as_deref().unwrap().contains("schedule"));

        std::fs::remove_dir_all(&dir).ok();
    }
}

//! **TOP-RL** — the paper's RL baseline (§6): multi-agent tabular
//! Q-learning for application migration, sharing the TOP-IL DVFS control
//! loop.
//!
//! One logical agent exists per running application; all agents share a
//! single [`QTable`] ("to improve generalization to different applications,
//! and to immediately start with a trained policy when a new application
//! arrives"). Each epoch every agent proposes an ε-greedy migration; a
//! [mediator](TopRlGovernor) executes only the proposal with the highest
//! Q-value and later routes the observed reward exclusively to that agent.
//!
//! The reward combines objective and constraint into one scalar —
//! precisely the structural weakness the paper attributes RL's instability
//! to:
//!
//! ```text
//! r = 80 °C − T      if every application meets its QoS target
//! r = −200           otherwise
//! ```

#![warn(missing_docs)]

pub mod ckpt;
mod governor;
mod qtable;
mod state;

pub use ckpt::{
    pretrain_segmented, ExplorationSchedule, PretrainCheckpoint, PretrainConfig,
    SegmentedPretrainOutcome, RL_PRETRAIN_KIND,
};
pub use governor::{RlStats, TopRlGovernor};
pub use qtable::QTable;
pub use state::{quantize_state, RlConfig, NUM_ACTIONS, NUM_STATES};

//! The shared tabular Q-function.

use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::state::{NUM_ACTIONS, NUM_STATES};

/// The Q-table shared by all per-application agents (2,304 entries, like
/// the paper reports).
///
/// # Examples
///
/// ```
/// use toprl::QTable;
/// let mut q = QTable::new();
/// q.update(3, 1, 0.5);
/// assert!(q.value(3, 1) > q.value(3, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QTable {
    values: Vec<f32>,
}

impl QTable {
    /// Creates a table initialized with constant values (zero), as in the
    /// paper.
    pub fn new() -> Self {
        QTable {
            values: vec![0.0; NUM_STATES * NUM_ACTIONS],
        }
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the table is empty (never for the default shape).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value of `(state, action)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn value(&self, state: usize, action: usize) -> f32 {
        assert!(
            state < NUM_STATES && action < NUM_ACTIONS,
            "index out of range"
        );
        self.values[state * NUM_ACTIONS + action]
    }

    /// Sets the raw value of `(state, action)` (used when loading a
    /// pre-trained table).
    pub fn update(&mut self, state: usize, action: usize, value: f32) {
        assert!(
            state < NUM_STATES && action < NUM_ACTIONS,
            "index out of range"
        );
        self.values[state * NUM_ACTIONS + action] = value;
    }

    /// The greedy action and its value in `state`.
    pub fn best_action(&self, state: usize) -> (usize, f32) {
        let row = &self.values[state * NUM_ACTIONS..(state + 1) * NUM_ACTIONS];
        let mut best = (0usize, row[0]);
        for (a, &v) in row.iter().enumerate().skip(1) {
            if v > best.1 {
                best = (a, v);
            }
        }
        best
    }

    /// The maximum Q-value in `state`.
    pub fn max_value(&self, state: usize) -> f32 {
        self.best_action(state).1
    }

    /// ε-greedy action selection.
    pub fn epsilon_greedy<R: RngExt + ?Sized>(
        &self,
        state: usize,
        epsilon: f64,
        rng: &mut R,
    ) -> usize {
        if rng.random::<f64>() < epsilon {
            rng.random_range(0..NUM_ACTIONS)
        } else {
            self.best_action(state).0
        }
    }

    /// One Q-learning update:
    /// `Q(s,a) ← Q(s,a) + α · (r + γ·max_a' Q(s',a') − Q(s,a))`.
    /// Pass `next_state = None` for a terminal transition (the application
    /// finished).
    pub fn learn(
        &mut self,
        state: usize,
        action: usize,
        reward: f32,
        next_state: Option<usize>,
        alpha: f32,
        gamma: f32,
    ) {
        let target = reward + next_state.map_or(0.0, |s| gamma * self.max_value(s));
        let idx = state * NUM_ACTIONS + action;
        self.values[idx] += alpha * (target - self.values[idx]);
    }

    /// Number of entries that have been touched by learning.
    pub fn nonzero_entries(&self) -> usize {
        self.values.iter().filter(|&&v| v != 0.0).count()
    }

    /// The raw values, row-major by state (for persistence).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Rebuilds a table from raw values (the checkpoint-restore path).
    ///
    /// # Errors
    ///
    /// Rejects a value count other than `NUM_STATES × NUM_ACTIONS` and any
    /// non-finite entry.
    pub fn from_values(values: Vec<f32>) -> Result<QTable, String> {
        if values.len() != NUM_STATES * NUM_ACTIONS {
            return Err(format!(
                "Q-table carries {} values, expected {}",
                values.len(),
                NUM_STATES * NUM_ACTIONS
            ));
        }
        if let Some(i) = values.iter().position(|v| !v.is_finite()) {
            return Err(format!("Q-table value {i} is not finite"));
        }
        Ok(QTable { values })
    }
}

impl Default for QTable {
    fn default() -> Self {
        QTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_matches_paper() {
        assert_eq!(QTable::new().len(), 2304);
    }

    #[test]
    fn learning_moves_toward_target() {
        let mut q = QTable::new();
        q.learn(0, 2, 10.0, None, 0.5, 0.8);
        assert_eq!(q.value(0, 2), 5.0);
        q.learn(0, 2, 10.0, None, 0.5, 0.8);
        assert_eq!(q.value(0, 2), 7.5);
    }

    #[test]
    fn bootstrap_uses_next_state_max() {
        let mut q = QTable::new();
        q.update(1, 4, 20.0);
        q.learn(0, 0, 0.0, Some(1), 1.0, 0.5);
        assert_eq!(q.value(0, 0), 10.0); // 0 + 0.5 * 20
    }

    #[test]
    fn greedy_picks_max_and_epsilon_explores() {
        let mut q = QTable::new();
        q.update(5, 3, 1.0);
        assert_eq!(q.best_action(5), (3, 1.0));
        let mut rng = StdRng::seed_from_u64(0);
        // ε = 1: uniform over actions, must eventually differ from greedy.
        let explored: Vec<usize> = (0..50)
            .map(|_| q.epsilon_greedy(5, 1.0, &mut rng))
            .collect();
        assert!(explored.iter().any(|&a| a != 3));
        // ε = 0: always greedy.
        assert!((0..20).all(|_| q.epsilon_greedy(5, 0.0, &mut rng) == 3));
    }

    #[test]
    fn repeated_learning_converges_to_reward() {
        let mut q = QTable::new();
        for _ in 0..500 {
            q.learn(7, 1, 42.0, None, 0.05, 0.8);
        }
        assert!((q.value(7, 1) - 42.0).abs() < 0.5);
    }
}

//! The TOP-RL governor: per-application agents, mediator, shared Q-table,
//! and the same DVFS control loop as TOP-IL (for a fair comparison).

use hikey_platform::{default_placement, Platform, Policy};
use hmc_types::AppModel;
use hmc_types::{AppId, CoreId, QosTarget, SimDuration};
use rand::rngs::StdRng;
use rand::SeedableRng;
use topil::dvfs::DvfsControlLoop;
use workloads::{MixedWorkloadConfig, WorkloadGenerator};

use crate::qtable::QTable;
use crate::state::{quantize_state, RlConfig, NUM_ACTIONS};

/// Migration epoch (same as TOP-IL's 500 ms for a fair comparison).
pub const EPOCH: SimDuration = SimDuration::from_millis(500);
/// DVFS control-loop period.
const DVFS_PERIOD: SimDuration = SimDuration::from_millis(50);

/// Run-time statistics of the RL governor.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RlStats {
    /// Migration epochs executed.
    pub epochs: u64,
    /// Migrations actually executed by the mediator.
    pub migrations_executed: u64,
    /// Q-table updates performed.
    pub updates: u64,
    /// Cumulative reward observed.
    pub cumulative_reward: f64,
}

/// The multi-agent Q-learning migration governor.
///
/// # Examples
///
/// ```
/// use toprl::TopRlGovernor;
/// use hikey_platform::{SimConfig, Simulator};
/// use hmc_types::SimDuration;
/// use workloads::{Benchmark, QosSpec, Workload};
///
/// let mut governor = TopRlGovernor::new(0);
/// let config = SimConfig { max_duration: SimDuration::from_secs(2), ..SimConfig::default() };
/// let w = Workload::single(Benchmark::Adi, QosSpec::FractionOfMaxBig(0.3));
/// let report = Simulator::new(config).run(&w, &mut governor);
/// assert_eq!(report.policy, "TOP-RL");
/// ```
#[derive(Debug)]
pub struct TopRlGovernor {
    qtable: QTable,
    config: RlConfig,
    rng: StdRng,
    dvfs: DvfsControlLoop,
    dvfs_skip: u8,
    /// The agent selected by the mediator last epoch: `(app, state,
    /// action)` — the only agent that learns from the next reward.
    pending: Option<(AppId, usize, usize)>,
    stats: RlStats,
    learning: bool,
}

impl TopRlGovernor {
    /// Creates a governor with a zero-initialized Q-table.
    pub fn new(seed: u64) -> Self {
        Self::with_qtable(QTable::new(), seed)
    }

    /// Creates a governor from a pre-trained Q-table (the paper stores the
    /// converged table and loads it for each evaluation run).
    pub fn with_qtable(qtable: QTable, seed: u64) -> Self {
        TopRlGovernor {
            qtable,
            config: RlConfig::default(),
            rng: StdRng::seed_from_u64(seed),
            dvfs: DvfsControlLoop::new(),
            dvfs_skip: 0,
            pending: None,
            stats: RlStats::default(),
            learning: true,
        }
    }

    /// Overrides the ε-greedy exploration probability (used by the
    /// segmented pre-training schedule).
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.config.epsilon = epsilon;
        self
    }

    /// Disables run-time exploration and learning (not used in the paper —
    /// online learning is inherent to its RL baseline — but useful for
    /// ablations).
    pub fn frozen(mut self) -> Self {
        self.learning = false;
        self
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> RlStats {
        self.stats
    }

    /// A reference to the (shared) Q-table.
    pub fn qtable(&self) -> &QTable {
        &self.qtable
    }

    /// Extracts the learned Q-table.
    pub fn into_qtable(self) -> QTable {
        self.qtable
    }

    /// Pre-trains on a random workload until `sim_time` has elapsed (the
    /// paper trains ~3 h until convergence on a workload disjoint from the
    /// evaluation), returning the learned table.
    pub fn pretrain(seed: u64, sim_time: SimDuration) -> QTable {
        use hikey_platform::{SimConfig, Simulator};
        let mut governor = TopRlGovernor::new(seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9E37_79B9));
        let config = SimConfig {
            max_duration: sim_time,
            stop_when_idle: false,
            ..SimConfig::default()
        };
        // Random training workload from the training benchmarks only.
        let workload_cfg = MixedWorkloadConfig {
            num_apps: 400,
            mean_interarrival: SimDuration::from_secs(8),
            benchmarks: workloads::Benchmark::training_set().to_vec(),
            total_instructions: Some(8_000_000_000),
            ..MixedWorkloadConfig::default()
        };
        let workload = WorkloadGenerator::mixed(&workload_cfg, &mut rng);
        let _ = Simulator::new(config).run(&workload, &mut governor);
        governor.into_qtable()
    }

    /// The scalar reward of the paper: `80 °C − T`, or −200 on any QoS
    /// violation.
    fn reward(&self, platform: &Platform) -> f32 {
        let any_violation = platform
            .snapshots()
            .iter()
            .any(|s| s.qos_target.is_violated_by(s.qos_current));
        if any_violation {
            self.config.qos_penalty
        } else {
            self.config.reward_base - platform.sensor().value() as f32
        }
    }

    fn migration_epoch(&mut self, platform: &mut Platform) {
        // 1. Learn from the previous epoch's executed action.
        if let Some((app, state, action)) = self.pending.take() {
            if self.learning {
                let reward = self.reward(platform);
                let next_state = platform
                    .snapshots()
                    .iter()
                    .find(|s| s.id == app)
                    .map(|s| quantize_state(platform, s));
                self.qtable.learn(
                    state,
                    action,
                    reward,
                    next_state,
                    self.config.alpha,
                    self.config.gamma,
                );
                self.stats.updates += 1;
                self.stats.cumulative_reward += reward as f64;
            }
        }

        // 2. Every agent proposes an action; the mediator executes the one
        //    with the highest Q-value.
        let snapshots = platform.snapshots();
        if snapshots.is_empty() {
            return;
        }
        let epsilon = if self.learning {
            self.config.epsilon
        } else {
            0.0
        };
        let mut proposals: Vec<(AppId, usize, usize, f32)> = Vec::with_capacity(snapshots.len());
        for snap in &snapshots {
            let state = quantize_state(platform, snap);
            let action = self.qtable.epsilon_greedy(state, epsilon, &mut self.rng);
            proposals.push((snap.id, state, action, self.qtable.value(state, action)));
        }
        let chosen = proposals
            .iter()
            .max_by(|a, b| a.3.partial_cmp(&b.3).expect("Q-values finite"))
            .copied()
            .expect("proposals is non-empty");
        let (app, state, action, q_value) = chosen;
        let target = CoreId::new(action);
        if platform.trace_enabled() {
            // The chosen agent's full Q-row doubles as the decision logits.
            platform.trace_emit(trace::TraceEvent::Decision {
                at: platform.now(),
                app: Some(app),
                target: Some(target),
                score: f64::from(q_value),
                logits: (0..NUM_ACTIONS)
                    .map(|a| self.qtable.value(state, a))
                    .collect(),
            });
        }
        let moved = snapshots
            .iter()
            .find(|s| s.id == app)
            .map(|s| s.core != target)
            .unwrap_or(false);
        platform.migrate(app, target);
        if moved {
            self.stats.migrations_executed += 1;
        }
        self.pending = Some((app, state, action));
        self.stats.epochs += 1;

        // A tiny CPU cost: table lookups per application.
        platform.consume_governor_time(SimDuration::from_micros(20 + 10 * snapshots.len() as u64));
    }
}

impl Policy for TopRlGovernor {
    fn name(&self) -> &str {
        "TOP-RL"
    }

    fn placement(&mut self, platform: &Platform, model: &AppModel, qos: QosTarget) -> CoreId {
        let _ = (model, qos);
        default_placement(platform)
    }

    fn on_tick(&mut self, platform: &mut Platform) {
        let now = platform.now();
        if now.is_multiple_of(EPOCH) && platform.app_count() > 0 {
            platform.trace_emit(trace::TraceEvent::EpochTick {
                at: now,
                epoch: self.stats.epochs,
            });
            self.migration_epoch(platform);
            self.dvfs_skip = 2;
        }
        if now.is_multiple_of(DVFS_PERIOD) {
            if self.dvfs_skip > 0 {
                self.dvfs_skip -= 1;
            } else {
                self.dvfs.run(platform);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hikey_platform::{SimConfig, Simulator};
    use hmc_types::SimTime;
    use workloads::{ArrivalSpec, Benchmark, QosSpec, Workload};

    #[test]
    fn runs_and_learns() {
        let mut governor = TopRlGovernor::new(1);
        let config = SimConfig {
            max_duration: SimDuration::from_secs(20),
            stop_when_idle: false,
            ..SimConfig::default()
        };
        let w = Workload::new(vec![ArrivalSpec {
            at: SimTime::ZERO,
            benchmark: Benchmark::Adi,
            qos: QosSpec::FractionOfMaxBig(0.3),
            total_instructions: Some(u64::MAX),
        }]);
        let _ = Simulator::new(config).run(&w, &mut governor);
        let stats = governor.stats();
        assert!(stats.epochs > 30);
        assert!(stats.updates > 25);
        assert!(
            governor.qtable().nonzero_entries() > 0,
            "learning must write"
        );
    }

    #[test]
    fn pretraining_improves_reward() {
        // A pre-trained table should collect more reward on a fresh run
        // than a blank table collects on its own first run.
        let table = TopRlGovernor::pretrain(3, SimDuration::from_secs(240));
        let run = |mut governor: TopRlGovernor| {
            let config = SimConfig {
                max_duration: SimDuration::from_secs(60),
                stop_when_idle: false,
                ..SimConfig::default()
            };
            let w = Workload::new(vec![ArrivalSpec {
                at: SimTime::ZERO,
                benchmark: Benchmark::SeidelTwoD,
                qos: QosSpec::FractionOfMaxBig(0.3),
                total_instructions: Some(u64::MAX),
            }]);
            let _ = Simulator::new(config).run(&w, &mut governor);
            governor.stats().cumulative_reward / governor.stats().updates.max(1) as f64
        };
        let blank = run(TopRlGovernor::new(5));
        let trained = run(TopRlGovernor::with_qtable(table, 5));
        assert!(
            trained >= blank - 5.0,
            "pre-trained mean reward {trained} should not be far below blank {blank}"
        );
    }

    #[test]
    fn mediator_executes_at_most_one_migration_per_epoch() {
        let mut governor = TopRlGovernor::new(2);
        let config = SimConfig {
            max_duration: SimDuration::from_secs(10),
            stop_when_idle: false,
            ..SimConfig::default()
        };
        let w = Workload::new(
            (0..4)
                .map(|_i| ArrivalSpec {
                    at: SimTime::ZERO,
                    benchmark: Benchmark::Syr2k,
                    qos: QosSpec::FractionOfMaxBig(0.2),
                    total_instructions: Some(u64::MAX),
                })
                .map(|mut a| {
                    a.at = SimTime::ZERO;
                    a
                })
                .collect(),
        );
        let report = Simulator::new(config).run(&w, &mut governor);
        let stats = governor.stats();
        assert!(
            report.metrics.migrations() <= stats.epochs,
            "at most one migration per epoch"
        );
    }

    #[test]
    fn impossible_targets_earn_the_penalty_reward() {
        let mut governor = TopRlGovernor::new(9);
        let config = SimConfig {
            max_duration: SimDuration::from_secs(10),
            stop_when_idle: false,
            ..SimConfig::default()
        };
        let w = Workload::new(vec![ArrivalSpec {
            at: SimTime::ZERO,
            benchmark: Benchmark::Adi,
            // Far beyond any achievable IPS: every epoch is a violation.
            qos: QosSpec::Absolute(hmc_types::Ips::new(1e15)),
            total_instructions: Some(u64::MAX),
        }]);
        let _ = Simulator::new(config).run(&w, &mut governor);
        let stats = governor.stats();
        assert!(stats.updates > 5);
        let mean_reward = stats.cumulative_reward / stats.updates as f64;
        assert!(
            (mean_reward - (-200.0)).abs() < 1e-6,
            "every reward must be the -200 penalty, mean {mean_reward}"
        );
    }

    #[test]
    fn healthy_run_earns_temperature_rewards() {
        let mut governor = TopRlGovernor::new(10);
        let config = SimConfig {
            max_duration: SimDuration::from_secs(10),
            stop_when_idle: false,
            ..SimConfig::default()
        };
        let w = Workload::new(vec![ArrivalSpec {
            at: SimTime::ZERO,
            benchmark: Benchmark::Adi,
            qos: QosSpec::FractionOfMaxBig(0.1),
            total_instructions: Some(u64::MAX),
        }]);
        let _ = Simulator::new(config).run(&w, &mut governor);
        let stats = governor.stats();
        let mean_reward = stats.cumulative_reward / stats.updates.max(1) as f64;
        // r = 80 °C − T with T in the 25–60 °C range.
        assert!(
            (20.0..56.0).contains(&mean_reward),
            "expected thermal rewards, mean {mean_reward}"
        );
    }

    #[test]
    fn frozen_governor_does_not_update() {
        let mut governor = TopRlGovernor::new(4).frozen();
        let config = SimConfig {
            max_duration: SimDuration::from_secs(5),
            stop_when_idle: false,
            ..SimConfig::default()
        };
        let w = Workload::single(Benchmark::Adi, QosSpec::FractionOfMaxBig(0.3));
        let _ = Simulator::new(config).run(&w, &mut governor);
        assert_eq!(governor.stats().updates, 0);
        assert_eq!(governor.qtable().nonzero_entries(), 0);
    }
}

//! Decision-latency benchmarks of the management policies: one DVFS-loop
//! iteration, one migration epoch (NPU vs. CPU inference), one RL epoch,
//! and one GTS balance pass.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use governors::LinuxGovernor;
use hikey_platform::{Platform, PlatformConfig, Policy};
use hmc_types::CoreId;
use topil::dvfs::DvfsControlLoop;
use topil::migration::{InferenceBackend, MigrationPolicy};
use topil::oracle::Scenario;
use topil::training::{IlTrainer, TrainSettings};
use toprl::TopRlGovernor;
use workloads::{Benchmark, QosSpec, Workload};

fn loaded_platform(apps: usize) -> Platform {
    let mut platform = Platform::new(PlatformConfig::default());
    let w = Workload::single(Benchmark::Syr2k, QosSpec::FractionOfMaxBig(0.2));
    let mut spec = *w.iter().next().unwrap();
    spec.total_instructions = Some(u64::MAX);
    for i in 0..apps {
        platform.admit(&spec, CoreId::new(i % 8));
    }
    for _ in 0..300 {
        platform.tick();
    }
    platform
}

fn quick_model() -> topil::IlModel {
    let mut settings = TrainSettings::default();
    settings.nn.max_epochs = 30;
    settings.nn.patience = 8;
    IlTrainer::new(settings).train(&Scenario::standard_set(6, 0), 0)
}

fn policy_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("policies");
    group.bench_function("dvfs_loop_8_apps", |b| {
        let mut platform = loaded_platform(8);
        let mut dvfs = DvfsControlLoop::new();
        b.iter(|| black_box(dvfs.run(&mut platform)));
    });

    let model = quick_model();
    for (label, backend) in [
        ("migration_npu_8_apps", InferenceBackend::Npu),
        ("migration_cpu_8_apps", InferenceBackend::Cpu),
    ] {
        group.bench_function(label, |b| {
            let mut platform = loaded_platform(8);
            let mut policy = MigrationPolicy::new(model.clone()).with_backend(backend);
            b.iter(|| black_box(policy.run(&mut platform)));
        });
    }

    group.bench_function("rl_epoch_8_apps", |b| {
        let mut platform = loaded_platform(8);
        let mut governor = TopRlGovernor::new(0);
        b.iter(|| {
            governor.on_tick(&mut platform);
            platform.tick();
        });
    });

    group.bench_function("gts_tick_8_apps", |b| {
        let mut platform = loaded_platform(8);
        let mut governor = LinuxGovernor::gts_ondemand();
        b.iter(|| {
            governor.on_tick(&mut platform);
            platform.tick();
        });
    });
    group.finish();
}

criterion_group!(benches, policy_benches);
criterion_main!(benches);

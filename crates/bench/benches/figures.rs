//! End-to-end benchmarks of the figure-regeneration harnesses themselves:
//! one per paper artifact that is cheap enough to iterate (the heavy
//! mixed-workload sweeps are exercised once, not iterated).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench::harness::{train_artifacts, Effort};

fn figure_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig1_motivation", |b| {
        b.iter(|| black_box(bench::fig1::run()));
    });

    group.bench_function("fig4_training_data", |b| {
        b.iter(|| black_box(bench::fig4::run()));
    });

    group.bench_function("fig5_single_benchmark_overhead", |b| {
        // One ping-pong measurement (the full figure loops over 16).
        b.iter(|| {
            let report = bench::fig5::run();
            black_box(report.rows.len())
        });
    });
    group.finish();

    // The artifact-dependent figures: train once, regenerate each figure
    // once, and time the regeneration as a single-shot group.
    let artifacts = train_artifacts(Effort::Quick);
    let mut heavy = c.benchmark_group("figures_heavy");
    heavy.sample_size(10);
    heavy.bench_function("fig7_illustrative", |b| {
        b.iter(|| black_box(bench::fig7::run(&artifacts)));
    });
    heavy.bench_function("fig11_overhead", |b| {
        b.iter(|| black_box(bench::fig11::run(&artifacts)));
    });
    heavy.bench_function("model_eval", |b| {
        b.iter(|| black_box(bench::model_eval::run(&artifacts, Effort::Quick)));
    });
    heavy.finish();
}

criterion_group!(benches, figure_benches);
criterion_main!(benches);

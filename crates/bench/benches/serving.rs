//! Scalar-vs-batched inference microbenchmarks for the shared NPU
//! service: the numeric cost of serving 64 feature rows as 64 scalar
//! calls vs. coalesced batches of 4/16/64 — on both the scalar reference
//! kernel and the vectorized fused kernel (bit-identical outputs; see
//! `tests/kernel_equivalence.rs`) — plus the cached service path, the
//! per-request quantization-group path, and the scratch-buffer forward
//! pass used on the per-epoch hot path. Every row reports per-row ns via
//! `Throughput::Elements`, so BENCH_fleet.json deltas are attributable
//! to a specific coalescing level and kernel.
//!
//! (The simulated device latency model — driver round-trips, occupancy —
//! is virtual time and not measured here; `serve-timing` reports it into
//! `BENCH_fleet.json` alongside these numeric costs.)

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use nn::{ForwardScratch, KernelMode, Matrix, Mlp};
use npu::{InferScratch, NpuModel, PolicyCache};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROWS: usize = 64;

fn feature_rows(n: usize) -> Matrix {
    Matrix::from_rows(
        (0..n)
            .map(|r| {
                (0..21)
                    .map(|c| ((r * 31 + c * 7) % 13) as f32 / 13.0 - 0.5)
                    .collect()
            })
            .collect(),
    )
}

fn serving_benches(c: &mut Criterion) {
    let mlp = Mlp::with_topology(21, 4, 64, 8, &mut StdRng::seed_from_u64(9));
    let model = NpuModel::compile(&mlp);
    let mut group = c.benchmark_group("serving");
    group.throughput(Throughput::Elements(ROWS as u64));

    // Serve 64 rows as scalar calls vs. coalesced batches, on each
    // kernel. The two kernels produce bit-identical outputs, so the gap
    // is pure compute.
    for mode in [KernelMode::Scalar, KernelMode::Vectorized] {
        for batch in [1usize, 4, 16, 64] {
            let chunk = feature_rows(batch);
            group.bench_function(format!("int8_64rows_batch{batch}_{}", mode.name()), |b| {
                b.iter(|| {
                    for _ in 0..(ROWS / batch) {
                        black_box(model.infer_with(black_box(&chunk), mode));
                    }
                });
            });
        }
    }

    // The shared service's path: one stacked call, one quantization
    // group per request (bit-identical to scalar issuance).
    let stacked = feature_rows(ROWS);
    let groups = vec![1usize; ROWS];
    group.bench_function("int8_64rows_grouped", |b| {
        b.iter(|| black_box(model.infer_grouped(black_box(&stacked), &groups)));
    });

    // The cached service path on a repeating request stream: quantize,
    // probe, replay (the steady state of a fleet whose boards revisit
    // the same thermal/QoS code points).
    group.bench_function("int8_64rows_grouped_cached", |b| {
        let mut cache = PolicyCache::new(128);
        let mut scratch = InferScratch::new();
        let mut q = Vec::new();
        let rows: Vec<Matrix> = (0..ROWS).map(|_| feature_rows(1)).collect();
        b.iter(|| {
            for row in &rows {
                let scale = model.quantize_input(row.as_slice(), &mut q);
                let out = match cache.probe(&q, scale, 1) {
                    Some(out) => out.to_vec(),
                    None => {
                        let out = model
                            .infer_prequant(&q, scale, 1, KernelMode::Vectorized, &mut scratch)
                            .to_vec();
                        cache.insert(&q, scale, 1, &out);
                        out
                    }
                };
                black_box(out);
            }
        });
    });

    // Scalar float forward: fresh allocations vs. the reusable scratch
    // buffer used on the per-epoch hot path. One row per iteration, so
    // the reported per-element figure IS the per-row cost.
    group.throughput(Throughput::Elements(1));
    let row: Vec<f32> = (0..21).map(|c| c as f32 / 21.0 - 0.5).collect();
    group.bench_function("forward_alloc", |b| {
        b.iter(|| black_box(mlp.forward(black_box(&row))));
    });
    group.bench_function("forward_scratch", |b| {
        let mut scratch = ForwardScratch::new();
        b.iter(|| {
            black_box(mlp.forward_into(black_box(&row), &mut scratch));
        });
    });
    group.finish();
}

criterion_group!(benches, serving_benches);
criterion_main!(benches);

//! Micro-benchmarks of the simulation substrates: thermal integration,
//! platform ticks, NN inference (float and int8), and oracle collection.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use hikey_platform::{Platform, PlatformConfig};
use hmc_types::{CoreId, SimDuration, Watts, NUM_CORES};
use nn::{Matrix, Mlp};
use npu::NpuModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use thermal::{Cooling, SocThermal};
use topil::oracle::{Scenario, TraceCollector};
use workloads::{Benchmark, QosSpec, Workload};

fn thermal_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("thermal");
    let powers = [Watts::new(1.0); NUM_CORES];
    group.bench_function("step_1ms", |b| {
        let mut soc = SocThermal::new(Cooling::fan());
        b.iter(|| {
            soc.step(
                black_box(&powers),
                [Watts::ZERO; 2],
                SimDuration::from_millis(1),
            );
        });
    });
    group.bench_function("steady_state_solve", |b| {
        let soc = SocThermal::new(Cooling::fan());
        b.iter(|| black_box(soc.steady_state_sensor(&powers, [Watts::ZERO; 2])));
    });
    group.finish();
}

fn platform_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("platform");
    for apps in [1usize, 8, 16] {
        group.bench_function(format!("tick_{apps}_apps"), |b| {
            let mut platform = Platform::new(PlatformConfig::default());
            let w = Workload::single(Benchmark::Syr2k, QosSpec::FractionOfMaxBig(0.2));
            let mut spec = *w.iter().next().unwrap();
            spec.total_instructions = Some(u64::MAX);
            for i in 0..apps {
                platform.admit(&spec, CoreId::new(i % NUM_CORES));
            }
            b.iter(|| platform.tick());
        });
    }
    group.bench_function("snapshots_8_apps", |b| {
        let mut platform = Platform::new(PlatformConfig::default());
        let w = Workload::single(Benchmark::Adi, QosSpec::FractionOfMaxBig(0.2));
        let mut spec = *w.iter().next().unwrap();
        spec.total_instructions = Some(u64::MAX);
        for i in 0..8 {
            platform.admit(&spec, CoreId::new(i));
        }
        platform.tick();
        b.iter(|| black_box(platform.snapshots()));
    });
    group.finish();
}

fn nn_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn");
    let mlp = Mlp::with_topology(21, 4, 64, 8, &mut StdRng::seed_from_u64(0));
    let single = vec![0.1f32; 21];
    let batch = Matrix::from_rows(vec![vec![0.1; 21]; 16]);
    group.bench_function("forward_single", |b| {
        b.iter(|| black_box(mlp.forward(black_box(&single))));
    });
    group.bench_function("forward_batch16", |b| {
        b.iter(|| black_box(mlp.forward_batch(black_box(&batch))));
    });
    let compiled = NpuModel::compile(&mlp);
    group.bench_function("npu_int8_batch16", |b| {
        b.iter(|| black_box(compiled.infer(black_box(&batch))));
    });
    group.bench_function("backward_batch16", |b| {
        let targets = Matrix::zeros(16, 8);
        b.iter(|| {
            let cache = mlp.forward_cached(&batch);
            let (_, grad) = Mlp::mse_loss(cache.output(), &targets);
            black_box(mlp.backward(&cache, &grad))
        });
    });
    group.finish();
}

fn oracle_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle");
    group.sample_size(10);
    let scenario = Scenario::new(
        Benchmark::SeidelTwoD,
        vec![
            (Benchmark::Adi, CoreId::new(0)),
            (Benchmark::Syr2k, CoreId::new(4)),
        ],
    );
    group.bench_function("collect_steady_state_scenario", |b| {
        let collector = TraceCollector::new();
        b.iter(|| black_box(collector.collect(black_box(&scenario))));
    });
    group.bench_function("extract_cases", |b| {
        let collector = TraceCollector::new();
        let traces = collector.collect(&scenario);
        b.iter_batched(
            || traces.clone(),
            |t| black_box(topil::oracle::extract_cases(&t, &Default::default())),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    thermal_benches,
    platform_benches,
    nn_benches,
    oracle_benches
);
criterion_main!(benches);

//! Bad-input behaviour of the `experiments` binary.
//!
//! Every malformed command line must print the usage text to stderr and
//! exit with status 2 — never panic, never start an experiment. These
//! tests spawn the real binary (Cargo exposes its path at build time), so
//! they exercise the exact code path a user hits.

use std::process::{Command, Output};

fn experiments(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("spawn the experiments binary")
}

/// Asserts the usage-rejection contract: status 2, usage on stderr (with
/// the given diagnostic), and nothing on stdout.
fn assert_rejected(args: &[&str], diagnostic: &str) {
    let out = experiments(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} should exit 2, stderr:\n{stderr}"
    );
    assert!(
        stderr.contains(diagnostic),
        "{args:?} stderr should mention {diagnostic:?}, got:\n{stderr}"
    );
    assert!(
        stderr.contains("usage: experiments"),
        "{args:?} should print usage to stderr, got:\n{stderr}"
    );
    assert!(
        out.stdout.is_empty(),
        "{args:?} must not write to stdout on a usage error"
    );
}

#[test]
fn unknown_command_is_rejected() {
    assert_rejected(&["frobnicate"], "unknown experiment `frobnicate`");
}

#[test]
fn unknown_flag_is_rejected_for_every_subcommand() {
    for command in [
        "fig1",
        "fig3",
        "fig4",
        "fig5",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "model-eval",
        "ablations",
        "oracle-gap",
        "sensitivity",
        "robustness",
        "traces",
        "fleet",
        "overload",
        "chaos",
        "edge",
        "sweep",
        "train",
        "all",
    ] {
        assert_rejected(&[command, "--bogus"], "unknown flag `--bogus`");
    }
}

#[test]
fn unknown_driver_value_is_rejected() {
    for command in ["fleet", "overload", "chaos", "edge"] {
        assert_rejected(&[command, "--driver", "bogus"], "unknown --driver `bogus`");
    }
}

#[test]
fn unknown_storm_preset_is_rejected() {
    assert_rejected(&["chaos", "--storm", "bogus"], "unknown --storm `bogus`");
}

#[test]
fn malformed_numeric_values_are_rejected() {
    assert_rejected(&["fleet", "--boards", "eight"], "flag `--boards`");
    assert_rejected(&["fleet", "--epochs", "-3"], "flag `--epochs`");
    assert_rejected(&["overload", "--clients", "many"], "flag `--clients`");
    assert_rejected(&["overload", "--overload", "10x"], "flag `--overload`");
    assert_rejected(&["chaos", "--racks", "two"], "flag `--racks`");
    assert_rejected(&["chaos", "--seed", "0x11"], "flag `--seed`");
    assert_rejected(&["sweep", "--points", "1.5"], "flag `--points`");
    assert_rejected(&["train", "--threads", "0.5"], "flag `--threads`");
    assert_rejected(&["fleet", "--churn", "often"], "flag `--churn`");
    assert_rejected(&["fleet", "--churn-down", "-1"], "flag `--churn-down`");
    assert_rejected(&["edge", "--users", "millions"], "flag `--users`");
    assert_rejected(&["edge", "--load", "heavy"], "flag `--load`");
}

#[test]
fn unreadable_replay_file_is_rejected() {
    assert_rejected(
        &["edge", "--replay", "/nonexistent/trace.csv"],
        "flag `--replay` could not read",
    );
}

#[test]
fn flag_missing_its_value_is_rejected() {
    assert_rejected(&["fleet", "--devices"], "flag `--devices` needs a value");
    assert_rejected(&["chaos", "--driver"], "flag `--driver` needs a value");
}

#[test]
fn bare_storm_flag_stays_an_overload_toggle() {
    // A flag after a bare `--storm` must not be eaten as its value: the
    // diagnostic names the unknown flag, not an unknown storm preset.
    assert_rejected(
        &["overload", "--storm", "--bogus"],
        "unknown flag `--bogus`",
    );
}

#[test]
fn help_exits_cleanly() {
    // Every help spelling prints the usage to *stdout* and exits 0 —
    // asking for help is not an error.
    for invocation in [
        &["--help"][..],
        &["-h"][..],
        &["help"][..],
        &["list"][..],
        &["edge", "--help"][..],
    ] {
        let out = experiments(invocation);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{invocation:?} should exit 0, stderr:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("usage: experiments"),
            "{invocation:?} should print usage to stdout"
        );
        assert!(
            out.stderr.is_empty(),
            "{invocation:?} must not write to stderr on a help request"
        );
    }
}

#[test]
fn edge_subcommand_emits_the_gate_row() {
    let out = experiments(&[
        "edge",
        "--boards",
        "16",
        "--racks",
        "2",
        "--epochs",
        "8",
        "--users",
        "500",
        "--seed",
        "3",
        "--threads",
        "1",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("section,index,metric,value\n"));
    assert!(stdout.contains("\nsummary,,invariant_violations,0\n"));
    assert!(stdout.contains("\nsummary,,boards,16\n"));
    assert!(stdout.contains("\nsummary,,users,500\n"));
    // Wall-clock throughput is diagnostics: stderr, never the CSV.
    assert!(!stdout.contains("boards/s"));
    assert!(String::from_utf8_lossy(&out.stderr).contains("simulated boards/s"));
}

#[test]
fn chaos_subcommand_emits_the_gate_row() {
    let out = experiments(&[
        "chaos",
        "--boards",
        "4",
        "--racks",
        "2",
        "--epochs",
        "8",
        "--seed",
        "7",
        "--storm",
        "crash-wave",
        "--threads",
        "1",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("section,index,metric,value\n"));
    assert!(stdout.contains("\nsummary,,invariant_violations,0\n"));
    assert!(stdout.contains("\nsummary,,storm,crash-wave\n"));
}

#[test]
fn storm_all_binds_as_a_preset_not_the_all_command() {
    // `all` names both a storm preset and a command; after `--storm` the
    // preset reading must win (the run is chaos, not the whole suite).
    let out = experiments(&[
        "chaos",
        "--storm",
        "all",
        "--boards",
        "4",
        "--racks",
        "2",
        "--epochs",
        "6",
        "--seed",
        "7",
        "--threads",
        "1",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\nsummary,,storm,all\n"));
    assert!(!stdout.contains("TOP-IL experiment suite ran figures"));
}

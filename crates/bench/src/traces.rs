//! Structured-trace dumps for offline inspection.
//!
//! Runs every governor on one small deterministic mixed workload with
//! full-granularity tracing and exports the event streams as JSONL and
//! CSV (`--out`). The printed table doubles as a quick determinism check:
//! rerunning the command must reproduce identical trace hashes.

use std::fmt;

use governors::LinuxGovernor;
use hikey_platform::{Policy, RunReport, SimConfig, Simulator};
use hmc_types::SimDuration;
use rand::rngs::StdRng;
use rand::SeedableRng;
use thermal::Cooling;
use topil::oracle_governor::OracleGovernor;
use topil::TopIlGovernor;
use toprl::TopRlGovernor;
use trace::{to_csv, to_jsonl, EventKind, TraceConfig, TraceLog};
use workloads::{MixedWorkloadConfig, Workload, WorkloadGenerator};

use crate::harness::TrainedArtifacts;

/// Seed of the canonical trace workload.
pub const TRACE_WORKLOAD_SEED: u64 = 0x7ace;

/// Simulated duration of each trace run.
pub const TRACE_DURATION: SimDuration = SimDuration::from_secs(20);

/// The small deterministic mixed workload every governor is traced on.
pub fn trace_workload() -> Workload {
    let config = MixedWorkloadConfig {
        num_apps: 6,
        mean_interarrival: SimDuration::from_secs(2),
        total_instructions: Some(4_000_000_000),
        ..MixedWorkloadConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(TRACE_WORKLOAD_SEED);
    WorkloadGenerator::mixed(&config, &mut rng)
}

/// The shared simulation configuration of every trace run.
pub fn trace_sim_config() -> SimConfig {
    SimConfig {
        max_duration: TRACE_DURATION,
        stop_when_idle: false,
        trace: TraceConfig::full(),
        ..SimConfig::default()
    }
}

/// One governor's traced run.
#[derive(Debug, Clone)]
pub struct TraceDump {
    /// Policy name as reported by the run.
    pub policy: String,
    /// The recorded event stream.
    pub log: TraceLog,
    /// Migrations executed (from the run metrics, for cross-checking).
    pub migrations: u64,
}

impl TraceDump {
    /// File-name slug of the policy (lowercase, alphanumeric and dashes).
    pub fn slug(&self) -> String {
        self.policy
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect::<String>()
            .trim_matches('-')
            .to_string()
    }

    /// The JSONL export of the run.
    pub fn jsonl(&self) -> String {
        to_jsonl(&self.log)
    }

    /// The CSV export of the run.
    pub fn csv(&self) -> String {
        to_csv(&self.log)
    }
}

/// The trace-dump report: one traced run per governor.
#[derive(Debug, Clone)]
pub struct TracesReport {
    /// One dump per governor.
    pub dumps: Vec<TraceDump>,
}

impl fmt::Display for TracesReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Structured traces — {} s mixed workload (seed {TRACE_WORKLOAD_SEED:#x}), full granularity",
            TRACE_DURATION.as_secs_f64()
        )?;
        writeln!(
            f,
            "{:<20} {:>18} {:>8} {:>7} {:>7} {:>7}",
            "policy", "trace hash", "events", "epochs", "moves", "faults"
        )?;
        for dump in &self.dumps {
            let epochs = dump.log.epochs();
            let faults = dump
                .log
                .events
                .iter()
                .filter(|e| e.kind() == EventKind::Fault)
                .count();
            writeln!(
                f,
                "{:<20} {:>18} {:>8} {:>7} {:>7} {:>7}",
                dump.policy,
                dump.log.hash.to_string(),
                dump.log.emitted,
                epochs,
                dump.migrations,
                faults
            )?;
        }
        Ok(())
    }
}

fn dump_of(report: RunReport) -> TraceDump {
    let migrations = report.metrics.migrations();
    TraceDump {
        policy: report.policy,
        log: report.events.expect("tracing was enabled"),
        migrations,
    }
}

/// Traces every governor on the canonical workload.
pub fn run(artifacts: &TrainedArtifacts) -> TracesReport {
    let sim = Simulator::new(trace_sim_config());
    let workload = trace_workload();
    let mut dumps = Vec::new();

    let mut trace_one = |policy: &mut dyn Policy| dumps.push(dump_of(sim.run(&workload, policy)));
    trace_one(&mut TopIlGovernor::new(artifacts.il_models[0].clone()));
    trace_one(&mut TopRlGovernor::with_qtable(
        artifacts.rl_tables[0].clone(),
        0,
    ));
    trace_one(&mut LinuxGovernor::gts_ondemand());
    trace_one(&mut LinuxGovernor::gts_powersave());
    trace_one(&mut OracleGovernor::new(Cooling::fan()));

    TracesReport { dumps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_are_filesystem_safe() {
        let dump = TraceDump {
            policy: "TOP-IL (CPU inference)".to_string(),
            log: TraceLog {
                events: Vec::new(),
                hash: trace::TraceHash::new(trace::Fnv64::new().finish()),
                emitted: 0,
                dropped: 0,
            },
            migrations: 0,
        };
        assert_eq!(dump.slug(), "top-il--cpu-inference");
    }

    #[test]
    fn gts_trace_is_deterministic_and_exportable() {
        let sim = Simulator::new(trace_sim_config());
        let workload = trace_workload();
        let a = dump_of(sim.run(&workload, &mut LinuxGovernor::gts_ondemand()));
        let b = dump_of(sim.run(&workload, &mut LinuxGovernor::gts_ondemand()));
        assert_eq!(a.log.hash, b.log.hash, "same seed, same trace");
        assert!(a.log.emitted > 0);
        assert!(a.jsonl().lines().count() as u64 > a.log.events.len() as u64 / 2);
        assert!(a.csv().starts_with(trace::CSV_HEADER));
    }
}

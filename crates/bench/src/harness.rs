//! Shared experiment infrastructure.

use std::fmt;

use hmc_types::SimDuration;
use nn::TrainConfig;
use topil::oracle::Scenario;
use topil::training::{IlTrainer, TrainSettings};
use topil::IlModel;
use toprl::{QTable, TopRlGovernor};

/// Effort level of an experiment run.
///
/// `Quick` shrinks training sets and simulation lengths so the whole suite
/// finishes in a couple of minutes (used by CI/tests); `Full` uses the
/// paper-scale parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Reduced scale for fast iteration.
    Quick,
    /// Paper-scale runs.
    Full,
}

impl Effort {
    /// Number of oracle scenarios (paper: 100 AoI/background combinations).
    pub fn scenario_count(self) -> usize {
        match self {
            Effort::Quick => 12,
            Effort::Full => 100,
        }
    }

    /// Number of independently trained models/seeds (paper: 3).
    pub fn seeds(self) -> u64 {
        3
    }

    /// NN training budget.
    pub fn train_config(self) -> TrainConfig {
        match self {
            Effort::Quick => TrainConfig {
                max_epochs: 60,
                patience: 12,
                ..TrainConfig::default()
            },
            Effort::Full => TrainConfig {
                max_epochs: 200,
                patience: 20,
                ..TrainConfig::default()
            },
        }
    }

    /// RL pre-training budget (paper: ~3 h simulated until convergence).
    pub fn rl_pretrain(self) -> SimDuration {
        match self {
            Effort::Quick => SimDuration::from_secs(600),
            Effort::Full => SimDuration::from_secs(3 * 3600),
        }
    }

    /// Per-application instruction budget in workload experiments
    /// (shortened so runs fit in the harness budget while still spanning
    /// many control epochs).
    pub fn app_instructions(self) -> u64 {
        match self {
            Effort::Quick => 20_000_000_000,
            Effort::Full => 60_000_000_000,
        }
    }
}

/// Everything the evaluation experiments need: IL models and RL Q-tables
/// trained with different random seeds (the paper's robustness protocol).
#[derive(Debug, Clone)]
pub struct TrainedArtifacts {
    /// One IL model per seed.
    pub il_models: Vec<IlModel>,
    /// One pre-trained Q-table per seed.
    pub rl_tables: Vec<QTable>,
}

/// Trains the IL models and pre-trains the RL baselines.
///
/// Trace collection happens once; each seed retrains from the same oracle
/// cases, exactly like the paper ("three models are trained with different
/// random seed").
pub fn train_artifacts(effort: Effort) -> TrainedArtifacts {
    let scenarios = Scenario::standard_set(effort.scenario_count(), 0xC0FFEE);
    let settings = TrainSettings {
        nn: effort.train_config(),
        ..TrainSettings::default()
    };
    let trainer = IlTrainer::new(settings);
    let cases = trainer.collect_cases(&scenarios);
    let il_models = (0..effort.seeds())
        .map(|seed| trainer.train_from_cases(&cases, seed))
        .collect();
    let rl_tables = (0..effort.seeds())
        .map(|seed| TopRlGovernor::pretrain(seed, effort.rl_pretrain()))
        .collect();
    TrainedArtifacts {
        il_models,
        rl_tables,
    }
}

/// An [`IlTrainer`] configured for the given effort level.
pub fn il_trainer(effort: Effort) -> IlTrainer {
    let settings = TrainSettings {
        nn: effort.train_config(),
        ..TrainSettings::default()
    };
    IlTrainer::new(settings)
}

/// Trains only the IL side (for experiments that do not involve RL).
pub fn train_il_models(effort: Effort) -> Vec<IlModel> {
    let scenarios = Scenario::standard_set(effort.scenario_count(), 0xC0FFEE);
    let settings = TrainSettings {
        nn: effort.train_config(),
        ..TrainSettings::default()
    };
    let trainer = IlTrainer::new(settings);
    let cases = trainer.collect_cases(&scenarios);
    (0..effort.seeds())
        .map(|seed| trainer.train_from_cases(&cases, seed))
        .collect()
}

/// Mean and standard deviation of a sample.
pub fn mean_std(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// A `mean ± std` cell for report tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stat {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
}

impl Stat {
    /// Computes the statistic over samples.
    pub fn of(samples: &[f64]) -> Stat {
        let (mean, std) = mean_std(samples);
        Stat { mean, std }
    }
}

impl fmt::Display for Stat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:6.2} ± {:4.2}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_known_values() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn quick_effort_is_smaller() {
        assert!(Effort::Quick.scenario_count() < Effort::Full.scenario_count());
        assert!(Effort::Quick.rl_pretrain() < Effort::Full.rl_pretrain());
    }

    #[test]
    fn stat_formats() {
        let s = Stat::of(&[1.0, 3.0]);
        assert_eq!(s.to_string(), "  2.00 ± 1.00");
    }
}

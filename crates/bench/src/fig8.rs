//! **Fig. 8 (main experiment).** A mixed workload of 20 randomly selected
//! applications with Poisson arrivals at several arrival rates, executed
//! under TOP-IL, TOP-RL, GTS/ondemand and GTS/powersave — with a fan
//! (Fig. 8a, the training cooling) and without (Fig. 8b, generalization).
//!
//! Expected shape (paper): TOP-IL cuts the average temperature by up to
//! 17 °C versus GTS/ondemand at only slightly more QoS violations;
//! GTS/powersave is coolest but violates most targets; TOP-RL reaches
//! IL-like temperatures but 63–89 % more violations.

use std::fmt;

use governors::LinuxGovernor;
use hikey_platform::{Policy, RunMetrics, SimConfig, Simulator};
use hmc_types::SimDuration;
use rand::rngs::StdRng;
use rand::SeedableRng;
use thermal::Cooling;
use topil::TopIlGovernor;
use toprl::TopRlGovernor;
use workloads::{MixedWorkloadConfig, WorkloadGenerator};

use crate::harness::{Effort, Stat, TrainedArtifacts};

/// One simulation run's retained results.
#[derive(Debug, Clone)]
pub struct PolicyRun {
    /// Policy name.
    pub policy: String,
    /// Full run metrics (consumed by Fig. 9 as well).
    pub metrics: RunMetrics,
}

/// All runs at one arrival rate.
#[derive(Debug, Clone)]
pub struct RateBlock {
    /// Mean inter-arrival time of the Poisson process.
    pub mean_interarrival: SimDuration,
    /// All runs (several seeds per learned policy).
    pub runs: Vec<PolicyRun>,
}

impl RateBlock {
    /// Aggregates `(avg temperature, QoS violations)` per policy.
    pub fn summary(&self) -> Vec<(String, Stat, Stat)> {
        let mut policies: Vec<String> = Vec::new();
        for run in &self.runs {
            if !policies.contains(&run.policy) {
                policies.push(run.policy.clone());
            }
        }
        policies
            .into_iter()
            .map(|policy| {
                let temps: Vec<f64> = self
                    .runs
                    .iter()
                    .filter(|r| r.policy == policy)
                    .map(|r| r.metrics.avg_temperature().value())
                    .collect();
                let viols: Vec<f64> = self
                    .runs
                    .iter()
                    .filter(|r| r.policy == policy)
                    .map(|r| r.metrics.qos_violations() as f64)
                    .collect();
                (policy, Stat::of(&temps), Stat::of(&viols))
            })
            .collect()
    }
}

/// The Fig. 8 report for one cooling configuration.
#[derive(Debug, Clone)]
pub struct Fig8Report {
    /// Cooling configuration name ("fan" / "no-fan").
    pub cooling: &'static str,
    /// Results per arrival rate.
    pub rates: Vec<RateBlock>,
}

impl Fig8Report {
    /// Mean metric for one policy across all rates: `(temp, violations)`.
    pub fn policy_means(&self, policy: &str) -> (f64, f64) {
        let mut temps = Vec::new();
        let mut viols = Vec::new();
        for rate in &self.rates {
            for run in rate.runs.iter().filter(|r| r.policy == policy) {
                temps.push(run.metrics.avg_temperature().value());
                viols.push(run.metrics.qos_violations() as f64);
            }
        }
        (
            temps.iter().sum::<f64>() / temps.len().max(1) as f64,
            viols.iter().sum::<f64>() / viols.len().max(1) as f64,
        )
    }
}

impl fmt::Display for Fig8Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 8 ({}) — mixed workload: avg temperature [°C] / QoS violations [apps of 20]",
            self.cooling
        )?;
        for rate in &self.rates {
            writeln!(
                f,
                "\narrival rate: mean inter-arrival {}",
                rate.mean_interarrival
            )?;
            writeln!(
                f,
                "{:<16} {:>16} {:>16}",
                "policy", "avg temp", "violations"
            )?;
            for (policy, temp, viol) in rate.summary() {
                writeln!(f, "{policy:<16} {temp:>16} {viol:>16}")?;
            }
        }
        Ok(())
    }
}

/// Regenerates Fig. 8 for one cooling configuration.
pub fn run(artifacts: &TrainedArtifacts, effort: Effort, cooling: Cooling) -> Fig8Report {
    let interarrivals: Vec<u64> = match effort {
        Effort::Quick => vec![12, 5],
        Effort::Full => vec![30, 15, 8, 4],
    };
    let sim = SimConfig {
        cooling,
        max_duration: SimDuration::from_secs(1800),
        stop_when_idle: true,
        ..SimConfig::default()
    };

    let rates = interarrivals
        .into_iter()
        .map(|secs| {
            let workload_cfg = MixedWorkloadConfig {
                mean_interarrival: SimDuration::from_secs(secs),
                total_instructions: Some(effort.app_instructions()),
                ..MixedWorkloadConfig::default()
            };
            // One workload per rate, shared by all policies (seeded).
            let workload =
                WorkloadGenerator::mixed(&workload_cfg, &mut StdRng::seed_from_u64(secs));

            let mut runs = Vec::new();
            for (seed, model) in artifacts.il_models.iter().enumerate() {
                let mut governor = TopIlGovernor::new(model.clone());
                let report = Simulator::new(sim).run(&workload, &mut governor);
                let _ = seed;
                runs.push(PolicyRun {
                    policy: "TOP-IL".to_string(),
                    metrics: report.metrics,
                });
            }
            for (seed, table) in artifacts.rl_tables.iter().enumerate() {
                let mut governor = TopRlGovernor::with_qtable(table.clone(), seed as u64);
                let report = Simulator::new(sim).run(&workload, &mut governor);
                runs.push(PolicyRun {
                    policy: governor.name().to_string(),
                    metrics: report.metrics,
                });
            }
            for mut governor in [
                LinuxGovernor::gts_ondemand(),
                LinuxGovernor::gts_powersave(),
            ] {
                let report = Simulator::new(sim).run(&workload, &mut governor);
                runs.push(PolicyRun {
                    policy: governor.name().to_string(),
                    metrics: report.metrics,
                });
            }
            RateBlock {
                mean_interarrival: SimDuration::from_secs(secs),
                runs,
            }
        })
        .collect();

    Fig8Report {
        cooling: cooling.name(),
        rates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::train_artifacts;

    /// The paper's headline shape on a reduced scale: ondemand is hottest,
    /// powersave coolest but most violations, TOP-IL cool at few
    /// violations, TOP-RL with more violations than TOP-IL.
    #[test]
    fn main_result_shape_holds() {
        let artifacts = train_artifacts(Effort::Quick);
        let report = run(&artifacts, Effort::Quick, Cooling::fan());

        let (t_il, v_il) = report.policy_means("TOP-IL");
        let (t_rl, v_rl) = report.policy_means("TOP-RL");
        let (t_on, v_on) = report.policy_means("GTS/ondemand");
        let (t_ps, v_ps) = report.policy_means("GTS/powersave");

        assert!(
            t_il < t_on - 2.0,
            "TOP-IL {t_il} should be well below ondemand {t_on}"
        );
        assert!(
            t_ps <= t_il + 1.0,
            "powersave {t_ps} is the coolest, IL {t_il}"
        );
        assert!(
            v_ps > v_il + 2.0,
            "powersave must violate far more: {v_ps} vs {v_il}"
        );
        assert!(v_rl > v_il, "RL {v_rl} should violate more than IL {v_il}");
        assert!(v_on <= v_il + 2.0, "ondemand violates little: {v_on}");
        let _ = t_rl;
    }
}

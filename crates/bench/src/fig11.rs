//! **Fig. 11 (run-time overhead).** Overhead of the DVFS control loop and
//! the migration policy as the number of running applications grows.
//!
//! Expected shape (paper): the DVFS loop's cost grows with the application
//! count (reading perf counters dominates), while the NPU-batched
//! migration policy stays flat (4.3 ms per invocation, 8.6 ms/s). A CPU
//! inference backend is included as the ablation that grows instead.

use std::fmt;

use hikey_platform::{SimConfig, Simulator};
use hmc_types::{SimDuration, SimTime};
use topil::migration::InferenceBackend;
use topil::TopIlGovernor;
use workloads::{ArrivalSpec, Benchmark, QosSpec, Workload};

use crate::harness::TrainedArtifacts;

/// Overhead at one application count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadRow {
    /// Number of running applications.
    pub apps: usize,
    /// DVFS-loop overhead in ms per second.
    pub dvfs_ms_per_s: f64,
    /// Migration-policy overhead (NPU) in ms per second.
    pub migration_npu_ms_per_s: f64,
    /// Migration-policy overhead (CPU inference) in ms per second.
    pub migration_cpu_ms_per_s: f64,
}

/// The Fig. 11 report.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Report {
    /// One row per application count.
    pub rows: Vec<OverheadRow>,
}

impl fmt::Display for Fig11Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 11 — run-time overhead [ms per second of wall time]"
        )?;
        writeln!(
            f,
            "{:>6} {:>12} {:>16} {:>16}",
            "apps", "DVFS loop", "migration (NPU)", "migration (CPU)"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:>6} {:>12.2} {:>16.2} {:>16.2}",
                row.apps, row.dvfs_ms_per_s, row.migration_npu_ms_per_s, row.migration_cpu_ms_per_s
            )?;
        }
        Ok(())
    }
}

fn measure(artifacts: &TrainedArtifacts, apps: usize, backend: InferenceBackend) -> (f64, f64) {
    let sim = SimConfig {
        max_duration: SimDuration::from_secs(20),
        stop_when_idle: false,
        ..SimConfig::default()
    };
    let workload = Workload::new(
        (0..apps)
            .map(|_| ArrivalSpec {
                at: SimTime::ZERO,
                benchmark: Benchmark::Syr2k,
                qos: QosSpec::FractionOfMaxBig(0.2),
                total_instructions: Some(u64::MAX),
            })
            .collect(),
    );
    let mut governor = TopIlGovernor::new(artifacts.il_models[0].clone()).with_backend(backend);
    let report = Simulator::new(sim).run(&workload, &mut governor);
    let stats = governor.stats();
    let secs = report.metrics.elapsed().as_secs_f64();
    (
        stats.dvfs_time.as_secs_f64() * 1e3 / secs,
        stats.migration_time.as_secs_f64() * 1e3 / secs,
    )
}

/// Regenerates Fig. 11.
pub fn run(artifacts: &TrainedArtifacts) -> Fig11Report {
    let rows = [1usize, 2, 4, 8, 12, 16]
        .into_iter()
        .map(|apps| {
            let (dvfs, npu) = measure(artifacts, apps, InferenceBackend::Npu);
            let (_, cpu) = measure(artifacts, apps, InferenceBackend::Cpu);
            OverheadRow {
                apps,
                dvfs_ms_per_s: dvfs,
                migration_npu_ms_per_s: npu,
                migration_cpu_ms_per_s: cpu,
            }
        })
        .collect();
    Fig11Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{train_artifacts, Effort};

    #[test]
    fn overhead_shape_matches_paper() {
        let artifacts = train_artifacts(Effort::Quick);
        let report = run(&artifacts);
        let first = report.rows.first().unwrap();
        let last = report.rows.last().unwrap();

        // DVFS loop grows with the number of applications.
        assert!(last.dvfs_ms_per_s > first.dvfs_ms_per_s * 2.0);
        // NPU migration stays flat.
        assert!(
            last.migration_npu_ms_per_s < first.migration_npu_ms_per_s * 1.4,
            "NPU overhead should stay flat: {} -> {}",
            first.migration_npu_ms_per_s,
            last.migration_npu_ms_per_s
        );
        // CPU inference grows.
        assert!(last.migration_cpu_ms_per_s > first.migration_cpu_ms_per_s * 2.0);
        // Paper magnitudes: worst-case DVFS 8.7 ms/s, migration 8.6 ms/s;
        // total overhead ≤ ~2 %.
        assert!(last.dvfs_ms_per_s < 15.0);
        assert!(last.migration_npu_ms_per_s < 15.0);
        let total_fraction = (last.dvfs_ms_per_s + last.migration_npu_ms_per_s) / 1e3;
        assert!(total_fraction < 0.03, "total overhead {total_fraction}");
    }
}

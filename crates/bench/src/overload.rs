//! Adversarial overload harness for the shared NPU service.
//!
//! Drives `npu-serve` with hostile traffic in virtual time — open-loop
//! burst clients submitting far past pool capacity, slow-loris clients
//! that hold their payloads back while occupying queue slots, and an
//! optional device fault storm — and reports how the production service
//! layer (deadline propagation, per-client rate limiting, watermark load
//! shedding, classified retries) holds up.
//!
//! The invariants the harness exists to demonstrate, checked by the CI
//! overload gate on the emitted CSV:
//!
//! * **no late replies** — every admitted request is either served before
//!   its deadline or failed fast with a typed error
//!   (`deadline_misses == 0`),
//! * **no lost requests** — every admitted request has an outcome after
//!   the final flush (`dropped == 0`),
//! * **bounded, reported shedding** — overload is absorbed by the
//!   admission stack, not by unbounded queueing (`shed_rate < 1`,
//!   `served > 0`),
//! * **determinism** — the CSV is byte-identical at every `--threads`
//!   budget; the run never hangs in virtual or wall-clock time.

use std::collections::BinaryHeap;
use std::fmt;

use hikey_platform::SimDriver;
use hmc_types::{SimDuration, SimTime};
use nn::{Matrix, Mlp};
use npu::{NpuDevice, NpuModel};
use npu_serve::{
    ClientId, MetricsSnapshot, NpuService, RateLimit, RequestTicket, RetryClass, RetryPolicy,
    ServeConfig, SubmitOptions,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_core::Kernel;

/// Length of one metrics epoch.
const METRIC_EPOCH: SimDuration = SimDuration::from_millis(100);
/// Completion deadline the burst clients attach (past submission).
const BURST_DEADLINE: SimDuration = SimDuration::from_millis(25);
/// How long a slow-loris client withholds its payload.
const LORIS_HOLD: SimDuration = SimDuration::from_millis(30);
/// Completion deadline the slow-loris clients attach (past submission).
const LORIS_DEADLINE: SimDuration = SimDuration::from_millis(80);

/// Configuration of one overload run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadConfig {
    /// Open-loop burst clients.
    pub clients: usize,
    /// Slow-loris clients (hold payloads back, occupy queue slots).
    pub loris_clients: usize,
    /// 100 ms metric epochs to simulate.
    pub epochs: u64,
    /// Aggregate arrival rate as a multiple of estimated pool capacity.
    pub overload: f64,
    /// NPU devices in the shared pool.
    pub devices: usize,
    /// Worker threads computing ready batches.
    pub workers: usize,
    /// Maximum requests coalesced into one device call.
    pub max_batch: usize,
    /// Master seed for the arrival schedule and payloads.
    pub seed: u64,
    /// Inject device failures and slowdowns on top of the overload.
    pub fault_storm: bool,
    /// Host-thread budget for payload generation; the report and CSV are
    /// byte-identical at every budget.
    pub budget: par::Budget,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            clients: 6,
            loris_clients: 2,
            epochs: 15,
            overload: 10.0,
            devices: 2,
            workers: 2,
            max_batch: 8,
            seed: 7,
            fault_storm: false,
            budget: par::Budget::serial(),
        }
    }
}

/// Aggregate result of an overload run.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadReport {
    /// The configuration that produced this report.
    pub config: OverloadConfig,
    /// Submission attempts issued, fresh and retried.
    pub attempts: u64,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Admitted requests served with a reply.
    pub served: u64,
    /// Admitted requests failed fast on their deadline.
    pub expired: u64,
    /// Attempts turned away (watermark sheds + queue-full + rate limits).
    pub shed: u64,
    /// Attempts refused by the per-client rate limiter (subset of `shed`).
    pub rate_limited: u64,
    /// Admitted requests routed to the CPU under the degrade watermark.
    pub degraded: u64,
    /// Classified retries the harness scheduled.
    pub retries: u64,
    /// Replies delivered after their deadline (the gate requires zero).
    pub deadline_misses: u64,
    /// Admitted requests with no outcome after the final flush (the gate
    /// requires zero).
    pub dropped: u64,
    /// Sheds per attempt over the whole run.
    pub shed_rate: f64,
    /// p99 queue wait (submit → dispatch) across the run.
    pub p99_queue_wait: SimDuration,
    /// Fraction of pool device-time spent busy over the whole run.
    pub utilization: f64,
    /// Circuit-breaker openings (only under a fault storm).
    pub breaker_opens: u64,
    /// Per-epoch metric snapshots, in order.
    pub epochs: Vec<MetricsSnapshot>,
}

impl fmt::Display for OverloadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Overload: {:.0}x capacity, {} burst + {} loris clients, {} epochs on {} device(s){}",
            self.config.overload,
            self.config.clients,
            self.config.loris_clients,
            self.config.epochs,
            self.config.devices,
            if self.config.fault_storm {
                ", fault storm"
            } else {
                ""
            }
        )?;
        writeln!(
            f,
            "  attempts: {} -> {} admitted / {} shed ({} rate-limited), shed rate {:.3}",
            self.attempts, self.admitted, self.shed, self.rate_limited, self.shed_rate
        )?;
        writeln!(
            f,
            "  outcomes: {} served, {} expired (fail-fast), {} degraded to CPU, {} retries",
            self.served, self.expired, self.degraded, self.retries
        )?;
        writeln!(
            f,
            "  invariants: {} deadline misses, {} dropped (both must be zero)",
            self.deadline_misses, self.dropped
        )?;
        writeln!(
            f,
            "  pool: {:.1}% utilized, p99 queue wait {}, {} breaker opens",
            self.utilization * 100.0,
            self.p99_queue_wait,
            self.breaker_opens
        )
    }
}

/// One scheduled submission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Attempt {
    at: SimTime,
    /// Tie-break so the heap drains in schedule order.
    seq: u64,
    /// Index into the arrival table.
    arrival: usize,
    /// 0 for a fresh arrival, n for the n-th classified retry.
    retry: u32,
}

impl Ord for Attempt {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first draining.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl PartialOrd for Attempt {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One planned arrival (payload generated up front, in parallel).
#[derive(Debug, Clone, Copy)]
struct Arrival {
    client: ClientId,
    rows: usize,
    payload_seed: u64,
    hold: SimDuration,
    deadline: SimDuration,
}

/// Deterministic pseudo-random feature batch.
fn payload(seed: u64, rows: usize) -> Matrix {
    Matrix::from_rows(
        (0..rows)
            .map(|r| {
                (0..21)
                    .map(|c| {
                        let h = sim_core::splitmix64(seed ^ ((r * 31 + c) as u64));
                        (h >> 40) as f32 / (1u64 << 24) as f32 - 0.5
                    })
                    .collect()
            })
            .collect(),
    )
}

/// Runs the overload experiment on the default driver
/// ([`SimDriver::EventDriven`]).
///
/// # Panics
///
/// Panics on a zero client, epoch or device count.
pub fn run(config: &OverloadConfig) -> OverloadReport {
    run_with_driver(config, SimDriver::default())
}

/// Runs the overload experiment on an explicitly chosen driver.
///
/// The lockstep reference drains a hand-rolled attempt heap ordered on
/// `(at, seq)`; the event driver posts each attempt onto the `sim-core`
/// kernel. Each attempt carries its own heap sequence number in the
/// payload — the retry backoff jitter is seeded from it — so the two
/// drivers compute identical backoffs and produce identical reports.
///
/// # Panics
///
/// Panics on a zero client, epoch or device count.
pub fn run_with_driver(config: &OverloadConfig, driver: SimDriver) -> OverloadReport {
    assert!(config.clients > 0, "need at least one burst client");
    assert!(config.epochs > 0, "need at least one epoch");
    assert!(config.devices > 0, "need at least one device");
    let mlp = Mlp::with_topology(21, 4, 64, 8, &mut StdRng::seed_from_u64(config.seed));
    let compiled = NpuModel::compile(&mlp);
    let device = NpuDevice::kirin970();

    // Pool capacity estimate: full batches back to back on every device.
    let batch_latency = device.inference_latency(&compiled, config.max_batch);
    let capacity_rps =
        config.devices as f64 * config.max_batch as f64 / batch_latency.as_secs_f64();
    let per_client_rps = capacity_rps * config.overload / config.clients as f64;

    let serve = ServeConfig {
        devices: config.devices,
        workers: config.workers,
        max_batch: config.max_batch,
        queue_capacity: 64,
        shed_depth_watermark: Some(48),
        shed_latency_watermark: Some(SimDuration::from_millis(80)),
        cpu_degrade_watermark: Some(SimDuration::from_millis(40)),
        // Generous per-client budget: twice the fair share of capacity, so
        // the limiter only catches clients bursting far past their share.
        rate_limit: Some(RateLimit {
            burst: 16.0,
            refill_per_sec: 2.0 * capacity_rps / config.clients as f64,
        }),
        ..ServeConfig::default()
    };
    let serve = if config.fault_storm {
        // Under a storm the breaker must actually cycle: hair-trigger
        // threshold, short cooldown so fenced devices keep probing back.
        ServeConfig {
            breaker_threshold: 2,
            breaker_cooldown: 4,
            ..serve
        }
    } else {
        serve
    };
    let mut service = NpuService::new(&mlp, serve);
    if config.fault_storm {
        let mut plan = faults::FaultPlan::none(config.seed ^ 0x5701);
        plan.serve.failure_rate = 0.30;
        plan.serve.slowdown_rate = 0.10;
        plan.serve.slowdown_factor = 4.0;
        service = service.with_fault_injector(faults::FaultInjector::new(plan));
    }

    // Plan every fresh arrival up front: bursts of ~8 requests at jittered
    // instants per client per epoch, plus the slow-loris drip.
    let mut arrivals: Vec<Arrival> = Vec::new();
    let mut schedule: Vec<(SimTime, usize)> = Vec::new();
    let epoch_ns = METRIC_EPOCH.as_nanos();
    let per_client_epoch = (per_client_rps * METRIC_EPOCH.as_secs_f64()).ceil() as usize;
    let bursts_per_epoch = per_client_epoch.div_ceil(8).max(1);
    for epoch in 0..config.epochs {
        let base = SimTime::from_nanos(epoch * epoch_ns);
        for client in 0..config.clients {
            let stream = sim_core::splitmix64(config.seed ^ (epoch << 20) ^ ((client as u64) << 8));
            let mut left = per_client_epoch;
            for burst in 0..bursts_per_epoch {
                let jitter = sim_core::splitmix64(stream ^ burst as u64) % epoch_ns;
                let burst_at = base + SimDuration::from_nanos(jitter);
                for shot in 0..left.min(8) {
                    let seed = sim_core::splitmix64(stream ^ (burst as u64) << 16 ^ shot as u64);
                    arrivals.push(Arrival {
                        client: ClientId::new(client as u64),
                        rows: 1 + (seed % 3) as usize,
                        payload_seed: seed,
                        hold: SimDuration::ZERO,
                        deadline: BURST_DEADLINE,
                    });
                    // Shots inside a burst land microseconds apart.
                    let at = burst_at + SimDuration::from_nanos(shot as u64 * 25_000);
                    schedule.push((at, arrivals.len() - 1));
                }
                left = left.saturating_sub(8);
            }
        }
        // Each loris client drips one held request per epoch.
        for loris in 0..config.loris_clients {
            let stream = sim_core::splitmix64(config.seed ^ 0xA11C ^ (epoch << 16) ^ loris as u64);
            arrivals.push(Arrival {
                client: ClientId::new(1_000 + loris as u64),
                rows: 1,
                payload_seed: stream,
                hold: LORIS_HOLD,
                deadline: LORIS_DEADLINE,
            });
            let at = base + SimDuration::from_nanos(stream % epoch_ns);
            schedule.push((at, arrivals.len() - 1));
        }
    }
    // The traffic the service sees is time-ordered regardless of how the
    // plan was generated.
    schedule.sort();
    // Payload generation is the embarrassingly parallel part: pure
    // function of the arrival's seed, folded back in plan order.
    let payloads: Vec<Matrix> = par::par_map(&config.budget, &arrivals, |_, a| {
        payload(a.payload_seed, a.rows)
    });

    let policy = service.config().retry;
    let end = SimTime::from_nanos(config.epochs * epoch_ns);
    let drive = Drive {
        arrivals: &arrivals,
        schedule: &schedule,
        payloads: &payloads,
        policy,
        epochs: config.epochs,
        end,
    };
    let (mut service, tickets, epochs, attempts) = match driver {
        SimDriver::Lockstep => drive_lockstep(service, &drive),
        SimDriver::EventDriven => drive_event(service, &drive),
    };

    let mut served = 0u64;
    let mut expired = 0u64;
    let mut dropped = 0u64;
    for ticket in tickets {
        match service.take_outcome(ticket) {
            Some(Ok(_)) => served += 1,
            Some(Err(_)) => expired += 1,
            None => dropped += 1,
        }
    }
    let stats = service.stats();
    let busy: SimDuration = service.device_busy_times().into_iter().sum();
    let total = end.since(SimTime::ZERO).as_secs_f64() * config.devices as f64;
    let shed = stats.shed + stats.rejected + stats.rate_limited;
    OverloadReport {
        config: *config,
        attempts,
        admitted: stats.submitted,
        served,
        expired,
        shed,
        rate_limited: stats.rate_limited,
        degraded: stats.degraded,
        retries: stats.retries,
        deadline_misses: stats.deadline_misses,
        dropped,
        shed_rate: if attempts > 0 {
            shed as f64 / attempts as f64
        } else {
            0.0
        },
        p99_queue_wait: stats
            .queue_wait_percentile(0.99)
            .unwrap_or(SimDuration::ZERO),
        utilization: if total > 0.0 {
            busy.as_secs_f64() / total
        } else {
            0.0
        },
        breaker_opens: service.breaker_opens(),
        epochs,
    }
}

/// The borrowed attempt plan shared by both drivers.
struct Drive<'a> {
    arrivals: &'a [Arrival],
    schedule: &'a [(SimTime, usize)],
    payloads: &'a [Matrix],
    policy: RetryPolicy,
    epochs: u64,
    end: SimTime,
}

/// Mutable run state threaded through attempt processing.
struct DriveState {
    service: NpuService,
    tickets: Vec<RequestTicket>,
    epochs: Vec<MetricsSnapshot>,
    attempts: u64,
    next_epoch: u64,
    next_seq: u64,
}

impl DriveState {
    fn new(service: NpuService, drive: &Drive) -> Self {
        DriveState {
            service,
            tickets: Vec::new(),
            epochs: Vec::new(),
            attempts: 0,
            next_epoch: 1,
            next_seq: drive.schedule.len() as u64,
        }
    }

    fn into_parts(self) -> (NpuService, Vec<RequestTicket>, Vec<MetricsSnapshot>, u64) {
        (self.service, self.tickets, self.epochs, self.attempts)
    }
}

/// Processes one attempt — cuts the metric epochs the schedule crossed,
/// submits, and on a retryable rejection returns the follow-up attempt
/// to enqueue. Identical for both drivers; only the queue differs.
fn process_attempt(drive: &Drive, state: &mut DriveState, attempt: Attempt) -> Option<Attempt> {
    while state.next_epoch <= drive.epochs {
        let boundary = SimTime::from_nanos(state.next_epoch * METRIC_EPOCH.as_nanos());
        if attempt.at < boundary {
            break;
        }
        state.service.run_until(boundary);
        let snapshot = state.service.epoch_metrics(boundary);
        state.epochs.push(snapshot);
        state.next_epoch += 1;
    }
    let arrival = drive.arrivals[attempt.arrival];
    let opts = SubmitOptions {
        client: arrival.client,
        deadline: Some(attempt.at + arrival.deadline),
        hold: arrival.hold,
    };
    state.attempts += 1;
    match state
        .service
        .submit_with(&drive.payloads[attempt.arrival], attempt.at, opts)
    {
        Ok(ticket) => {
            state.tickets.push(ticket);
            None
        }
        Err(err) => {
            if err.retry_class() == RetryClass::Retryable
                && attempt.retry < drive.policy.max_attempts
            {
                let retry = attempt.retry + 1;
                // Seeded from the attempt's own heap sequence number, so
                // the jitter is independent of how the queue is hosted.
                let seed = arrival.client.value() ^ attempt.at.as_nanos() ^ attempt.seq;
                let backoff = drive.policy.backoff(retry, err.retry_after(), seed);
                state
                    .service
                    .record_retry(arrival.client, retry, backoff, attempt.at);
                let next = Attempt {
                    at: attempt.at + backoff,
                    seq: state.next_seq,
                    arrival: attempt.arrival,
                    retry,
                };
                state.next_seq += 1;
                Some(next)
            } else {
                None
            }
        }
    }
}

/// Final flush plus the trailing epoch cuts past the last attempt. The
/// cut-after-flush order matters for `MetricsSnapshot` equality.
fn finish_epochs(drive: &Drive, state: &mut DriveState) {
    state.service.flush(drive.end);
    while state.next_epoch <= drive.epochs {
        let boundary = SimTime::from_nanos(state.next_epoch * METRIC_EPOCH.as_nanos());
        let snapshot = state.service.epoch_metrics(boundary);
        state.epochs.push(snapshot);
        state.next_epoch += 1;
    }
}

/// Reference driver: drains the hand-rolled `(at, seq)`-ordered heap.
fn drive_lockstep(
    service: NpuService,
    drive: &Drive,
) -> (NpuService, Vec<RequestTicket>, Vec<MetricsSnapshot>, u64) {
    let mut state = DriveState::new(service, drive);
    let mut queue: BinaryHeap<Attempt> = drive
        .schedule
        .iter()
        .enumerate()
        .map(|(seq, &(at, arrival))| Attempt {
            at,
            seq: seq as u64,
            arrival,
            retry: 0,
        })
        .collect();
    while let Some(attempt) = queue.pop() {
        if let Some(retry) = process_attempt(drive, &mut state, attempt) {
            queue.push(retry);
        }
    }
    finish_epochs(drive, &mut state);
    state.into_parts()
}

/// Event driver: every attempt is a kernel event. The kernel's
/// `(time, priority, seq)` order coincides with the reference heap's
/// `(at, seq)` order because attempts are the only events and are
/// scheduled in exactly the order the reference pushes them.
fn drive_event(
    service: NpuService,
    drive: &Drive,
) -> (NpuService, Vec<RequestTicket>, Vec<MetricsSnapshot>, u64) {
    let mut state = DriveState::new(service, drive);
    let mut kernel: Kernel<Attempt, DriveState> = Kernel::new(0);
    let submitter = kernel.register("overload-client", |state: &mut DriveState, sched, event| {
        if let Some(retry) = process_attempt(drive, state, event.payload) {
            sched.schedule(retry.at, event.dst, 0, retry);
        }
    });
    for (seq, &(at, arrival)) in drive.schedule.iter().enumerate() {
        kernel.scheduler().schedule(
            at,
            submitter,
            0,
            Attempt {
                at,
                seq: seq as u64,
                arrival,
                retry: 0,
            },
        );
    }
    kernel.run_to_idle(&mut state);
    finish_epochs(drive, &mut state);
    state.into_parts()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> OverloadConfig {
        OverloadConfig {
            epochs: 5,
            ..OverloadConfig::default()
        }
    }

    #[test]
    fn overload_invariants_hold_at_10x() {
        let report = run(&quick());
        // The service absorbed a 10x storm without losing or serving-late
        // a single admitted request.
        assert_eq!(report.deadline_misses, 0);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.served + report.expired, report.admitted);
        // Overload is shed, boundedly: plenty turned away, but the pool
        // keeps serving.
        assert!(report.shed > 0, "10x overload must shed");
        assert!(report.shed_rate < 1.0, "shedding everything serves nobody");
        assert!(report.served > 0);
        assert!(report.attempts > report.admitted);
        assert_eq!(report.epochs.len(), 5);
    }

    #[test]
    fn fault_storm_keeps_the_invariants() {
        let config = OverloadConfig {
            fault_storm: true,
            ..quick()
        };
        let report = run(&config);
        assert_eq!(report.deadline_misses, 0);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.served + report.expired, report.admitted);
        assert!(report.served > 0);
        assert!(report.breaker_opens > 0, "a storm must trip the breaker");
    }

    #[test]
    fn drivers_agree_on_the_full_storm() {
        let lockstep = run_with_driver(&quick(), SimDriver::Lockstep);
        let event = run_with_driver(&quick(), SimDriver::EventDriven);
        // Same heap order, same backoff seeds, same epoch cuts: the
        // kernel-hosted run is indistinguishable from the reference.
        assert_eq!(lockstep, event);

        let storm = OverloadConfig {
            fault_storm: true,
            ..quick()
        };
        assert_eq!(
            run_with_driver(&storm, SimDriver::Lockstep),
            run_with_driver(&storm, SimDriver::EventDriven)
        );
    }

    #[test]
    fn report_is_bit_identical_across_budgets() {
        let serial = run(&quick());
        let parallel = run(&OverloadConfig {
            budget: par::Budget::with_threads(4),
            ..quick()
        });
        // Budgets differ in the config, never in the results.
        assert_eq!(serial.attempts, parallel.attempts);
        assert_eq!(serial.admitted, parallel.admitted);
        assert_eq!(serial.served, parallel.served);
        assert_eq!(serial.epochs, parallel.epochs);
        assert_eq!(serial.p99_queue_wait, parallel.p99_queue_wait);
    }
}

//! **Fig. 1 (motivational example).** The optimal mapping that minimizes
//! temperature under a 30 % QoS target differs between `adi` (big) and
//! `seidel-2d` (LITTLE), and disappears when high-QoS background
//! applications force both clusters to the peak V/f level.

use std::fmt;

use hikey_platform::OppTable;
use hmc_types::{Celsius, Cluster, CoreId, Frequency, QosTarget};
use topil::oracle::{Scenario, TraceCollector};
use workloads::Benchmark;

/// One row of the motivational-example table.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingResult {
    /// Cluster the application is mapped to.
    pub cluster: Cluster,
    /// Minimum LITTLE frequency satisfying all QoS targets.
    pub f_little: Frequency,
    /// Minimum big frequency satisfying all QoS targets.
    pub f_big: Frequency,
    /// Resulting peak temperature.
    pub temperature: Celsius,
    /// Whether the QoS target is reachable on this mapping at all.
    pub feasible: bool,
}

/// The motivational-example report.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Report {
    /// Scenario 1 results: `(benchmark, little mapping, big mapping)`.
    pub scenario1: Vec<(Benchmark, MappingResult, MappingResult)>,
    /// Scenario 2 (heavy background): adi on LITTLE vs. big.
    pub scenario2: (MappingResult, MappingResult),
}

impl Fig1Report {
    /// The cluster that minimizes temperature for `benchmark` in
    /// Scenario 1.
    pub fn optimal_cluster(&self, benchmark: Benchmark) -> Option<Cluster> {
        self.scenario1
            .iter()
            .find(|(b, _, _)| *b == benchmark)
            .map(|(_, little, big)| {
                if little.temperature <= big.temperature {
                    Cluster::Little
                } else {
                    Cluster::Big
                }
            })
    }
}

impl fmt::Display for Fig1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 1 — motivational example (QoS = 30 % of max-big IPS)"
        )?;
        writeln!(f, "\nScenario 1: single application")?;
        writeln!(
            f,
            "{:<12} {:<8} {:>10} {:>10} {:>9}",
            "app", "mapping", "f_LITTLE", "f_big", "temp"
        )?;
        for (benchmark, little, big) in &self.scenario1 {
            for r in [little, big] {
                writeln!(
                    f,
                    "{:<12} {:<8} {:>10} {:>10} {:>9}",
                    benchmark.name(),
                    r.cluster.to_string(),
                    r.f_little.to_string(),
                    r.f_big.to_string(),
                    format!("{}", r.temperature),
                )?;
            }
        }
        writeln!(
            f,
            "\nScenario 2: adi + high-QoS background on both clusters"
        )?;
        for r in [&self.scenario2.0, &self.scenario2.1] {
            writeln!(
                f,
                "{:<12} {:<8} {:>10} {:>10} {:>9}",
                "adi",
                r.cluster.to_string(),
                r.f_little.to_string(),
                r.f_big.to_string(),
                format!("{}", r.temperature),
            )?;
        }
        Ok(())
    }
}

/// Regenerates Fig. 1.
pub fn run() -> Fig1Report {
    let collector = TraceCollector::new().with_grids(
        OppTable::hikey970(Cluster::Little),
        OppTable::hikey970(Cluster::Big),
    );

    let mapping = |traces: &topil::oracle::ScenarioTraces,
                   core: CoreId,
                   target: QosTarget,
                   floor: (usize, usize)|
     -> MappingResult {
        let (nl, nb) = (traces.little_freqs.len(), traces.big_freqs.len());
        let cluster = core.cluster();
        // Sweep the own-cluster frequency from the floor upward; the other
        // cluster stays at its floor level.
        let mut found = None;
        match cluster {
            Cluster::Little => {
                for fl in floor.0..nl {
                    if traces.point(core, fl, floor.1).ips.meets(target.ips()) {
                        found = Some((fl, floor.1));
                        break;
                    }
                }
            }
            Cluster::Big => {
                for fb in floor.1..nb {
                    if traces.point(core, floor.0, fb).ips.meets(target.ips()) {
                        found = Some((floor.0, fb));
                        break;
                    }
                }
            }
        }
        let (fl, fb, feasible) = match found {
            Some((fl, fb)) => (fl, fb, true),
            None => match cluster {
                Cluster::Little => (nl - 1, floor.1, false),
                Cluster::Big => (floor.0, nb - 1, false),
            },
        };
        MappingResult {
            cluster,
            f_little: traces.little_freqs[fl],
            f_big: traces.big_freqs[fb],
            temperature: traces.point(core, fl, fb).peak_temp,
            feasible,
        }
    };

    // Scenario 1: the application alone on the platform.
    let mut scenario1 = Vec::new();
    for benchmark in [Benchmark::Adi, Benchmark::SeidelTwoD] {
        let scenario = Scenario::new(benchmark, vec![]);
        let traces = collector.collect(&scenario);
        let target = QosTarget::new(traces.max_ips().scaled(0.3));
        let little = mapping(&traces, CoreId::new(1), target, (0, 0));
        let big = mapping(&traces, CoreId::new(5), target, (0, 0));
        scenario1.push((benchmark, little, big));
    }

    // Scenario 2: adi plus background that needs peak V/f on both
    // clusters — the floor is the top grid level.
    let scenario = Scenario::new(
        Benchmark::Adi,
        vec![
            (Benchmark::Syr2k, CoreId::new(0)),
            (Benchmark::Syr2k, CoreId::new(2)),
            (Benchmark::Gramschmidt, CoreId::new(3)),
            (Benchmark::Gramschmidt, CoreId::new(4)),
            (Benchmark::FloydWarshall, CoreId::new(6)),
            (Benchmark::FdtdTwoD, CoreId::new(7)),
        ],
    );
    let traces = collector.collect(&scenario);
    let target = QosTarget::new(traces.max_ips().scaled(0.3));
    let top = (traces.little_freqs.len() - 1, traces.big_freqs.len() - 1);
    let scenario2 = (
        mapping(&traces, CoreId::new(1), target, top),
        mapping(&traces, CoreId::new(5), target, top),
    );

    Fig1Report {
        scenario1,
        scenario2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_papers_motivational_claims() {
        let report = run();
        // adi: big mapping is cooler; needs top LITTLE OPP but bottom big.
        assert_eq!(report.optimal_cluster(Benchmark::Adi), Some(Cluster::Big));
        let (_, little, big) = &report.scenario1[0];
        assert_eq!(little.f_little.as_mhz(), 1844);
        assert_eq!(big.f_big.as_mhz(), 682);
        // seidel-2d: LITTLE is (marginally) cooler.
        assert_eq!(
            report.optimal_cluster(Benchmark::SeidelTwoD),
            Some(Cluster::Little)
        );
        // Scenario 2: with the background forcing both clusters to peak
        // V/f, the big cluster loses its Scenario-1 advantage for adi (the
        // paper observes near-equal temperatures; our simpler thermal
        // model preserves the reversal with a somewhat larger delta).
        assert!(
            report.scenario2.1.temperature.value() >= report.scenario2.0.temperature.value() - 0.5,
            "big must no longer be the cooler mapping under peak background"
        );
    }

    #[test]
    fn report_prints_all_rows() {
        let text = run().to_string();
        assert!(text.contains("adi"));
        assert!(text.contains("seidel-2d"));
        assert!(text.contains("Scenario 2"));
    }
}

//! **Fig. 4 (training-data illustration).** Reprints the paper's
//! illustrative tables: trace results (AoI performance and temperature on
//! the two free cores over the V/f grid), label calculation for selected
//! QoS targets (Eq. 4), and the resulting training examples.

use std::fmt;

use hmc_types::CoreId;
use topil::oracle::{extract_cases, ExtractionConfig, Scenario, ScenarioTraces, TraceCollector};
use workloads::Benchmark;

/// The illustrative report: traces plus a sample of labeled cases.
#[derive(Debug, Clone)]
pub struct Fig4Report {
    /// The collected traces of the illustrative scenario.
    pub traces: ScenarioTraces,
    /// Extracted labeled cases (a small sweep).
    pub cases: Vec<topil::oracle::OracleCase>,
}

impl fmt::Display for Fig4Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 4 — training-data generation for AoI `{}` (free cores: {:?})",
            self.traces.scenario.aoi,
            self.traces
                .free_cores()
                .iter()
                .map(|c| c.index())
                .collect::<Vec<_>>()
        )?;
        for &core in self.traces.free_cores() {
            writeln!(f, "\nTrace results (AoI on {core}):")?;
            write!(f, "{:>12}", "q / T")?;
            for fb in &self.traces.big_freqs {
                write!(f, "{:>22}", format!("f_b={fb}"))?;
            }
            writeln!(f)?;
            for (fl_idx, fl) in self.traces.little_freqs.iter().enumerate() {
                write!(f, "{:>12}", format!("f_l={fl}"))?;
                for fb_idx in 0..self.traces.big_freqs.len() {
                    let p = self.traces.point(core, fl_idx, fb_idx);
                    write!(
                        f,
                        "{:>22}",
                        format!("{:.0} MIPS / {}", p.ips.as_mips(), p.peak_temp)
                    )?;
                }
                writeln!(f)?;
            }
        }
        writeln!(f, "\nLabel examples (Eq. 4, α = 1):")?;
        writeln!(
            f,
            "{:>10} {:>12} {:>12}   labels l_0..l_7",
            "Q_AoI", "f̃_l\\AoI", "f̃_b\\AoI"
        )?;
        for case in self.cases.iter().take(8) {
            let src = &case.sources[0];
            write!(
                f,
                "{:>10} {:>12.2} {:>12.2}  ",
                format!("{:.0} MIPS", src.qos_target.ips().as_mips()),
                src.required_vf_ratio[0],
                src.required_vf_ratio[1],
            )?;
            for l in case.labels {
                write!(f, " {l:>5.2}")?;
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "\n{} labeled cases -> {} training examples",
            self.cases.len(),
            self.cases.iter().map(|c| c.sources.len()).sum::<usize>()
        )
    }
}

/// Regenerates Fig. 4 using the paper's illustrative scenario: seidel-2d
/// as AoI with cores 3 and 6 free.
pub fn run() -> Fig4Report {
    let scenario = Scenario::new(
        Benchmark::SeidelTwoD,
        vec![
            (Benchmark::Adi, CoreId::new(0)),
            (Benchmark::Syr2k, CoreId::new(1)),
            (Benchmark::Gramschmidt, CoreId::new(2)),
            (Benchmark::FdtdTwoD, CoreId::new(4)),
            (Benchmark::HeatThreeD, CoreId::new(5)),
            (Benchmark::FloydWarshall, CoreId::new(7)),
        ],
    );
    let traces = TraceCollector::new().collect(&scenario);
    let cases = extract_cases(
        &traces,
        &ExtractionConfig {
            qos_fractions: vec![0.2, 0.4],
            ..ExtractionConfig::default()
        },
    );
    Fig4Report { traces, cases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn illustrative_pipeline_matches_paper_structure() {
        let report = run();
        assert_eq!(
            report.traces.free_cores(),
            &[CoreId::new(3), CoreId::new(6)]
        );
        assert!(!report.cases.is_empty());
        // Every case must label exactly the two free cores as non-occupied.
        for case in &report.cases {
            let free_labels = [case.labels[3], case.labels[6]];
            assert!(free_labels.iter().any(|&l| l != 0.0));
            for i in [0, 1, 2, 4, 5, 7] {
                assert_eq!(case.labels[i], 0.0);
            }
        }
        let text = report.to_string();
        assert!(text.contains("Trace results"));
        assert!(text.contains("Label examples"));
    }
}

//! Robustness extension: fault-rate sweep over NPU failures and thermal
//! sensor dropouts, with the degradation ladder enabled vs. disabled.
//!
//! For every fault point a mixed workload runs twice: once with the full
//! ladder (retry → circuit breaker → CPU fallback, sensor filtering with
//! DTM fail-safe) and once with every mitigation off. The comparison shows
//! that the ladder keeps the governor functional — and the die protected —
//! under fault rates that break the unguarded configuration's QoS.

use std::fmt;

use faults::FaultPlan;
use hikey_platform::{SimConfig, Simulator};
use hmc_types::SimDuration;
use rand::rngs::StdRng;
use rand::SeedableRng;
use topil::oracle::Scenario;
use topil::training::{IlModel, IlTrainer, TrainSettings};
use topil::{RobustnessConfig, TopIlGovernor};
use workloads::{MixedWorkloadConfig, WorkloadGenerator};

use crate::harness::Effort;

/// One fault point of the sweep, run with the ladder on or off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessPoint {
    /// Per-job NPU failure probability.
    pub npu_failure_rate: f64,
    /// Per-sample thermal-sensor dropout probability.
    pub sensor_dropout_rate: f64,
    /// Whether the degradation ladder was enabled.
    pub ladder: bool,
    /// Average die temperature over the run.
    pub avg_temp_c: f64,
    /// Peak die temperature over the run.
    pub peak_temp_c: f64,
    /// Applications that finished with a violated QoS target.
    pub violations: usize,
    /// Applications that finished.
    pub executions: usize,
    /// Migration epochs that produced no decision at all.
    pub degraded_epochs: u64,
    /// Migration epochs served by the CPU inference fallback.
    pub cpu_fallback_epochs: u64,
    /// Individual NPU job failures observed.
    pub npu_failures: u64,
    /// Times the NPU circuit breaker opened.
    pub breaker_opens: u64,
    /// Ticks the DTM fail-safe (sensor lost) events fired.
    pub failsafe_events: u64,
}

/// The full fault-rate sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessReport {
    /// All sweep points (each fault combination × ladder on/off).
    pub points: Vec<RobustnessPoint>,
}

impl fmt::Display for RobustnessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Robustness sweep: fault injection vs. the degradation ladder"
        )?;
        writeln!(
            f,
            "  {:>7} {:>7} {:>6} {:>8} {:>8} {:>10} {:>9} {:>9} {:>8} {:>8}",
            "npu",
            "dropout",
            "ladder",
            "avgT(C)",
            "peakT(C)",
            "violations",
            "degraded",
            "fallback",
            "npufail",
            "failsafe"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "  {:>7.2} {:>7.2} {:>6} {:>8.2} {:>8.2} {:>6}/{:<3} {:>9} {:>9} {:>8} {:>8}",
                p.npu_failure_rate,
                p.sensor_dropout_rate,
                if p.ladder { "on" } else { "off" },
                p.avg_temp_c,
                p.peak_temp_c,
                p.violations,
                p.executions,
                p.degraded_epochs,
                p.cpu_fallback_epochs,
                p.npu_failures,
                p.failsafe_events
            )?;
        }
        Ok(())
    }
}

/// The fault combinations swept (NPU failure rate, sensor dropout rate).
pub fn sweep_grid() -> Vec<(f64, f64)> {
    vec![
        (0.0, 0.0),
        (0.05, 0.0),
        (0.1, 0.0),
        (0.2, 0.0),
        (0.0, 0.05),
        (0.0, 0.1),
        (0.2, 0.1),
    ]
}

/// Runs one fault point under a fresh governor.
pub fn run_point(
    model: IlModel,
    npu_failure_rate: f64,
    sensor_dropout_rate: f64,
    ladder: bool,
    effort: Effort,
) -> RobustnessPoint {
    run_point_traced(
        model,
        npu_failure_rate,
        sensor_dropout_rate,
        ladder,
        effort,
        17,
        trace::TraceConfig::off(),
    )
    .0
}

/// Runs one fault point with an explicit workload seed and event tracing —
/// the sweep supervisor's entry point, whose trace hash certifies that a
/// resumed sweep reproduces the uninterrupted run bit-for-bit.
pub fn run_point_traced(
    model: IlModel,
    npu_failure_rate: f64,
    sensor_dropout_rate: f64,
    ladder: bool,
    effort: Effort,
    workload_seed: u64,
    trace: trace::TraceConfig,
) -> (RobustnessPoint, Option<trace::TraceHash>) {
    let mut plan = FaultPlan::none(0xFA0175);
    plan.npu.failure_rate = npu_failure_rate;
    plan.sensor.dropout_rate = sensor_dropout_rate;

    let mut governor = TopIlGovernor::new(model).with_fault_plan(plan);
    if !ladder {
        governor = governor.with_robustness(RobustnessConfig::disabled());
    }
    let workload_cfg = MixedWorkloadConfig {
        num_apps: 12,
        mean_interarrival: SimDuration::from_secs(6),
        total_instructions: Some(effort.app_instructions()),
        ..MixedWorkloadConfig::default()
    };
    let workload =
        WorkloadGenerator::mixed(&workload_cfg, &mut StdRng::seed_from_u64(workload_seed));
    let sim = SimConfig {
        max_duration: SimDuration::from_secs(1200),
        fault_plan: Some(plan),
        trace,
        // The unguarded configuration also loses the sensor filter: raw
        // (possibly dropped) samples feed the DTM directly.
        sensor_filter: if ladder {
            SimConfig::default().sensor_filter
        } else {
            None
        },
        ..SimConfig::default()
    };
    let report = Simulator::new(sim).run(&workload, &mut governor);
    let hash = report.events.as_ref().map(|log| log.hash);
    let degradation = report.degradation.unwrap_or_default();
    let point = RobustnessPoint {
        npu_failure_rate,
        sensor_dropout_rate,
        ladder,
        avg_temp_c: report.metrics.avg_temperature().value(),
        peak_temp_c: report.metrics.peak_temperature().value(),
        violations: report.metrics.qos_violations(),
        executions: report.metrics.outcomes().len(),
        degraded_epochs: degradation.degraded_epochs,
        cpu_fallback_epochs: degradation.cpu_fallback_epochs,
        npu_failures: degradation.npu_failures,
        breaker_opens: degradation.breaker_opens,
        failsafe_events: report.metrics.failsafe_events(),
    };
    (point, hash)
}

/// Trains the model the robustness experiments evaluate.
pub fn sweep_model(effort: Effort) -> IlModel {
    let scenarios = Scenario::standard_set(effort.scenario_count().min(20), 0xC0FFEE);
    let settings = TrainSettings {
        nn: effort.train_config(),
        ..TrainSettings::default()
    };
    IlTrainer::new(settings).train(&scenarios, 0)
}

/// Regenerates the full sweep (each fault point, ladder on and off).
pub fn run(effort: Effort) -> RobustnessReport {
    let model = sweep_model(effort);

    let mut points = Vec::new();
    for (npu, dropout) in sweep_grid() {
        for ladder in [true, false] {
            points.push(run_point(model.clone(), npu, dropout, ladder, effort));
        }
    }
    RobustnessReport { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::TrainConfig;

    fn quick_model() -> IlModel {
        let settings = TrainSettings {
            nn: TrainConfig {
                max_epochs: 60,
                patience: 15,
                ..TrainConfig::default()
            },
            ..TrainSettings::default()
        };
        IlTrainer::new(settings).train(&Scenario::standard_set(10, 33), 0)
    }

    #[test]
    fn ladder_absorbs_total_npu_loss() {
        let model = quick_model();
        let on = run_point(model.clone(), 1.0, 0.0, true, Effort::Quick);
        let off = run_point(model, 1.0, 0.0, false, Effort::Quick);

        // With the ladder the epochs are served by the CPU fallback.
        assert!(on.npu_failures > 0);
        assert!(on.breaker_opens >= 1);
        assert!(on.cpu_fallback_epochs > 0);
        // Without it every epoch is lost.
        assert!(off.cpu_fallback_epochs == 0);
        assert!(off.degraded_epochs > 0);
        // Both complete without panicking and finish the workload.
        assert!(on.executions > 0);
        assert!(off.executions > 0);
    }

    #[test]
    fn fault_free_point_is_clean() {
        let point = run_point(quick_model(), 0.0, 0.0, true, Effort::Quick);
        assert_eq!(point.npu_failures, 0);
        assert_eq!(point.breaker_opens, 0);
        assert_eq!(point.degraded_epochs, 0);
        assert_eq!(point.cpu_fallback_epochs, 0);
        assert_eq!(point.failsafe_events, 0);
        assert!(point.executions > 0);
    }
}

//! **Fig. 5 (migration overhead).** Worst-case overhead of periodic
//! migration: each application ping-pongs between the clusters every
//! migration epoch; the overhead compares its throughput against the
//! average of the two pinned executions:
//!
//! ```text
//! m = (1/2 · (1/t_big + 1/t_LITTLE)) / (1/t_migrate) − 1
//! ```

use std::fmt;

use hikey_platform::{Platform, PlatformConfig};
use hmc_types::{CoreId, QosTarget, SimDuration, SimTime};
use workloads::Benchmark;

/// Instructions per measurement run.
const INSTRUCTIONS: u64 = 20_000_000_000;
/// The paper's migration epoch.
const EPOCH: SimDuration = SimDuration::from_millis(500);

/// Overhead of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Worst-case migration overhead (fraction; 0.01 = 1 %).
    pub overhead: f64,
}

/// The migration-overhead report.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Report {
    /// Per-benchmark overhead.
    pub rows: Vec<OverheadRow>,
}

impl Fig5Report {
    /// The maximum worst-case overhead (paper: < 4 %).
    pub fn max_overhead(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.overhead)
            .fold(f64::MIN, f64::max)
    }

    /// The mean worst-case overhead (paper: ≈ 0.1 %).
    pub fn mean_overhead(&self) -> f64 {
        self.rows.iter().map(|r| r.overhead).sum::<f64>() / self.rows.len().max(1) as f64
    }
}

impl fmt::Display for Fig5Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 5 — worst-case migration overhead (ping-pong every 500 ms)"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<16} {:>7.2} %",
                row.benchmark.name(),
                row.overhead * 100.0
            )?;
        }
        writeln!(
            f,
            "max {:.2} %, mean {:.2} %",
            self.max_overhead() * 100.0,
            self.mean_overhead() * 100.0
        )
    }
}

/// Time to execute the benchmark pinned to `core` at peak frequencies.
fn pinned_time(benchmark: Benchmark, core: CoreId) -> f64 {
    let mut platform = Platform::new(PlatformConfig::default());
    let id = platform.admit_model(benchmark.model(), QosTarget::NONE, core, Some(INSTRUCTIONS));
    while platform.app_count() > 0 {
        platform.tick();
    }
    let _ = id;
    platform.now().since(SimTime::ZERO).as_secs_f64()
}

/// Time with a forced migration between clusters every epoch.
fn migrating_time(benchmark: Benchmark) -> f64 {
    let mut platform = Platform::new(PlatformConfig::default());
    let id = platform.admit_model(
        benchmark.model(),
        QosTarget::NONE,
        CoreId::new(5),
        Some(INSTRUCTIONS),
    );
    let cores = [CoreId::new(1), CoreId::new(5)];
    let mut side = 0;
    let epoch_ticks = EPOCH.as_nanos() / platform.tick_duration().as_nanos();
    'outer: loop {
        for _ in 0..epoch_ticks {
            platform.tick();
            if platform.app_count() == 0 {
                break 'outer;
            }
        }
        platform.migrate(id, cores[side]);
        side = 1 - side;
    }
    platform.now().since(SimTime::ZERO).as_secs_f64()
}

/// Regenerates Fig. 5 for all sixteen benchmarks.
pub fn run() -> Fig5Report {
    let rows = Benchmark::all()
        .iter()
        .map(|&benchmark| {
            let t_big = pinned_time(benchmark, CoreId::new(5));
            let t_little = pinned_time(benchmark, CoreId::new(1));
            let t_migrate = migrating_time(benchmark);
            let avg_rate = 0.5 * (1.0 / t_big + 1.0 / t_little);
            let overhead = avg_rate / (1.0 / t_migrate) - 1.0;
            OverheadRow {
                benchmark,
                overhead,
            }
        })
        .collect();
    Fig5Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_are_small_like_the_paper() {
        let report = run();
        assert_eq!(report.rows.len(), 16);
        assert!(
            report.max_overhead() < 0.05,
            "paper: max worst-case overhead < 4 %, got {:.2} %",
            report.max_overhead() * 100.0
        );
        assert!(
            report.mean_overhead() < 0.02,
            "paper: average ≈ 0.1 %, got {:.2} %",
            report.mean_overhead() * 100.0
        );
        // Memory/cache-heavy canneal pays more than compute-bound
        // swaptions.
        let get = |b: Benchmark| {
            report
                .rows
                .iter()
                .find(|r| r.benchmark == b)
                .unwrap()
                .overhead
        };
        assert!(get(Benchmark::Canneal) > get(Benchmark::Swaptions));
    }
}

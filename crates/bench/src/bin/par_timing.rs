//! Wall-clock timing harness behind `BENCH_parallel.json`.
//!
//! Measures the serial wall time of the three layers that accept a
//! [`par::Budget`] — a sharded training epoch, a robustness-sweep grid and
//! a fleet run — re-runs each at a 4-thread budget, verifies the outputs
//! are bit-identical, and reports *modeled* 4-worker speedups from the
//! measured serial decomposition (parallelizable work scheduled over four
//! workers plus the measured serial residue). The modeled numbers are the
//! honest headline on hosts with fewer than four cores, where the measured
//! parallel wall time cannot beat serial. Prints JSON to stdout:
//!
//! ```text
//! cargo run --release -p bench --bin par-timing > BENCH_parallel.json
//! ```
//!
//! Methodology notes:
//!
//! * The training epoch is timed *marginally* — `(T(9 epochs) - T(1
//!   epoch)) / 8` — so one-off setup (dataset split, Adam init) does not
//!   pollute the per-epoch number. Its parallelizable portion re-runs the
//!   exact sharded forward/backward arithmetic on the same split sizes.
//! * Sweep points are timed as grid *prefixes* (via the supervisor's
//!   simulated-crash hook), because every point derives its workload from
//!   its own grid index — timing points in isolation would give all of
//!   them point 0's workload.

use std::path::PathBuf;
use std::time::Instant;

use bench::fleet::{run_with_model, FleetConfig};
use bench::sweep::{run_sweep, sweep_csv, GridPoint, SweepConfig, SweepHooks};
use nn::{Dataset, Mlp, TrainControl};
use par::{shard_ranges, Budget, DEFAULT_SHARDS};
use rand::rngs::StdRng;
use rand::SeedableRng;
use topil::oracle::Scenario;
use topil::training::{IlModel, IlTrainer, TrainSettings};

const SAMPLES: usize = 7;
const WORKERS: f64 = 4.0;

/// Median wall time of `f` in nanoseconds over [`SAMPLES`] runs.
fn median_ns(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("par-timing-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn quick_model(seed: u64) -> IlModel {
    let settings = TrainSettings {
        nn: nn::TrainConfig {
            max_epochs: 30,
            ..nn::TrainConfig::default()
        },
        ..TrainSettings::default()
    };
    IlTrainer::new(settings).train(&Scenario::standard_set(6, 9), seed)
}

/// One serial pass of the sharded minibatch gradient arithmetic over
/// `rows` examples — the train-set portion of an epoch the budget scales.
fn gradient_work(mlp: &Mlp, data: &Dataset, rows: usize, batch_size: usize) {
    let order: Vec<usize> = (0..rows).collect();
    for chunk in order.chunks(batch_size.max(1)) {
        let shards = shard_ranges(chunk.len(), DEFAULT_SHARDS);
        let total_elems = chunk.len() * mlp.output_size();
        let mut merged: Option<(f32, nn::Gradients)> = None;
        for range in shards {
            let batch = data.subset(&chunk[range]);
            let cache = mlp.forward_cached(batch.x());
            let (sq_sum, grad) = Mlp::mse_loss_sharded(cache.output(), batch.y(), total_elems);
            let shard = (sq_sum, mlp.backward(&cache, &grad));
            merged = Some(match merged {
                None => shard,
                Some((sq_a, mut grad_a)) => {
                    grad_a.accumulate(&shard.1);
                    (sq_a + shard.0, grad_a)
                }
            });
        }
        std::hint::black_box(&merged);
    }
}

/// One serial pass of the sharded validation arithmetic over `rows`
/// examples — the val-set portion of an epoch the budget scales.
fn validation_work(mlp: &Mlp, data: &Dataset, rows: usize) {
    for range in shard_ranges(rows, DEFAULT_SHARDS) {
        let indices: Vec<usize> = range.collect();
        let batch = data.subset(&indices);
        std::hint::black_box(Mlp::sq_error_sum(&mlp.forward_batch(batch.x()), batch.y()));
    }
}

fn main() {
    println!("{{");
    println!(
        "  \"note\": \"wall-clock ns, medians of {SAMPLES} samples on a {}-core host; \
         measured_t4 re-runs the same work at Budget::with_threads(4), modeled_t4 schedules \
         the measured parallelizable work over 4 workers and adds the measured serial \
         residue (Amdahl); every *identical* flag asserts bit-identical outputs across \
         budgets; the training epoch is timed marginally over 8 extra epochs, sweep points \
         as grid prefixes\",",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // --- Layer 1: one sharded training epoch ------------------------------
    let trainer = IlTrainer::new(TrainSettings::default());
    let cases = trainer.collect_cases(&Scenario::standard_set(4, 21));
    let (dataset, _) = IlTrainer::build_dataset(&cases);
    let config = |max_epochs: usize| nn::TrainConfig {
        max_epochs,
        patience: 1_000, // never stop early inside the timing window
        ..nn::TrainConfig::default()
    };
    let init = Mlp::with_topology(
        topil::FEATURE_COUNT,
        2,
        64,
        hmc_types::NUM_CORES,
        &mut StdRng::seed_from_u64(33),
    );
    let run_epochs = |max_epochs: usize, budget: &Budget| {
        let mut mlp = init.clone();
        nn::train_resumable(
            &mut mlp,
            &dataset,
            &config(max_epochs),
            7,
            budget,
            None,
            &mut |_| TrainControl::Continue,
        );
        mlp
    };
    let marginal = |budget: &Budget| {
        let t1 = median_ns(|| {
            std::hint::black_box(run_epochs(1, budget));
        });
        let t9 = median_ns(|| {
            std::hint::black_box(run_epochs(9, budget));
        });
        (t9 - t1) / 8.0
    };
    let epoch_serial_ns = marginal(&Budget::serial());
    let epoch_t4_ns = marginal(&Budget::with_threads(4));
    let epoch_identical =
        run_epochs(9, &Budget::serial()) == run_epochs(9, &Budget::with_threads(4));
    // Parallelizable portion: the sharded forward/backward arithmetic on
    // the epoch's actual split sizes (same clamp as `Dataset::split`).
    let nn_config = config(1);
    let n_val = ((dataset.len() as f64) * nn_config.val_fraction).round() as usize;
    let n_val = n_val.clamp(1, dataset.len().saturating_sub(1).max(1));
    let n_train = dataset.len() - n_val;
    let gradient_ns = median_ns(|| {
        gradient_work(&init, &dataset, n_train, nn_config.batch_size);
        validation_work(&init, &dataset, n_val);
    });
    let residue_ns = (epoch_serial_ns - gradient_ns).max(0.0);
    let epoch_modeled_t4 = residue_ns + gradient_ns / WORKERS;
    println!("  \"training_epoch_examples\": {},", dataset.len());
    println!("  \"training_epoch_serial_ns\": {epoch_serial_ns:.0},");
    println!("  \"training_epoch_measured_t4_ns\": {epoch_t4_ns:.0},");
    println!("  \"training_epoch_gradient_work_ns\": {gradient_ns:.0},");
    println!("  \"training_epoch_serial_residue_ns\": {residue_ns:.0},");
    println!("  \"training_epoch_modeled_t4_ns\": {epoch_modeled_t4:.0},");
    println!(
        "  \"modeled_speedup_training_epoch_4workers\": {:.2},",
        epoch_serial_ns / epoch_modeled_t4
    );
    println!("  \"training_epoch_identical\": {epoch_identical},");
    eprintln!("training epoch timed");

    // --- Layer 2: a four-point sweep grid ---------------------------------
    let model = quick_model(3);
    let grid: Vec<GridPoint> = [(0.0, 0.0), (0.3, 0.0), (0.0, 0.2), (0.3, 0.2)]
        .iter()
        .map(|&(npu, drop)| GridPoint {
            npu_failure_rate: npu,
            sensor_dropout_rate: drop,
            ladder: true,
        })
        .collect();
    let sweep_config = |budget: Budget| SweepConfig {
        grid: Some(grid.clone()),
        budget,
        ..SweepConfig::default()
    };
    // Serial prefix times T(k) = store open + first k points + k commits;
    // marginals T(k) - T(k-1) are the per-point costs in grid context.
    let serial_config = sweep_config(Budget::serial());
    let mut prefix_ns = vec![0.0f64; grid.len() + 1];
    for (k, slot) in prefix_ns.iter_mut().enumerate() {
        let hooks = SweepHooks {
            crash_after_points: Some(k),
            ..SweepHooks::default()
        };
        *slot = median_ns(|| {
            let dir = tmp_dir(&format!("prefix-{k}"));
            run_sweep(&model, &serial_config, &dir, &hooks, None).expect("sweep prefix");
            std::fs::remove_dir_all(&dir).ok();
        });
        eprintln!("sweep prefix {k} timed");
    }
    let point_ns: Vec<f64> = prefix_ns
        .windows(2)
        .map(|w| (w[1] - w[0]).max(0.0))
        .collect();
    let mut serial_manifest = None;
    let grid_serial_ns = median_ns(|| {
        let dir = tmp_dir("grid-serial");
        let outcome =
            run_sweep(&model, &serial_config, &dir, &SweepHooks::default(), None).expect("sweep");
        serial_manifest = Some(outcome.manifest);
        std::fs::remove_dir_all(&dir).ok();
    });
    let parallel_config = sweep_config(Budget::with_threads(4));
    let mut parallel_manifest = None;
    let grid_t4_ns = median_ns(|| {
        let dir = tmp_dir("grid-t4");
        let outcome =
            run_sweep(&model, &parallel_config, &dir, &SweepHooks::default(), None).expect("sweep");
        parallel_manifest = Some(outcome.manifest);
        std::fs::remove_dir_all(&dir).ok();
    });
    let sweep_identical = match (&serial_manifest, &parallel_manifest) {
        (Some(a), Some(b)) => a == b && sweep_csv(a) == sweep_csv(b),
        _ => false,
    };
    // One wave of four points on four workers: wall time is the slowest
    // point plus the serial base (store open) and any unattributed rest.
    let sum_ns: f64 = point_ns.iter().sum();
    let slowest_ns = point_ns.iter().fold(0.0f64, |a, &b| a.max(b));
    let base_ns = prefix_ns[0];
    let unattributed_ns = (grid_serial_ns - base_ns - sum_ns).max(0.0);
    let grid_modeled_t4 = base_ns + slowest_ns + unattributed_ns;
    println!("  \"sweep_grid_points\": {},", grid.len());
    println!("  \"sweep_grid_serial_ns\": {grid_serial_ns:.0},");
    println!("  \"sweep_grid_measured_t4_ns\": {grid_t4_ns:.0},");
    println!("  \"sweep_point_slowest_ns\": {slowest_ns:.0},");
    println!(
        "  \"sweep_grid_serial_residue_ns\": {:.0},",
        base_ns + unattributed_ns
    );
    println!("  \"sweep_grid_modeled_t4_ns\": {grid_modeled_t4:.0},");
    println!(
        "  \"modeled_speedup_sweep_grid_4workers\": {:.2},",
        grid_serial_ns / grid_modeled_t4
    );
    println!("  \"sweep_grid_identical\": {sweep_identical},");
    eprintln!("sweep grid timed");

    // --- Layer 3: a fleet run ---------------------------------------------
    let fleet_config = FleetConfig {
        boards: 8,
        epochs: 8,
        devices: 2,
        max_batch: 8,
        workers: 2,
        seed: 3,
        budget: Budget::serial(),
        ..FleetConfig::default()
    };
    let mut serial_csv = String::new();
    let fleet_serial_ns = median_ns(|| {
        serial_csv = bench::csv::fleet_csv(&run_with_model(&model, &fleet_config));
    });
    let fleet_t4 = FleetConfig {
        budget: Budget::with_threads(4),
        ..fleet_config
    };
    let mut t4_csv = String::new();
    let fleet_t4_ns = median_ns(|| {
        t4_csv = bench::csv::fleet_csv(&run_with_model(&model, &fleet_t4));
    });
    println!("  \"fleet_boards\": {},", fleet_config.boards);
    println!("  \"fleet_serial_ns\": {fleet_serial_ns:.0},");
    println!("  \"fleet_measured_t4_ns\": {fleet_t4_ns:.0},");
    println!("  \"fleet_csv_identical\": {}", serial_csv == t4_csv);
    println!("}}");
}

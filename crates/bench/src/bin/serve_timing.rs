//! Wall-clock timing harness behind `BENCH_fleet.json`.
//!
//! Measures (with `std::time::Instant`, medians over repeated runs) the
//! numeric inference costs the `serving` criterion bench exercises —
//! scalar vs. batched int8 inference, the grouped service path, the
//! scratch-buffer forward pass — plus the *modeled* device latencies that
//! drive the fleet's batching speedup. Prints a JSON document to stdout:
//!
//! ```text
//! cargo run --release -p bench --bin serve-timing > BENCH_fleet.json
//! ```

use std::hint::black_box;
use std::time::Instant;

use bench::fleet::{self, FleetConfig};
use hikey_platform::SimDriver;
use nn::{ForwardScratch, KernelMode, Matrix, Mlp};
use npu::{InferScratch, NpuDevice, NpuModel, PolicyCache};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROWS: usize = 64;
const SAMPLES: usize = 15;

fn feature_rows(n: usize) -> Matrix {
    Matrix::from_rows(
        (0..n)
            .map(|r| {
                (0..21)
                    .map(|c| ((r * 31 + c * 7) % 13) as f32 / 13.0 - 0.5)
                    .collect()
            })
            .collect(),
    )
}

/// Median wall time of `f` in nanoseconds, over repeated samples with a
/// per-sample inner loop sized by `iters`.
fn median_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() * 1e9 / f64::from(iters)
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let mlp = Mlp::with_topology(21, 4, 64, 8, &mut StdRng::seed_from_u64(9));
    let model = NpuModel::compile(&mlp);
    let device = NpuDevice::kirin970();

    println!("{{");
    println!("  \"note\": \"wall-clock ns serving 64 feature rows (21 features, 64x8 MLP), medians of {SAMPLES} samples, on the vectorized fused int8 kernel (int8_64rows_scalar_kernel_ns is the bit-identical scalar reference the differential gate diffs against; *_cached_ns is the policy-cache replay path); modeled_* are the virtual Kirin 970 device latencies that set the fleet speedup; sparse_fleet_* compare the lockstep and sim-core event drivers on an idle-heavy fleet — the visit reduction is the per-barrier coordination skipped, while wall time stays near parity because bit-identical thermal aggregates require replaying every platform tick\",");

    // Numeric cost of serving 64 rows at each coalescing level, on the
    // default (vectorized fused) kernel. Outputs are bit-identical to
    // the scalar reference at every level.
    let mut scalar_ns = 0.0;
    let mut batch64_ns = 0.0;
    for batch in [1usize, 4, 16, 64] {
        let chunk = feature_rows(batch);
        let calls = ROWS / batch;
        let ns = median_ns(200, || {
            for _ in 0..calls {
                black_box(model.infer(black_box(&chunk)));
            }
        });
        if batch == 1 {
            scalar_ns = ns;
        }
        if batch == 64 {
            batch64_ns = ns;
        }
        println!("  \"int8_64rows_batch{batch}_ns\": {ns:.0},");
        println!(
            "  \"int8_64rows_batch{batch}_per_row_ns\": {:.0},",
            ns / ROWS as f64
        );
    }

    // The same 64-row batch on the scalar reference kernel: the gap is
    // the vectorization win the kernel gate protects.
    let chunk64 = feature_rows(ROWS);
    let scalar_kernel_ns = median_ns(200, || {
        black_box(model.infer_with(black_box(&chunk64), KernelMode::Scalar));
    });
    println!("  \"int8_64rows_scalar_kernel_ns\": {scalar_kernel_ns:.0},");
    println!(
        "  \"kernel_speedup_vs_scalar\": {:.2},",
        scalar_kernel_ns / batch64_ns
    );

    let stacked = feature_rows(ROWS);
    let groups = vec![1usize; ROWS];
    let grouped_ns = median_ns(200, || {
        black_box(model.infer_grouped(black_box(&stacked), &groups));
    });
    println!("  \"int8_64rows_grouped_ns\": {grouped_ns:.0},");
    println!(
        "  \"numeric_speedup_grouped_vs_scalar\": {:.2},",
        scalar_ns / grouped_ns
    );

    // The steady-state cached service path: 64 one-row requests that all
    // hit the policy cache (quantize + probe + replay, no kernel work).
    let rows: Vec<Matrix> = (0..ROWS).map(|_| feature_rows(1)).collect();
    let mut cache = PolicyCache::new(128);
    let mut iscratch = InferScratch::new();
    let mut q = Vec::new();
    let cached_ns = median_ns(200, || {
        for row in &rows {
            let scale = model.quantize_input(row.as_slice(), &mut q);
            let out = match cache.probe(&q, scale, 1) {
                Some(out) => out.to_vec(),
                None => {
                    let out = model
                        .infer_prequant(&q, scale, 1, KernelMode::Vectorized, &mut iscratch)
                        .to_vec();
                    cache.insert(&q, scale, 1, &out);
                    out
                }
            };
            black_box(out);
        }
    });
    println!("  \"int8_64rows_grouped_cached_ns\": {cached_ns:.0},");
    println!(
        "  \"cache_hit_speedup_vs_grouped\": {:.2},",
        grouped_ns / cached_ns
    );

    let row: Vec<f32> = (0..21).map(|c| c as f32 / 21.0 - 0.5).collect();
    let alloc_ns = median_ns(20_000, || {
        black_box(mlp.forward(black_box(&row)));
    });
    let mut scratch = ForwardScratch::new();
    let scratch_ns = median_ns(20_000, || {
        black_box(mlp.forward_into(black_box(&row), &mut scratch));
    });
    println!("  \"forward_alloc_ns\": {alloc_ns:.0},");
    println!("  \"forward_scratch_ns\": {scratch_ns:.0},");
    println!(
        "  \"forward_scratch_speedup\": {:.2},",
        alloc_ns / scratch_ns
    );

    // Modeled device time for 64 one-row requests: dedicated (one driver
    // round-trip each) vs. coalesced into batch-16 calls.
    let solo = device.inference_latency(&model, 1);
    let batched = device.inference_latency(&model, 16);
    let serial_ns = solo.as_nanos() as f64 * ROWS as f64;
    let pooled_ns = batched.as_nanos() as f64 * (ROWS / 16) as f64;
    println!("  \"modeled_serial_64rows_ns\": {serial_ns:.0},");
    println!("  \"modeled_batch16_64rows_ns\": {pooled_ns:.0},");
    println!(
        "  \"modeled_speedup_batch16\": {:.2},",
        serial_ns / pooled_ns
    );

    // Sparse-fleet idle skipping: 4 boards x 160 epochs whose workloads
    // drain in the first ~30 s, leaving a long idle tail. The lockstep
    // driver still visits every board at every barrier; the sim-core
    // event driver only wakes boards with work, so the board-epoch visit
    // count — and with it the per-barrier coordination cost — collapses.
    // Both drivers produce bit-identical reports (enforced by the
    // event_kernel_equivalence suite).
    let model = fleet::fleet_model(0);
    let sparse = FleetConfig {
        boards: 4,
        epochs: 160,
        devices: 2,
        max_batch: 8,
        workers: 2,
        seed: 5,
        budget: par::Budget::serial(),
        churn: None,
        ..FleetConfig::default()
    };
    let (_, kernel) = fleet::run_event_with_stats(&model, &sparse);
    // Interleave the drivers within each sample pair so host-load noise
    // hits both sides equally; medians of the paired samples.
    let mut lock_samples = Vec::with_capacity(SAMPLES);
    let mut event_samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        black_box(fleet::run_with_model_driver(
            black_box(&model),
            &sparse,
            SimDriver::Lockstep,
        ));
        lock_samples.push(start.elapsed().as_secs_f64() * 1e9);
        let start = Instant::now();
        black_box(fleet::run_with_model_driver(
            black_box(&model),
            &sparse,
            SimDriver::EventDriven,
        ));
        event_samples.push(start.elapsed().as_secs_f64() * 1e9);
    }
    lock_samples.sort_by(|a, b| a.total_cmp(b));
    event_samples.sort_by(|a, b| a.total_cmp(b));
    let lockstep_ns = lock_samples[SAMPLES / 2];
    let event_ns = event_samples[SAMPLES / 2];
    println!(
        "  \"sparse_fleet_lockstep_visits\": {},",
        kernel.lockstep_visits
    );
    println!(
        "  \"sparse_fleet_event_visits\": {},",
        kernel.board_epoch_visits
    );
    println!(
        "  \"sparse_fleet_visit_reduction\": {:.2},",
        kernel.visit_reduction()
    );
    println!("  \"sparse_fleet_lockstep_ns\": {lockstep_ns:.0},");
    println!("  \"sparse_fleet_event_ns\": {event_ns:.0},");
    println!(
        "  \"sparse_fleet_wall_speedup\": {:.2}",
        lockstep_ns / event_ns
    );
    println!("}}");
}

//! The experiment driver: regenerates every figure and table of the paper.
//!
//! ```text
//! experiments [--full] [fig1|fig3|fig4|fig5|fig7|fig8|fig9|fig10|fig11|model-eval|all]
//! ```
//!
//! By default experiments run at `Quick` effort (reduced training sets and
//! simulation lengths, minutes of wall time); `--full` switches to
//! paper-scale parameters.

use std::path::PathBuf;
use std::time::Instant;

use bench::chaos::StormPreset;
use bench::error::BenchError;
use bench::harness::{train_artifacts, Effort, TrainedArtifacts};
use hikey_platform::SimDriver;
use thermal::Cooling;

/// Writes a CSV artifact if an output directory was requested; a failure
/// names the offending file.
fn write_csv(out: &Option<PathBuf>, name: &str, contents: String) -> Result<(), BenchError> {
    let Some(dir) = out else { return Ok(()) };
    bench::error::write_file(&dir.join(name), &contents)
}

/// Reports (but does not abort on) a failed artifact write.
fn report_csv(result: Result<(), BenchError>) {
    if let Err(e) = result {
        eprintln!("warning: {e}");
    }
}

const USAGE: &str = "\
usage: experiments [--full] [--out <dir>] [--state <dir>] [--points <n>]
                   [--boards <n>] [--racks <n>] [--epochs <n>] [--devices <n>]
                   [--threads <n>] [--clients <n>] [--overload <x>] [--seed <n>]
                   [--users <n>] [--load <x>] [--replay <file>]
                   [--churn <period>] [--churn-down <epochs>]
                   [--storm [preset]] [--driver <event|lockstep>]
                   [--kernel <scalar|vector>] [--policy-cache <n>] [COMMAND ...]

Regenerates the paper's evaluation artifacts. Without a command (or with
`all`) the whole suite runs. `--full` uses paper-scale parameters;
`--out <dir>` additionally writes CSV data series. `--state <dir>` holds
checkpoint snapshots for the resumable commands (`sweep`, `train`);
`--points <n>` truncates the sweep grid to its first n points.
`--boards`, `--epochs` and `--devices` size the `fleet` experiment, and
`--churn <period>` adds board churn to it (one seeded crash every
`period` epochs, each lasting `--churn-down` epochs, default 2);
`--clients`, `--epochs`, `--devices`, `--overload <x>` (arrival rate as a
multiple of pool capacity) and a bare `--storm` (add a device fault storm)
size the `overload` experiment. `--boards`, `--racks`, `--epochs` and
`--seed` size the `chaos` experiment; `--storm <preset>` picks its fault
storm (`crash-wave`, `partition`, `heartbeat`, `slow-tier` or `all`).
`--boards`, `--racks` (racks per region), `--epochs`, `--seed`,
`--users` (logical users) and `--load <x>` (mean requests per board per
epoch) size the `edge` experiment; `--replay <file>` drives its demand
from a recorded workload CSV instead of the synthetic rate model, and a
bare `--storm` injects its regional backbone outage.
`--threads <n>` sets the host-thread budget of `train`, `sweep`, `fleet`,
`overload`, `chaos` and `edge` (default: all available cores). Every
command produces the same bytes at every thread count — the budget
changes wall time only. `--driver` selects the simulation loop of
`fleet`, `overload`, `chaos` and `edge`: the `sim-core` event kernel
(`event`, the default) or the fixed-barrier reference (`lockstep`); both
produce identical bytes. `--kernel` selects the numeric inference kernel
of the `fleet` experiment (`vector`, the default, or `scalar` — the
reference loop) and `--policy-cache <n>` sizes its memoization cache
(0 disables); both kernels and any cache size produce identical bytes —
the kernel CI gate diffs them.

`--help`, `-h`, `help` and `list` print this usage to stdout and exit 0.
Unknown commands, unknown flags, and malformed flag values print this
usage to stderr and exit with status 2.

Diagnostics go to stderr; stdout carries only reports and CSV data, so
`experiments fleet > fleet.csv` yields a clean machine-readable artifact.

Interrupted `sweep` and `train` runs exit with status 130 and resume from
their newest valid snapshot when rerun with the same --state directory.
TOPIL_SWEEP_CRASH_AFTER=<n> / TOPIL_TRAIN_CRASH_AFTER=<n> simulate a crash
after n points/epochs (used by the CI crash-recovery check).

commands:
  fig1         motivational example (optimal mapping differs per app)
  fig3         NAS grid search over depth x width
  fig4         training-data generation tables
  fig5         worst-case migration overhead per benchmark
  fig7         illustrative IL-vs-RL mapping timelines
  fig8         main mixed-workload experiment (incl. fig9)
  fig9         busy CPU time per cluster x V/f level
  fig10        single-application workloads (all unseen apps)
  fig11        run-time overhead vs. number of applications
  model-eval   isolated model evaluation (within-1-degree fraction)
  ablations    design-choice ablations
  oracle-gap   extension: online oracle vs. the imitating network
  sensitivity  extension: thermal-calibration perturbations
  robustness   extension: fault-rate sweep vs. the degradation ladder
  traces       structured event traces per governor (JSONL/CSV via --out)
  fleet        multi-board fleet sharing one batched NPU inference service
  overload     adversarial 10x-overload harness against the shared service
  chaos        seeded fault storms under an always-on invariant checker
  edge         datacenter-scale edge fleet: user/request frontier + network model
  sweep        crash-safe resumable robustness sweep (uses --state)
  train        crash-safe resumable IL training (uses --state)
  all          everything above except sweep and train
";

/// Every recognized subcommand. `--storm`'s optional value is
/// disambiguated against this list so `overload --storm` keeps working
/// when a command name follows the bare flag.
const COMMANDS: &[&str] = &[
    "fig1",
    "fig3",
    "fig4",
    "fig5",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "model-eval",
    "ablations",
    "oracle-gap",
    "sensitivity",
    "robustness",
    "traces",
    "fleet",
    "overload",
    "chaos",
    "edge",
    "sweep",
    "train",
    "all",
];

/// Rejects a malformed command line: the message and the usage text go to
/// stderr and the process exits with status 2 (never a panic).
fn usage_error(message: &str) -> ! {
    eprintln!("{message}\n");
    eprint!("{USAGE}");
    std::process::exit(2);
}

/// Consumes the value of `flag`, or exits 2 if the command line ends first.
fn flag_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    match args.get(*i) {
        Some(v) => v.as_str(),
        None => usage_error(&format!("flag `{flag}` needs a value")),
    }
}

/// Consumes and parses the value of `flag`, or exits 2 on a malformed one.
fn flag_number<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str) -> T {
    let v = flag_value(args, i, flag);
    v.parse()
        .unwrap_or_else(|_| usage_error(&format!("flag `{flag}` got a malformed value `{v}`")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args
        .iter()
        .any(|a| a == "--help" || a == "-h" || a == "help" || a == "list")
    {
        print!("{USAGE}");
        return;
    }
    let mut full = false;
    let mut out: Option<PathBuf> = None;
    let mut state: Option<PathBuf> = None;
    let mut points: Option<usize> = None;
    let mut boards: Option<usize> = None;
    let mut racks: Option<usize> = None;
    let mut epochs: Option<u64> = None;
    let mut devices: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut clients: Option<usize> = None;
    let mut overload: Option<f64> = None;
    let mut seed: Option<u64> = None;
    let mut users: Option<u64> = None;
    let mut load: Option<f64> = None;
    let mut replay: Option<PathBuf> = None;
    let mut churn_period: Option<u64> = None;
    let mut churn_down: Option<u64> = None;
    let mut storm = false;
    let mut storm_preset: Option<StormPreset> = None;
    let mut driver = SimDriver::EventDriven;
    let mut kernel: Option<npu::KernelMode> = None;
    let mut policy_cache: Option<usize> = None;
    let mut commands: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--full" => full = true,
            "--out" => out = Some(PathBuf::from(flag_value(&args, &mut i, arg))),
            "--state" => state = Some(PathBuf::from(flag_value(&args, &mut i, arg))),
            "--points" => points = Some(flag_number(&args, &mut i, arg)),
            "--boards" => boards = Some(flag_number(&args, &mut i, arg)),
            "--racks" => racks = Some(flag_number(&args, &mut i, arg)),
            "--epochs" => epochs = Some(flag_number(&args, &mut i, arg)),
            "--devices" => devices = Some(flag_number(&args, &mut i, arg)),
            "--threads" => threads = Some(flag_number(&args, &mut i, arg)),
            "--clients" => clients = Some(flag_number(&args, &mut i, arg)),
            "--overload" => overload = Some(flag_number(&args, &mut i, arg)),
            "--seed" => seed = Some(flag_number(&args, &mut i, arg)),
            "--users" => users = Some(flag_number(&args, &mut i, arg)),
            "--load" => load = Some(flag_number(&args, &mut i, arg)),
            "--replay" => replay = Some(PathBuf::from(flag_value(&args, &mut i, arg))),
            "--churn" => churn_period = Some(flag_number(&args, &mut i, arg)),
            "--churn-down" => churn_down = Some(flag_number(&args, &mut i, arg)),
            "--kernel" => match npu::KernelMode::parse(flag_value(&args, &mut i, arg)) {
                Some(mode) => kernel = Some(mode),
                None => usage_error(&format!(
                    "unknown --kernel `{}` (expected `scalar` or `vector`)",
                    args[i]
                )),
            },
            "--policy-cache" => policy_cache = Some(flag_number(&args, &mut i, arg)),
            "--driver" => match flag_value(&args, &mut i, arg) {
                "event" => driver = SimDriver::EventDriven,
                "lockstep" => driver = SimDriver::Lockstep,
                other => usage_error(&format!(
                    "unknown --driver `{other}` (expected `event` or `lockstep`)"
                )),
            },
            "--storm" => match args.get(i + 1).map(String::as_str) {
                // Bare `--storm` arms the overload fault storm; a value
                // names the chaos preset. A preset name always binds
                // (`all` is both a preset and a command — the preset
                // reading wins); any other following command or flag
                // leaves the flag bare.
                Some(next) if StormPreset::parse(next).is_some() => {
                    i += 1;
                    storm_preset = StormPreset::parse(next);
                }
                Some(next) if !next.starts_with('-') && !COMMANDS.contains(&next) => {
                    usage_error(&format!(
                        "unknown --storm `{next}` (expected `crash-wave`, \
                         `partition`, `heartbeat`, `slow-tier` or `all`)"
                    ))
                }
                _ => storm = true,
            },
            _ if arg.starts_with('-') => usage_error(&format!("unknown flag `{arg}`")),
            _ if COMMANDS.contains(&arg) => commands.push(arg),
            other => usage_error(&format!("unknown experiment `{other}`")),
        }
        i += 1;
    }
    // No --threads means "use every core"; the result is bit-identical
    // either way.
    let budget = threads.map_or_else(par::Budget::auto, par::Budget::with_threads);
    let effort = if full { Effort::Full } else { Effort::Quick };
    let commands: Vec<&str> = if commands.is_empty() || commands.contains(&"all") {
        vec![
            "fig1",
            "fig3",
            "fig4",
            "fig5",
            "fig7",
            "fig8",
            "fig10",
            "fig11",
            "model-eval",
            "ablations",
            "oracle-gap",
            "sensitivity",
            "robustness",
            "traces",
        ]
    } else {
        commands
    };

    eprintln!(
        "# TOP-IL experiment suite (effort: {effort:?}, thread budget: {})\n",
        budget.effective_threads()
    );

    // Train once; share across experiments that need models.
    let needs_models = commands.iter().any(|c| {
        matches!(
            *c,
            "fig7"
                | "fig8"
                | "fig9"
                | "fig10"
                | "fig11"
                | "model-eval"
                | "oracle-gap"
                | "sensitivity"
                | "traces"
        )
    });
    let artifacts: Option<TrainedArtifacts> = if needs_models {
        let t = Instant::now();
        eprintln!("training IL models and pre-training RL tables ...");
        let a = train_artifacts(effort);
        eprintln!("done in {:.1} s\n", t.elapsed().as_secs_f64());
        Some(a)
    } else {
        None
    };

    for command in commands {
        let t = Instant::now();
        match command {
            "fig1" => println!("{}", bench::fig1::run()),
            "fig3" => println!("{}", bench::fig3::run(effort)),
            "fig4" => println!("{}", bench::fig4::run()),
            "fig5" => println!("{}", bench::fig5::run()),
            "fig7" => println!("{}", bench::fig7::run(artifacts.as_ref().expect("trained"))),
            "fig8" => {
                let artifacts = artifacts.as_ref().expect("trained");
                let fan = bench::fig8::run(artifacts, effort, Cooling::fan());
                println!("{fan}");
                report_csv(write_csv(&out, "fig8_fan.csv", bench::csv::fig8_csv(&fan)));
                let nofan = bench::fig8::run(artifacts, effort, Cooling::passive());
                println!("{nofan}");
                report_csv(write_csv(
                    &out,
                    "fig8_nofan.csv",
                    bench::csv::fig8_csv(&nofan),
                ));
                // Fig. 9 is derived from the no-fan runs of Fig. 8.
                let fig9 = bench::fig9::run(&nofan);
                println!("{fig9}");
                report_csv(write_csv(&out, "fig9.csv", bench::csv::fig9_csv(&fig9)));
            }
            "fig9" => {
                let artifacts = artifacts.as_ref().expect("trained");
                let nofan = bench::fig8::run(artifacts, effort, Cooling::passive());
                println!("{}", bench::fig9::run(&nofan));
            }
            "fig10" => {
                let report = bench::fig10::run(artifacts.as_ref().expect("trained"), effort);
                println!("{report}");
                report_csv(write_csv(&out, "fig10.csv", bench::csv::fig10_csv(&report)));
            }
            "fig11" => {
                let report = bench::fig11::run(artifacts.as_ref().expect("trained"));
                println!("{report}");
                report_csv(write_csv(&out, "fig11.csv", bench::csv::fig11_csv(&report)));
            }
            "model-eval" => println!(
                "{}",
                bench::model_eval::run(artifacts.as_ref().expect("trained"), effort)
            ),
            "ablations" => println!("{}", bench::ablations::run(effort)),
            "oracle-gap" => println!(
                "{}",
                bench::oracle_gap::run(artifacts.as_ref().expect("trained"), effort)
            ),
            "sensitivity" => {
                let report = bench::sensitivity::run(artifacts.as_ref().expect("trained"), effort);
                println!("{report}");
                report_csv(write_csv(
                    &out,
                    "sensitivity.csv",
                    bench::csv::sensitivity_csv(&report),
                ));
            }
            "robustness" => {
                let report = bench::robustness::run(effort);
                println!("{report}");
                report_csv(write_csv(
                    &out,
                    "robustness.csv",
                    bench::csv::robustness_csv(&report),
                ));
            }
            "traces" => {
                let report = bench::traces::run(artifacts.as_ref().expect("trained"));
                println!("{report}");
                for dump in &report.dumps {
                    let slug = dump.slug();
                    report_csv(write_csv(
                        &out,
                        &format!("trace_{slug}.jsonl"),
                        dump.jsonl(),
                    ));
                    report_csv(write_csv(&out, &format!("trace_{slug}.csv"), dump.csv()));
                }
            }
            "fleet" => {
                let mut config = bench::fleet::FleetConfig::default();
                if let Some(n) = boards {
                    config.boards = n;
                }
                if let Some(n) = epochs {
                    config.epochs = n;
                }
                if let Some(n) = devices {
                    config.devices = n;
                }
                if let Some(period) = churn_period {
                    config.churn = Some(bench::fleet::ChurnSpec {
                        period,
                        down: churn_down.unwrap_or(2),
                    });
                }
                if let Some(mode) = kernel {
                    config.kernel = mode;
                }
                if let Some(n) = policy_cache {
                    config.policy_cache = n;
                }
                config.budget = budget;
                eprintln!(
                    "fleet: {} boards x {} epochs on {} device(s), {} thread(s), {:?} driver, {} kernel ...",
                    config.boards,
                    config.epochs,
                    config.devices,
                    config.budget.effective_threads(),
                    driver,
                    config.kernel.name()
                );
                let report = bench::fleet::run_driver(&config, driver);
                eprintln!("{report}");
                let csv = bench::csv::fleet_csv(&report);
                print!("{csv}");
                report_csv(write_csv(&out, "fleet.csv", csv));
            }
            "overload" => {
                let mut config = bench::overload::OverloadConfig::default();
                if let Some(n) = clients {
                    config.clients = n;
                }
                if let Some(n) = epochs {
                    config.epochs = n;
                }
                if let Some(n) = devices {
                    config.devices = n;
                }
                if let Some(x) = overload {
                    config.overload = x;
                }
                config.fault_storm = storm;
                config.budget = budget;
                eprintln!(
                    "overload: {:.0}x capacity, {} clients x {} epochs on {} device(s), {} thread(s){} ...",
                    config.overload,
                    config.clients,
                    config.epochs,
                    config.devices,
                    config.budget.effective_threads(),
                    if config.fault_storm { ", fault storm" } else { "" }
                );
                let report = bench::overload::run_with_driver(&config, driver);
                eprintln!("{report}");
                let csv = bench::csv::overload_csv(&report);
                print!("{csv}");
                report_csv(write_csv(&out, "overload.csv", csv));
            }
            "chaos" => {
                let mut config = bench::chaos::ChaosConfig::default();
                if let Some(n) = boards {
                    config.boards = n;
                }
                if let Some(n) = racks {
                    config.racks = n;
                }
                if let Some(n) = epochs {
                    config.epochs = n;
                }
                if let Some(n) = seed {
                    config.seed = n;
                }
                if let Some(preset) = storm_preset {
                    config.storm = preset;
                }
                config.budget = budget;
                eprintln!(
                    "chaos: `{}` storm over {} boards in {} racks x {} epochs, \
                     seed {}, {} thread(s), {:?} driver ...",
                    config.storm,
                    config.boards,
                    config.racks,
                    config.epochs,
                    config.seed,
                    config.budget.effective_threads(),
                    driver
                );
                let report = bench::chaos::run_with_driver(&config, driver);
                eprintln!("{report}");
                let csv = bench::csv::chaos_csv(&report);
                print!("{csv}");
                report_csv(write_csv(&out, "chaos.csv", csv));
                if !report.violations.is_empty() {
                    eprintln!(
                        "chaos: {} invariant violation(s) — see the `violation` CSV rows",
                        report.violations.len()
                    );
                    std::process::exit(1);
                }
            }
            "edge" => {
                let mut config = edge_sim::EdgeConfig::default();
                if let Some(n) = boards {
                    config.boards = n;
                }
                if let Some(n) = racks {
                    config.racks_per_region = n;
                }
                if let Some(n) = epochs {
                    config.epochs = n;
                }
                if let Some(n) = seed {
                    config.seed = n;
                }
                if let Some(n) = users {
                    config.users = n;
                }
                if let Some(x) = load {
                    config.load = x;
                }
                config.outage = storm;
                config.budget = budget;
                if let Some(path) = &replay {
                    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                        usage_error(&format!(
                            "flag `--replay` could not read `{}`: {e}",
                            path.display()
                        ))
                    });
                    let workload = workloads::replay::from_csv(&text).unwrap_or_else(|e| {
                        usage_error(&format!(
                            "flag `--replay` got a malformed workload `{}`: {e}",
                            path.display()
                        ))
                    });
                    config.demand = edge_sim::Demand::Replay(workloads::replay::EpochReplay::new(
                        &workload,
                        config.epoch,
                        config.epochs,
                    ));
                }
                eprintln!(
                    "edge: {} boards in {} regions x {} racks, {} users x {} epochs, \
                     seed {}, {} thread(s), {:?} driver{}{} ...",
                    config.boards,
                    config.regions,
                    config.racks_per_region,
                    config.users,
                    config.epochs,
                    config.seed,
                    config.budget.effective_threads(),
                    driver,
                    if config.outage {
                        ", backbone outage"
                    } else {
                        ""
                    },
                    if replay.is_some() {
                        ", replayed demand"
                    } else {
                        ""
                    }
                );
                let started = Instant::now();
                let report = edge_sim::run_with_driver(&config, driver);
                let wall = started.elapsed().as_secs_f64();
                eprintln!("{report}");
                // Wall-clock throughput goes to stderr only; the CSV
                // stays byte-deterministic.
                eprintln!(
                    "edge: {:.1} simulated boards/s, {:.0} requests/s ({:.2} s wall)",
                    config.boards as f64 / wall,
                    report.submitted as f64 / wall,
                    wall
                );
                let csv = bench::csv::edge_csv(&report);
                print!("{csv}");
                report_csv(write_csv(&out, "edge.csv", csv));
                if !report.violations.is_empty() {
                    eprintln!(
                        "edge: {} invariant violation(s) — see the `violation` CSV rows",
                        report.violations.len()
                    );
                    std::process::exit(1);
                }
            }
            "sweep" => {
                let model = bench::robustness::sweep_model(effort);
                let state = state
                    .clone()
                    .unwrap_or_else(|| PathBuf::from("sweep-state"));
                let mut config = bench::sweep::SweepConfig {
                    effort,
                    budget,
                    ..bench::sweep::SweepConfig::default()
                };
                if let Some(n) = points {
                    config.grid = Some(bench::sweep::default_grid().into_iter().take(n).collect());
                }
                let hooks = bench::sweep::SweepHooks {
                    crash_after_points: std::env::var("TOPIL_SWEEP_CRASH_AFTER")
                        .ok()
                        .and_then(|v| v.parse().ok()),
                    ..bench::sweep::SweepHooks::default()
                };
                match bench::sweep::run_sweep(&model, &config, &state, &hooks, None) {
                    Ok(outcome) => {
                        if let Some(seq) = outcome.resumed_from_seq {
                            eprintln!("resumed from manifest snapshot {seq}");
                        }
                        if outcome.corrupt_skipped > 0 {
                            eprintln!(
                                "skipped {} corrupt snapshot(s) during recovery",
                                outcome.corrupt_skipped
                            );
                        }
                        if let Some(reason) = &outcome.discarded {
                            eprintln!("discarded stale manifest: {reason}");
                        }
                        eprintln!(
                            "ran {} point(s); {} quarantined",
                            outcome.points_run,
                            outcome.manifest.quarantined()
                        );
                        if outcome.completed {
                            let csv = bench::sweep::sweep_csv(&outcome.manifest);
                            print!("{csv}");
                            report_csv(write_csv(&out, "sweep.csv", csv));
                        } else {
                            eprintln!("sweep interrupted; rerun with the same --state to resume");
                            std::process::exit(130);
                        }
                    }
                    Err(e) => {
                        eprintln!("sweep failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "train" => {
                let state = state
                    .clone()
                    .unwrap_or_else(|| PathBuf::from("train-state"));
                let trainer = bench::harness::il_trainer(effort);
                let scenarios = topil::oracle::Scenario::standard_set(
                    effort.scenario_count().min(20),
                    0xC0FFEE,
                );
                let cases = trainer.collect_cases(&scenarios);
                let interrupt = std::env::var("TOPIL_TRAIN_CRASH_AFTER")
                    .ok()
                    .and_then(|v| v.parse().ok());
                match trainer.train_checkpointed(
                    &cases,
                    0,
                    &state,
                    &topil::CkptConfig {
                        budget,
                        ..topil::CkptConfig::default()
                    },
                    interrupt,
                    None,
                ) {
                    Ok(outcome) => {
                        if let Some(seq) = outcome.resumed_from_seq {
                            eprintln!("resumed from training snapshot {seq}");
                        }
                        if let Some(reason) = &outcome.discarded {
                            eprintln!("discarded stale snapshot: {reason}");
                        }
                        eprintln!(
                            "{} epoch(s) recorded, {} snapshot(s) written",
                            outcome.report.train_losses.len(),
                            outcome.snapshots_written
                        );
                        if let Some(model) = outcome.model {
                            if let Some(dir) = &out {
                                let path = dir.join("il-model.bin");
                                match std::fs::create_dir_all(dir).and_then(|()| model.save(&path))
                                {
                                    Ok(()) => eprintln!("model written to {}", path.display()),
                                    Err(e) => eprintln!(
                                        "warning: failed to write {}: {e}",
                                        path.display()
                                    ),
                                }
                            }
                        } else {
                            eprintln!(
                                "training interrupted; rerun with the same --state to resume"
                            );
                            std::process::exit(130);
                        }
                    }
                    Err(e) => {
                        eprintln!("training failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
            other => {
                eprintln!("unknown experiment `{other}`\n");
                eprint!("{USAGE}");
                std::process::exit(2);
            }
        }
        eprintln!(
            "[{command} finished in {:.1} s]\n",
            t.elapsed().as_secs_f64()
        );
    }
}

//! The experiment driver: regenerates every figure and table of the paper.
//!
//! ```text
//! experiments [--full] [fig1|fig3|fig4|fig5|fig7|fig8|fig9|fig10|fig11|model-eval|all]
//! ```
//!
//! By default experiments run at `Quick` effort (reduced training sets and
//! simulation lengths, minutes of wall time); `--full` switches to
//! paper-scale parameters.

use std::path::PathBuf;
use std::time::Instant;

use bench::harness::{train_artifacts, Effort, TrainedArtifacts};
use thermal::Cooling;

/// Writes a CSV artifact if an output directory was requested.
fn write_csv(out: &Option<PathBuf>, name: &str, contents: String) {
    let Some(dir) = out else { return };
    if let Err(e) =
        std::fs::create_dir_all(dir).and_then(|()| std::fs::write(dir.join(name), contents))
    {
        eprintln!("failed to write {name}: {e}");
    }
}

const USAGE: &str = "\
usage: experiments [--full] [--out <dir>] [COMMAND ...]

Regenerates the paper's evaluation artifacts. Without a command (or with
`all`) the whole suite runs. `--full` uses paper-scale parameters;
`--out <dir>` additionally writes CSV data series.

commands:
  fig1         motivational example (optimal mapping differs per app)
  fig3         NAS grid search over depth x width
  fig4         training-data generation tables
  fig5         worst-case migration overhead per benchmark
  fig7         illustrative IL-vs-RL mapping timelines
  fig8         main mixed-workload experiment (incl. fig9)
  fig9         busy CPU time per cluster x V/f level
  fig10        single-application workloads (all unseen apps)
  fig11        run-time overhead vs. number of applications
  model-eval   isolated model evaluation (within-1-degree fraction)
  ablations    design-choice ablations
  oracle-gap   extension: online oracle vs. the imitating network
  sensitivity  extension: thermal-calibration perturbations
  robustness   extension: fault-rate sweep vs. the degradation ladder
  traces       structured event traces per governor (JSONL/CSV via --out)
  all          everything above
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args
        .iter()
        .any(|a| a == "--help" || a == "-h" || a == "list")
    {
        print!("{USAGE}");
        return;
    }
    let full = args.iter().any(|a| a == "--full");
    let out: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let effort = if full { Effort::Full } else { Effort::Quick };
    // Positional arguments are commands; skip flags and the --out value.
    let out_index = args.iter().position(|a| a == "--out");
    let commands: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| !a.starts_with("--") && Some(i) != out_index.map(|o| o + 1))
        .map(|(_, a)| a.as_str())
        .collect();
    let commands: Vec<&str> = if commands.is_empty() || commands.contains(&"all") {
        vec![
            "fig1",
            "fig3",
            "fig4",
            "fig5",
            "fig7",
            "fig8",
            "fig10",
            "fig11",
            "model-eval",
            "ablations",
            "oracle-gap",
            "sensitivity",
            "robustness",
            "traces",
        ]
    } else {
        commands
    };

    println!("# TOP-IL experiment suite (effort: {effort:?})\n");

    // Train once; share across experiments that need models.
    let needs_models = commands.iter().any(|c| {
        matches!(
            *c,
            "fig7"
                | "fig8"
                | "fig9"
                | "fig10"
                | "fig11"
                | "model-eval"
                | "oracle-gap"
                | "sensitivity"
                | "traces"
        )
    });
    let artifacts: Option<TrainedArtifacts> = if needs_models {
        let t = Instant::now();
        println!("training IL models and pre-training RL tables ...");
        let a = train_artifacts(effort);
        println!("done in {:.1} s\n", t.elapsed().as_secs_f64());
        Some(a)
    } else {
        None
    };

    for command in commands {
        let t = Instant::now();
        match command {
            "fig1" => println!("{}", bench::fig1::run()),
            "fig3" => println!("{}", bench::fig3::run(effort)),
            "fig4" => println!("{}", bench::fig4::run()),
            "fig5" => println!("{}", bench::fig5::run()),
            "fig7" => println!("{}", bench::fig7::run(artifacts.as_ref().expect("trained"))),
            "fig8" => {
                let artifacts = artifacts.as_ref().expect("trained");
                let fan = bench::fig8::run(artifacts, effort, Cooling::fan());
                println!("{fan}");
                write_csv(&out, "fig8_fan.csv", bench::csv::fig8_csv(&fan));
                let nofan = bench::fig8::run(artifacts, effort, Cooling::passive());
                println!("{nofan}");
                write_csv(&out, "fig8_nofan.csv", bench::csv::fig8_csv(&nofan));
                // Fig. 9 is derived from the no-fan runs of Fig. 8.
                let fig9 = bench::fig9::run(&nofan);
                println!("{fig9}");
                write_csv(&out, "fig9.csv", bench::csv::fig9_csv(&fig9));
            }
            "fig9" => {
                let artifacts = artifacts.as_ref().expect("trained");
                let nofan = bench::fig8::run(artifacts, effort, Cooling::passive());
                println!("{}", bench::fig9::run(&nofan));
            }
            "fig10" => {
                let report = bench::fig10::run(artifacts.as_ref().expect("trained"), effort);
                println!("{report}");
                write_csv(&out, "fig10.csv", bench::csv::fig10_csv(&report));
            }
            "fig11" => {
                let report = bench::fig11::run(artifacts.as_ref().expect("trained"));
                println!("{report}");
                write_csv(&out, "fig11.csv", bench::csv::fig11_csv(&report));
            }
            "model-eval" => println!(
                "{}",
                bench::model_eval::run(artifacts.as_ref().expect("trained"), effort)
            ),
            "ablations" => println!("{}", bench::ablations::run(effort)),
            "oracle-gap" => println!(
                "{}",
                bench::oracle_gap::run(artifacts.as_ref().expect("trained"), effort)
            ),
            "sensitivity" => {
                let report = bench::sensitivity::run(artifacts.as_ref().expect("trained"), effort);
                println!("{report}");
                write_csv(
                    &out,
                    "sensitivity.csv",
                    bench::csv::sensitivity_csv(&report),
                );
            }
            "robustness" => {
                let report = bench::robustness::run(effort);
                println!("{report}");
                write_csv(&out, "robustness.csv", bench::csv::robustness_csv(&report));
            }
            "traces" => {
                let report = bench::traces::run(artifacts.as_ref().expect("trained"));
                println!("{report}");
                for dump in &report.dumps {
                    let slug = dump.slug();
                    write_csv(&out, &format!("trace_{slug}.jsonl"), dump.jsonl());
                    write_csv(&out, &format!("trace_{slug}.csv"), dump.csv());
                }
            }
            other => {
                eprintln!("unknown experiment `{other}`\n");
                eprint!("{USAGE}");
                std::process::exit(2);
            }
        }
        println!(
            "[{command} finished in {:.1} s]\n",
            t.elapsed().as_secs_f64()
        );
    }
}

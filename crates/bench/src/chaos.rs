//! Chaos harness: seeded fault storms against the two-tier `npu-serve`
//! failover topology, under an always-on invariant checker.
//!
//! Each run drives per-board request streams through a
//! [`npu_serve::TieredService`] (per-rack services, a regional tier, a
//! local-CPU last rung) while a [`faults::FleetSchedule`] storm derived
//! from the seed injects crash waves, rack partitions, heartbeat
//! silence and regional slowdowns at barrier epochs. The
//! [`InvariantChecker`] watches every request and breaker transition:
//!
//! * **request conservation** — every admitted request resolves exactly
//!   once: a reply, or a typed failure (shed / deadline / failed-over),
//! * **zero late replies** — a reply past its deadline is a violation;
//!   the tier must fail typed instead,
//! * **bounded hedge amplification** — at most `hedge_bound` hedges per
//!   admitted request,
//! * **legal breaker transitions** — only `Closed→Open`, `Open→HalfOpen`,
//!   `HalfOpen→{Closed,Open}`, plus probation entries into `HalfOpen`,
//!   each continuing from the scope's previous state,
//! * **virtual-time monotonicity** — barrier instants strictly increase,
//!   transition and completion times never run backwards.
//!
//! The run is deterministic: byte-identical CSV at every thread budget
//! and on both the lockstep and the event-driven (`sim-core`) driver —
//! the CI chaos gate diffs exactly that.

use std::collections::BTreeMap;
use std::fmt;

use faults::{BreakerState, FleetFault, FleetSchedule, StormBuilder};
use hikey_platform::SimDriver;
use hmc_types::{SimDuration, SimTime};
use nn::{Matrix, Mlp};
use npu_serve::{
    ClientId, TierConfig, TierOutcome, TierScope, TierSubmit, TierTicket, TierTransition,
    TieredService,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_core::Kernel;

/// Length of one chaos barrier epoch.
const CHAOS_EPOCH: SimDuration = SimDuration::from_millis(100);
/// Completion deadline attached to every request (past submission).
const CHAOS_DEADLINE: SimDuration = SimDuration::from_millis(80);
/// Hedge floor. Sits just under the typical rack latency (~6 ms) so
/// tail-latency rack requests genuinely race the regional tier (a few
/// percent of traffic hedges) while the p99-derived timeout takes over
/// once the latency window fills.
const CHAOS_HEDGE_MIN: SimDuration = SimDuration::from_millis(5);

/// The seeded fault storm a chaos run injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StormPreset {
    /// Two crash waves take boards out and bring them back.
    CrashWave,
    /// A rack is partitioned from the regional tier, then heals.
    Partition,
    /// A rack goes heartbeat-silent; the failure detector must notice.
    Heartbeat,
    /// The regional tier slows down, then recovers.
    SlowTier,
    /// All of the above, overlapped, plus steady board churn.
    All,
}

impl StormPreset {
    /// Every preset, in CLI/reporting order.
    pub const ALL: [StormPreset; 5] = [
        StormPreset::CrashWave,
        StormPreset::Partition,
        StormPreset::Heartbeat,
        StormPreset::SlowTier,
        StormPreset::All,
    ];

    /// The CLI name of this preset.
    pub fn name(&self) -> &'static str {
        match self {
            StormPreset::CrashWave => "crash-wave",
            StormPreset::Partition => "partition",
            StormPreset::Heartbeat => "heartbeat",
            StormPreset::SlowTier => "slow-tier",
            StormPreset::All => "all",
        }
    }

    /// Parses a CLI name; `None` for unknown values (the caller prints
    /// usage and exits 2 — never panics).
    pub fn parse(name: &str) -> Option<StormPreset> {
        StormPreset::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl fmt::Display for StormPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of one chaos run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Boards generating requests (one per epoch while alive).
    pub boards: usize,
    /// Racks in the tier topology (boards map round-robin).
    pub racks: usize,
    /// 100 ms barrier epochs to simulate.
    pub epochs: u64,
    /// Master seed of the storm schedule and the payloads.
    pub seed: u64,
    /// The fault storm to inject.
    pub storm: StormPreset,
    /// Most hedges allowed per admitted request before the checker
    /// flags amplification.
    pub hedge_bound: f64,
    /// Host-thread budget for payload generation; the report and CSV
    /// are byte-identical at every budget.
    pub budget: par::Budget,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            boards: 12,
            racks: 3,
            epochs: 40,
            seed: 11,
            storm: StormPreset::All,
            hedge_bound: 1.0,
            budget: par::Budget::serial(),
        }
    }
}

/// Aggregate result of a chaos run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// The configuration that produced this report.
    pub config: ChaosConfig,
    /// Timed fault events the storm injected.
    pub storm_events: u64,
    /// Requests submitted to the tier.
    pub submitted: u64,
    /// Requests answered with a reply (any rung).
    pub replies: u64,
    /// Requests that ended in a typed failure.
    pub failed: u64,
    /// Replies served by the board's own rack service.
    pub rack_served: u64,
    /// Replies served by the regional tier.
    pub regional_served: u64,
    /// Replies served by the local-CPU last rung.
    pub cpu_served: u64,
    /// Requests routed past their primary rack (crash, partition,
    /// suspicion, open breaker, or admission back-pressure).
    pub failovers: u64,
    /// Hedged requests (regional duplicate fired on the p99 timeout).
    pub hedges: u64,
    /// Hedges that beat the rack reply.
    pub hedge_wins: u64,
    /// Hedges per admitted request.
    pub hedge_overhead: f64,
    /// Heartbeats the failure detector processed.
    pub heartbeats: u64,
    /// Racks the detector declared suspect.
    pub suspects: u64,
    /// Suspected racks that recovered.
    pub recoveries: u64,
    /// Mean failure-detection latency (silence start → suspicion).
    pub detection_latency_avg: SimDuration,
    /// Worst-case failure-detection latency.
    pub detection_latency_max: SimDuration,
    /// Tier breaker transitions observed.
    pub breaker_transitions: u64,
    /// Median reply latency.
    pub p50: SimDuration,
    /// 99th-percentile reply latency.
    pub p99: SimDuration,
    /// Fraction of board-epochs the fleet was up under the storm.
    pub availability: f64,
    /// Invariant violations (the gate requires none).
    pub violations: Vec<String>,
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Chaos `{}`: {} boards / {} racks x {} epochs, {} storm events",
            self.config.storm,
            self.config.boards,
            self.config.racks,
            self.config.epochs,
            self.storm_events
        )?;
        writeln!(
            f,
            "  requests: {} submitted -> {} replies + {} typed failures ({} failovers, availability {:.4})",
            self.submitted, self.replies, self.failed, self.failovers, self.availability
        )?;
        writeln!(
            f,
            "  rungs:    {} rack / {} regional / {} cpu, p50 {} p99 {}",
            self.rack_served, self.regional_served, self.cpu_served, self.p50, self.p99
        )?;
        writeln!(
            f,
            "  hedges:   {} fired ({} won, {:.3} per request)",
            self.hedges, self.hedge_wins, self.hedge_overhead
        )?;
        writeln!(
            f,
            "  detector: {} beats, {} suspects, {} recoveries, detection avg {} max {}",
            self.heartbeats,
            self.suspects,
            self.recoveries,
            self.detection_latency_avg,
            self.detection_latency_max
        )?;
        writeln!(
            f,
            "  invariants: {} violations ({} breaker transitions checked)",
            self.violations.len(),
            self.breaker_transitions
        )?;
        for violation in &self.violations {
            writeln!(f, "    VIOLATION: {violation}")?;
        }
        Ok(())
    }
}

/// Always-on invariant checker fed during the run; violations are
/// collected (never panicking) so the report and CSV stay comparable
/// across drivers even when an invariant breaks.
#[derive(Debug)]
pub struct InvariantChecker {
    hedge_bound: f64,
    submitted: u64,
    resolved: u64,
    violations: Vec<String>,
    /// Last observed breaker state and transition instant per scope;
    /// `(0, rack)` for racks, `(1, 0)` for the regional tier. Scopes
    /// start `Closed` at time zero. Monotonicity is per scope: two
    /// components may legitimately move at interleaved instants, but one
    /// component's history never runs backwards.
    breaker_last: BTreeMap<(u8, usize), (BreakerState, SimTime)>,
    last_barrier: Option<SimTime>,
}

/// A scope's map key — racks and the regional tier share one table.
fn scope_key(scope: TierScope) -> (u8, usize) {
    match scope {
        TierScope::Rack(rack) => (0, rack),
        TierScope::Regional => (1, 0),
    }
}

/// Whether a breaker edge is legal. Probation entries (a rejoining
/// board's rack) may come from any state but must land in `HalfOpen`.
fn legal_edge(from: BreakerState, to: BreakerState, probation: bool) -> bool {
    if probation {
        return to == BreakerState::HalfOpen;
    }
    matches!(
        (from, to),
        (BreakerState::Closed, BreakerState::Open)
            | (BreakerState::Open, BreakerState::HalfOpen)
            | (BreakerState::HalfOpen, BreakerState::Closed)
            | (BreakerState::HalfOpen, BreakerState::Open)
    )
}

impl InvariantChecker {
    /// A checker allowing at most `hedge_bound` hedges per request.
    pub fn new(hedge_bound: f64) -> Self {
        InvariantChecker {
            hedge_bound,
            submitted: 0,
            resolved: 0,
            violations: Vec::new(),
            breaker_last: BTreeMap::new(),
            last_barrier: None,
        }
    }

    /// Records an admitted submission.
    pub fn observe_submit(&mut self) {
        self.submitted += 1;
    }

    /// Checks one barrier instant: virtual time must move strictly
    /// forward.
    pub fn observe_barrier(&mut self, at: SimTime) {
        if let Some(last) = self.last_barrier {
            if at <= last {
                self.violations
                    .push(format!("barrier time went backwards: {last} -> {at}"));
            }
        }
        self.last_barrier = Some(at);
    }

    /// Checks one resolved request: exactly-once (the caller redeems
    /// each ticket once; a missing outcome is reported by the caller),
    /// no late replies, completion not before submission.
    pub fn observe_outcome(
        &mut self,
        submit_at: SimTime,
        deadline: Option<SimTime>,
        outcome: &TierOutcome,
    ) {
        self.resolved += 1;
        if let TierOutcome::Reply(reply) = outcome {
            if reply.completed_at < submit_at {
                self.violations.push(format!(
                    "reply completed at {} before its submission at {}",
                    reply.completed_at, submit_at
                ));
            }
            if let Some(deadline) = deadline {
                if reply.completed_at > deadline {
                    self.violations.push(format!(
                        "late reply delivered: completed {} past deadline {}",
                        reply.completed_at, deadline
                    ));
                }
            }
        }
    }

    /// Records a ticket that never produced an outcome — a conservation
    /// violation in itself.
    pub fn observe_lost_ticket(&mut self, submit_at: SimTime) {
        self.violations.push(format!(
            "request submitted at {submit_at} has no outcome after the flush"
        ));
    }

    /// Checks a drained batch of tier breaker transitions: legal edges,
    /// continuity with the scope's previous state, monotone timestamps.
    pub fn observe_transitions(&mut self, transitions: &[TierTransition]) {
        for t in transitions {
            let key = scope_key(t.scope);
            let (last_state, last_at) = *self
                .breaker_last
                .get(&key)
                .unwrap_or(&(BreakerState::Closed, SimTime::ZERO));
            if t.at < last_at {
                self.violations.push(format!(
                    "breaker {:?} transition time went backwards: {} -> {}",
                    t.scope, last_at, t.at
                ));
            }
            if t.from != last_state {
                self.violations.push(format!(
                    "breaker {:?} transition from {:?} does not continue from {:?}",
                    t.scope, t.from, last_state
                ));
            }
            if !legal_edge(t.from, t.to, t.probation) {
                self.violations.push(format!(
                    "illegal breaker edge {:?}: {:?} -> {:?} (probation {})",
                    t.scope, t.from, t.to, t.probation
                ));
            }
            self.breaker_last.insert(key, (t.to, t.at.max(last_at)));
        }
    }

    /// Final conservation and amplification checks against the tier's
    /// own counters; returns the collected violations.
    pub fn finish(mut self, stats: &npu_serve::TierStats) -> Vec<String> {
        if self.resolved != self.submitted {
            self.violations.push(format!(
                "conservation: {} submitted but {} resolved",
                self.submitted, self.resolved
            ));
        }
        if stats.replies + stats.failed != stats.submitted {
            self.violations.push(format!(
                "conservation (tier stats): {} replies + {} failed != {} submitted",
                stats.replies, stats.failed, stats.submitted
            ));
        }
        let allowed = (self.hedge_bound * stats.submitted as f64).floor() as u64;
        if stats.hedges > allowed {
            self.violations.push(format!(
                "hedge amplification: {} hedges exceed {} allowed ({} submitted, bound {})",
                stats.hedges, allowed, stats.submitted, self.hedge_bound
            ));
        }
        self.violations
    }
}

/// Derives the storm schedule from the preset. Epoch anchors scale with
/// the run length so every preset stays meaningful at any `--epochs`.
fn storm_schedule(config: &ChaosConfig) -> FleetSchedule {
    let e = config.epochs;
    let quarter = (e / 4).max(1);
    let builder = StormBuilder::new(config.seed, config.boards, e);
    let builder = match config.storm {
        StormPreset::CrashWave => builder
            .crash_wave(quarter, (config.boards / 3).max(1), quarter)
            .crash_wave(3 * quarter, (config.boards / 4).max(1), quarter),
        StormPreset::Partition => builder.rack_partition(0, quarter, quarter),
        StormPreset::Heartbeat => builder.heartbeat_loss(0, quarter, quarter),
        StormPreset::SlowTier => builder.slow_tier(3.0, quarter, 2 * quarter),
        StormPreset::All => builder
            .crash_wave(quarter, (config.boards / 3).max(1), quarter)
            .rack_partition(0, quarter, quarter)
            .heartbeat_loss(config.racks.saturating_sub(1), 2 * quarter, quarter)
            .slow_tier(3.0, 2 * quarter, quarter)
            .churn(5, 3),
    };
    builder.build()
}

/// One planned request.
struct Arrival {
    board: usize,
    at: SimTime,
    deadline: SimTime,
    payload_seed: u64,
    rows: usize,
}

/// The immutable plan shared by both drivers.
struct Plan {
    schedule: FleetSchedule,
    arrivals: Vec<Arrival>,
    payloads: Vec<Matrix>,
    /// Arrival index ranges per epoch (arrivals are stored epoch-major,
    /// time-sorted within each epoch).
    epoch_ranges: Vec<(usize, usize)>,
}

/// A payload as a pure function of its seed.
fn payload(seed: u64, rows: usize, width: usize) -> Matrix {
    let mut flat = Vec::with_capacity(rows * width);
    for i in 0..rows * width {
        let draw = sim_core::splitmix64(seed ^ (i as u64) << 1);
        flat.push((draw % 2_000) as f32 / 1_000.0 - 1.0);
    }
    Matrix::from_flat(rows, width, flat)
}

/// Plans the whole run: one request per alive board per epoch (alive is
/// pure schedule data), jittered inside the epoch, time-sorted.
fn plan(config: &ChaosConfig, width: usize) -> Plan {
    let schedule = storm_schedule(config);
    let epoch_ns = CHAOS_EPOCH.as_nanos();
    let mut arrivals = Vec::new();
    let mut epoch_ranges = Vec::with_capacity(config.epochs as usize);
    for epoch in 0..config.epochs {
        let start = arrivals.len();
        let base = SimTime::from_nanos(epoch * epoch_ns);
        let mut batch: Vec<Arrival> = (0..config.boards)
            .filter(|&board| schedule.alive(board, epoch))
            .map(|board| {
                let seed =
                    sim_core::splitmix64(config.seed ^ (epoch << 24) ^ ((board as u64) << 4));
                let at = base + SimDuration::from_nanos(seed % (epoch_ns / 2));
                Arrival {
                    board,
                    at,
                    deadline: at + CHAOS_DEADLINE,
                    payload_seed: seed,
                    rows: 1 + (seed % 2) as usize,
                }
            })
            .collect();
        // The tier clock is nondecreasing between flushes: submit in
        // time order (board index breaks ties deterministically).
        batch.sort_by_key(|a| (a.at, a.board));
        arrivals.extend(batch);
        epoch_ranges.push((start, arrivals.len()));
    }
    let payloads = par::par_map(&config.budget, &arrivals, |_, a| {
        payload(a.payload_seed, a.rows, width)
    });
    Plan {
        schedule,
        arrivals,
        payloads,
        epoch_ranges,
    }
}

/// Mutable run state threaded through epoch processing.
struct ChaosState {
    service: TieredService,
    checker: InvariantChecker,
    /// Reply latencies in resolution order (per-epoch, time-sorted).
    latencies: Vec<SimDuration>,
    transitions: u64,
}

/// Maps a board to its rack, round-robin.
fn rack_of(board: usize, racks: usize) -> usize {
    board % racks
}

/// Applies the storm's fault events due at this epoch to the tier.
fn apply_storm(service: &mut TieredService, plan: &Plan, racks: usize, epoch: u64, now: SimTime) {
    for event in plan.schedule.events_at(epoch) {
        match event.fault {
            // A crashed board simply stops submitting (the plan already
            // excludes it); its rejoin puts the rack breaker on
            // probation — the half-open re-entry the breaker-ladder
            // tests pin down.
            FleetFault::BoardCrash { .. } => {}
            FleetFault::BoardRejoin { board } => {
                service.begin_rack_probation(rack_of(board, racks), now);
            }
            FleetFault::RackPartition { rack } => service.set_partitioned(rack % racks, true),
            FleetFault::RackHeal { rack } => service.set_partitioned(rack % racks, false),
            FleetFault::HeartbeatLoss { rack } => {
                service.set_heartbeat_silent(rack % racks, true, now);
            }
            FleetFault::HeartbeatRestore { rack } => {
                service.set_heartbeat_silent(rack % racks, false, now);
            }
            FleetFault::TierSlow { factor_milli } => service.set_tier_slowdown(factor_milli),
            FleetFault::TierRecover => service.set_tier_slowdown(1_000),
            // The chaos harness drives a single-region tier: a regional
            // outage maps onto its one backbone.
            FleetFault::RegionOutage { .. } => service.set_regional_down(true),
            FleetFault::RegionRestore { .. } => service.set_regional_down(false),
        }
    }
}

/// Processes one barrier epoch — storm events, submissions, the flush,
/// outcome resolution, transition checks. Identical for both drivers.
fn process_epoch(plan: &Plan, config: &ChaosConfig, state: &mut ChaosState, epoch: u64) {
    let base = SimTime::from_nanos(epoch * CHAOS_EPOCH.as_nanos());
    let barrier = base + CHAOS_EPOCH;
    state.checker.observe_barrier(barrier);
    apply_storm(&mut state.service, plan, config.racks, epoch, base);

    let (start, end) = plan.epoch_ranges[epoch as usize];
    let mut tickets: Vec<(TierTicket, usize)> = Vec::with_capacity(end - start);
    for idx in start..end {
        let arrival = &plan.arrivals[idx];
        let ticket = state
            .service
            .submit(
                plan.payloads[idx].clone(),
                arrival.at,
                TierSubmit {
                    rack: rack_of(arrival.board, config.racks),
                    client: ClientId::new(arrival.board as u64),
                    deadline: Some(arrival.deadline),
                },
            )
            .expect("chaos payloads are valid");
        state.checker.observe_submit();
        tickets.push((ticket, idx));
    }
    state.service.flush(barrier);

    for (ticket, idx) in tickets {
        let arrival = &plan.arrivals[idx];
        match state.service.take_outcome(ticket) {
            Some(outcome) => {
                if let TierOutcome::Reply(reply) = &outcome {
                    state.latencies.push(reply.latency);
                }
                state
                    .checker
                    .observe_outcome(arrival.at, Some(arrival.deadline), &outcome);
            }
            None => state.checker.observe_lost_ticket(arrival.at),
        }
    }
    let transitions = state.service.drain_transitions();
    state.transitions += transitions.len() as u64;
    state.checker.observe_transitions(&transitions);
}

/// Runs the chaos experiment on the default (event-driven) driver.
///
/// # Panics
///
/// Panics on a zero board, rack or epoch count.
pub fn run(config: &ChaosConfig) -> ChaosReport {
    run_with_driver(config, SimDriver::default())
}

/// Runs the chaos experiment on an explicitly chosen driver. Both
/// produce identical reports (and byte-identical CSV): the lockstep
/// reference iterates the barrier epochs; the event driver hosts one
/// kernel event per epoch on the `sim-core` queue.
///
/// # Panics
///
/// Panics on a zero board, rack or epoch count.
pub fn run_with_driver(config: &ChaosConfig, driver: SimDriver) -> ChaosReport {
    assert!(config.boards > 0, "need at least one board");
    assert!(config.racks > 0, "need at least one rack");
    assert!(config.epochs > 0, "need at least one epoch");
    let mlp = Mlp::with_topology(21, 4, 64, 8, &mut StdRng::seed_from_u64(config.seed));
    let tier_config = TierConfig {
        racks: config.racks,
        hedge_min: CHAOS_HEDGE_MIN,
        breaker_threshold: 2,
        breaker_cooldown: 3,
        ..TierConfig::default()
    };
    let the_plan = plan(config, mlp.input_size());
    let mut state = ChaosState {
        service: TieredService::new(&mlp, tier_config),
        checker: InvariantChecker::new(config.hedge_bound),
        latencies: Vec::new(),
        transitions: 0,
    };

    match driver {
        SimDriver::Lockstep => {
            for epoch in 0..config.epochs {
                process_epoch(&the_plan, config, &mut state, epoch);
            }
        }
        SimDriver::EventDriven => {
            let plan_ref = &the_plan;
            let mut kernel: Kernel<u64, ChaosState> = Kernel::new(config.seed);
            let driver_id = kernel.register("chaos-barrier", |state: &mut ChaosState, _, event| {
                process_epoch(plan_ref, config, state, event.payload);
            });
            for epoch in 0..config.epochs {
                let at = SimTime::from_nanos(epoch * CHAOS_EPOCH.as_nanos()) + CHAOS_EPOCH;
                kernel.scheduler().schedule(at, driver_id, 0, epoch);
            }
            kernel.run_to_idle(&mut state);
        }
    }

    let ChaosState {
        mut service,
        checker,
        mut latencies,
        transitions,
    } = state;
    let stats = *service.stats();
    // Drain the per-service trace streams so a longer pipeline behind
    // the harness can consume them; the chaos report only needs counts.
    let _ = service.drain_service_events();
    let violations = checker.finish(&stats);

    latencies.sort_unstable();
    let percentile = |q: f64| -> SimDuration {
        if latencies.is_empty() {
            return SimDuration::ZERO;
        }
        let rank = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[rank]
    };

    let down: u64 = (0..config.boards)
        .map(|board| {
            the_plan
                .schedule
                .down_spans(board)
                .into_iter()
                .map(|(from, until)| until.min(config.epochs) - from)
                .sum::<u64>()
        })
        .sum();
    let total = config.boards as u64 * config.epochs;

    ChaosReport {
        config: *config,
        storm_events: the_plan.schedule.events().len() as u64,
        submitted: stats.submitted,
        replies: stats.replies,
        failed: stats.failed,
        rack_served: stats.rack_served,
        regional_served: stats.regional_served,
        cpu_served: stats.cpu_served,
        failovers: stats.failovers,
        hedges: stats.hedges,
        hedge_wins: stats.hedge_wins,
        hedge_overhead: if stats.submitted > 0 {
            stats.hedges as f64 / stats.submitted as f64
        } else {
            0.0
        },
        heartbeats: stats.heartbeats,
        suspects: stats.suspects,
        recoveries: stats.recoveries,
        detection_latency_avg: stats
            .detection_latency_total
            .as_nanos()
            .checked_div(stats.suspects)
            .map(SimDuration::from_nanos)
            .unwrap_or(SimDuration::ZERO),
        detection_latency_max: stats.detection_latency_max,
        breaker_transitions: transitions,
        p50: percentile(0.50),
        p99: percentile(0.99),
        availability: 1.0 - down as f64 / total as f64,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(storm: StormPreset) -> ChaosConfig {
        ChaosConfig {
            boards: 8,
            racks: 2,
            epochs: 20,
            seed: 5,
            storm,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn every_storm_holds_the_invariants() {
        for storm in StormPreset::ALL {
            let report = run(&small(storm));
            assert!(
                report.violations.is_empty(),
                "storm `{storm}` violated invariants: {:?}",
                report.violations
            );
            assert!(report.submitted > 0, "storm `{storm}` submitted nothing");
            assert_eq!(
                report.replies + report.failed,
                report.submitted,
                "storm `{storm}` lost requests"
            );
        }
    }

    #[test]
    fn drivers_agree_and_budgets_are_invisible() {
        let config = small(StormPreset::All);
        let lockstep = run_with_driver(&config, SimDriver::Lockstep);
        let event = run_with_driver(&config, SimDriver::EventDriven);
        assert_eq!(lockstep, event, "chaos drivers must agree");
        let threaded_cfg = ChaosConfig {
            budget: par::Budget::with_threads(4),
            ..config
        };
        let mut threaded = run_with_driver(&threaded_cfg, SimDriver::Lockstep);
        threaded.config = config;
        assert_eq!(threaded, lockstep, "chaos must be budget-invariant");
    }

    #[test]
    fn heartbeat_storm_detects_and_recovers() {
        let report = run(&small(StormPreset::Heartbeat));
        assert!(report.suspects > 0, "silent rack must be suspected");
        assert!(report.recoveries > 0, "restored rack must recover");
        assert!(
            report.detection_latency_max > SimDuration::ZERO,
            "detection latency must be measured"
        );
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn crash_wave_costs_availability_but_conserves_requests() {
        let report = run(&small(StormPreset::CrashWave));
        assert!(report.availability < 1.0);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.replies + report.failed, report.submitted);
    }

    #[test]
    fn checker_flags_illegal_edges_and_late_replies() {
        let mut checker = InvariantChecker::new(1.0);
        checker.observe_transitions(&[TierTransition {
            at: SimTime::ZERO,
            scope: TierScope::Regional,
            from: BreakerState::Closed,
            to: BreakerState::HalfOpen,
            probation: false,
        }]);
        let violations = checker.finish(&npu_serve::TierStats::default());
        assert!(
            violations
                .iter()
                .any(|v| v.contains("illegal breaker edge")),
            "{violations:?}"
        );
    }
}

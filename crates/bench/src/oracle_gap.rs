//! **Imitation gap** (extension beyond the paper): runs the oracle policy
//! TOP-IL was trained to imitate *directly* as a governor and measures how
//! much temperature the learned policy gives away.
//!
//! The oracle is not deployable (it reads application models and solves a
//! thermal network per candidate mapping — exactly the design-time
//! knowledge IL distills into a 14k-parameter network), so this experiment
//! bounds what any run-time policy could achieve on this platform.

use std::fmt;

use governors::LinuxGovernor;
use hikey_platform::{Policy, SimConfig, Simulator};
use hmc_types::SimDuration;
use rand::rngs::StdRng;
use rand::SeedableRng;
use thermal::Cooling;
use topil::oracle_governor::OracleGovernor;
use topil::TopIlGovernor;
use workloads::{MixedWorkloadConfig, WorkloadGenerator};

use crate::harness::{Effort, Stat, TrainedArtifacts};

/// One row: a policy's outcome on the shared workload.
#[derive(Debug, Clone, PartialEq)]
pub struct GapRow {
    /// Policy name.
    pub policy: String,
    /// Average temperature.
    pub avg_temp: Stat,
    /// QoS violations.
    pub violations: Stat,
}

/// The imitation-gap report.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleGapReport {
    /// Rows per policy.
    pub rows: Vec<GapRow>,
}

impl OracleGapReport {
    /// Looks up one policy's mean temperature.
    pub fn temp(&self, policy: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.policy == policy)
            .map(|r| r.avg_temp.mean)
    }

    /// The temperature TOP-IL gives away relative to the oracle, in
    /// kelvin.
    pub fn imitation_gap(&self) -> f64 {
        match (self.temp("TOP-IL"), self.temp("Oracle")) {
            (Some(il), Some(oracle)) => il - oracle,
            _ => f64::NAN,
        }
    }
}

impl fmt::Display for OracleGapReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Imitation gap — oracle policy vs. the network that imitates it"
        )?;
        writeln!(
            f,
            "{:<16} {:>16} {:>16}",
            "policy", "avg temp [°C]", "violations"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<16} {:>16} {:>16}",
                row.policy,
                row.avg_temp.to_string(),
                row.violations.to_string()
            )?;
        }
        let gap = self.imitation_gap();
        if gap >= 0.0 {
            writeln!(f, "TOP-IL gives away {gap:.2} K versus the online oracle")
        } else {
            writeln!(
                f,
                "TOP-IL runs {:.2} K cooler than the online oracle (the oracle is \
                 per-epoch myopic with zero-margin DVFS; IL's measurement-driven \
                 control loop compensates transients it cannot see)",
                -gap
            )
        }
    }
}

/// Runs the imitation-gap experiment on a moderately loaded mixed
/// workload.
pub fn run(artifacts: &TrainedArtifacts, effort: Effort) -> OracleGapReport {
    let sim = SimConfig {
        cooling: Cooling::fan(),
        max_duration: SimDuration::from_secs(1200),
        ..SimConfig::default()
    };
    let workload_cfg = MixedWorkloadConfig {
        num_apps: 12,
        mean_interarrival: SimDuration::from_secs(8),
        total_instructions: Some(effort.app_instructions()),
        ..MixedWorkloadConfig::default()
    };

    let mut rows: Vec<GapRow> = Vec::new();
    let mut record = |policy: &str, temps: Vec<f64>, viols: Vec<f64>| {
        rows.push(GapRow {
            policy: policy.to_string(),
            avg_temp: Stat::of(&temps),
            violations: Stat::of(&viols),
        });
    };

    // Three workload seeds for every policy.
    let workloads: Vec<_> = (0..3)
        .map(|seed| WorkloadGenerator::mixed(&workload_cfg, &mut StdRng::seed_from_u64(seed)))
        .collect();

    let run_policy = |make: &mut dyn FnMut(usize) -> Box<dyn Policy>| {
        let mut temps = Vec::new();
        let mut viols = Vec::new();
        for (i, workload) in workloads.iter().enumerate() {
            let mut policy = make(i);
            let report = Simulator::new(sim).run(workload, policy.as_mut());
            temps.push(report.metrics.avg_temperature().value());
            viols.push(report.metrics.qos_violations() as f64);
        }
        (temps, viols)
    };

    let (t, v) = run_policy(&mut |_| Box::new(OracleGovernor::new(Cooling::fan())));
    record("Oracle", t, v);
    let models = artifacts.il_models.clone();
    let (t, v) =
        run_policy(&mut |i| Box::new(TopIlGovernor::new(models[i % models.len()].clone())));
    record("TOP-IL", t, v);
    let (t, v) = run_policy(&mut |_| Box::new(LinuxGovernor::gts_ondemand()));
    record("GTS/ondemand", t, v);
    let (t, v) = run_policy(&mut |_| Box::new(LinuxGovernor::gts_schedutil()));
    record("GTS/schedutil", t, v);

    OracleGapReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::train_artifacts;

    #[test]
    fn il_tracks_the_oracle_closely() {
        let artifacts = train_artifacts(Effort::Quick);
        let report = run(&artifacts, Effort::Quick);
        let il = report.temp("TOP-IL").unwrap();
        let ondemand = report.temp("GTS/ondemand").unwrap();
        assert!(il < ondemand, "IL {il} must beat ondemand {ondemand}");
        // The learned policy must land within 2 K of the oracle in either
        // direction: slightly above (imperfect imitation) or even slightly
        // below — the online oracle is myopic (per-epoch, zero-margin
        // DVFS), and IL's measurement-driven control loop can edge it out.
        let gap = report.imitation_gap();
        assert!(
            gap.abs() < 2.0,
            "the learned policy should track its oracle closely, gap {gap} K"
        );
    }
}

//! **Thermal-model sensitivity analysis** (extension beyond the paper).
//!
//! The reproduction replaces the paper's physical testbed with a lumped RC
//! thermal model, so every conclusion could in principle be an artifact of
//! that calibration. This experiment perturbs the thermal parameters by
//! ±50 % (lateral spreading, vertical stack, heat capacity, cooling
//! effectiveness) and re-runs the headline comparison: the paper's
//! qualitative conclusions must hold under **every** perturbation:
//!
//! 1. TOP-IL is cooler than GTS/ondemand,
//! 2. GTS/powersave is coolest but violates far more targets,
//! 3. TOP-IL keeps violations near zero.

use std::fmt;

use governors::LinuxGovernor;
use hikey_platform::{Policy, SimConfig, Simulator};
use hmc_types::SimDuration;
use rand::rngs::StdRng;
use rand::SeedableRng;
use thermal::ThermalParams;
use topil::TopIlGovernor;
use workloads::{MixedWorkloadConfig, WorkloadGenerator};

use crate::harness::{Effort, TrainedArtifacts};

/// Results for one thermal perturbation.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityRow {
    /// Perturbation label.
    pub label: String,
    /// `(policy, avg temp °C, violations)` triples.
    pub outcomes: Vec<(String, f64, usize)>,
}

impl SensitivityRow {
    fn metric(&self, policy: &str) -> Option<(f64, usize)> {
        self.outcomes
            .iter()
            .find(|(p, _, _)| p == policy)
            .map(|&(_, t, v)| (t, v))
    }

    /// Whether the paper's qualitative conclusions hold under this
    /// perturbation.
    pub fn conclusions_hold(&self) -> bool {
        let Some((t_il, v_il)) = self.metric("TOP-IL") else {
            return false;
        };
        let Some((t_on, _)) = self.metric("GTS/ondemand") else {
            return false;
        };
        let Some((t_ps, v_ps)) = self.metric("GTS/powersave") else {
            return false;
        };
        t_il < t_on && t_ps <= t_il + 0.5 && v_ps > v_il + 2
    }
}

/// The sensitivity report.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityReport {
    /// One row per perturbation.
    pub rows: Vec<SensitivityRow>,
}

impl fmt::Display for SensitivityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Thermal-model sensitivity — headline conclusions under ±50 % parameter perturbations"
        )?;
        for row in &self.rows {
            writeln!(f, "\n{}:", row.label)?;
            for (policy, temp, violations) in &row.outcomes {
                writeln!(
                    f,
                    "  {policy:<16} {temp:>7.2} °C  {violations:>2} violations"
                )?;
            }
            writeln!(
                f,
                "  conclusions hold: {}",
                if row.conclusions_hold() { "yes" } else { "NO" }
            )?;
        }
        Ok(())
    }
}

/// The perturbation grid.
pub fn perturbations() -> Vec<(String, ThermalParams)> {
    let base = ThermalParams::default();
    vec![
        ("calibrated".to_string(), base),
        (
            "lateral x0.5".to_string(),
            ThermalParams {
                lateral_scale: 0.5,
                ..base
            },
        ),
        (
            "lateral x2.0".to_string(),
            ThermalParams {
                lateral_scale: 2.0,
                ..base
            },
        ),
        (
            "stack x0.5".to_string(),
            ThermalParams {
                stack_scale: 0.5,
                ..base
            },
        ),
        (
            "stack x2.0".to_string(),
            ThermalParams {
                stack_scale: 2.0,
                ..base
            },
        ),
        (
            "capacity x0.5".to_string(),
            ThermalParams {
                capacity_scale: 0.5,
                ..base
            },
        ),
        (
            "capacity x2.0".to_string(),
            ThermalParams {
                capacity_scale: 2.0,
                ..base
            },
        ),
        (
            "cooling x0.7".to_string(),
            ThermalParams {
                ambient_scale: 0.7,
                ..base
            },
        ),
        (
            "cooling x1.5".to_string(),
            ThermalParams {
                ambient_scale: 1.5,
                ..base
            },
        ),
    ]
}

/// Runs the sensitivity sweep with the first trained model.
pub fn run(artifacts: &TrainedArtifacts, effort: Effort) -> SensitivityReport {
    let workload_cfg = MixedWorkloadConfig {
        num_apps: 12,
        mean_interarrival: SimDuration::from_secs(6),
        total_instructions: Some(effort.app_instructions()),
        ..MixedWorkloadConfig::default()
    };
    let workload = WorkloadGenerator::mixed(&workload_cfg, &mut StdRng::seed_from_u64(99));

    let rows = perturbations()
        .into_iter()
        .map(|(label, params)| {
            let sim = SimConfig {
                max_duration: SimDuration::from_secs(1200),
                thermal_params: params,
                ..SimConfig::default()
            };
            let mut outcomes = Vec::new();
            let mut run_one = |mut policy: Box<dyn Policy>| {
                let report = Simulator::new(sim).run(&workload, policy.as_mut());
                outcomes.push((
                    report.policy.clone(),
                    report.metrics.avg_temperature().value(),
                    report.metrics.qos_violations(),
                ));
            };
            run_one(Box::new(TopIlGovernor::new(artifacts.il_models[0].clone())));
            run_one(Box::new(LinuxGovernor::gts_ondemand()));
            run_one(Box::new(LinuxGovernor::gts_powersave()));
            SensitivityRow { label, outcomes }
        })
        .collect();
    SensitivityReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::train_artifacts;

    #[test]
    fn conclusions_robust_to_thermal_calibration() {
        let artifacts = train_artifacts(Effort::Quick);
        let report = run(&artifacts, Effort::Quick);
        assert_eq!(report.rows.len(), 9);
        for row in &report.rows {
            assert!(
                row.conclusions_hold(),
                "conclusions break under `{}`: {:?}",
                row.label,
                row.outcomes
            );
        }
    }
}

//! **Fig. 10 (single-application workloads, all unseen).** Each unseen
//! benchmark runs alone with a QoS target reachable at the highest LITTLE
//! V/f level. The paper's finding: TOP-IL is the only technique with both
//! a low temperature and zero QoS violations; powersave violates almost
//! everything except the memory-bound `canneal`; ondemand is hottest.

use std::fmt;

use governors::LinuxGovernor;
use hikey_platform::{Policy, SimConfig, Simulator};
use hmc_types::SimDuration;
use topil::TopIlGovernor;
use toprl::TopRlGovernor;
use workloads::{Benchmark, QosSpec, Workload};

use crate::harness::{Effort, Stat, TrainedArtifacts};

/// Aggregated per-policy results.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRow {
    /// Policy name.
    pub policy: String,
    /// Average temperature across applications and repetitions.
    pub avg_temperature: Stat,
    /// Executions (out of `apps × reps`) with a QoS violation.
    pub violating_executions: usize,
    /// Total executions.
    pub executions: usize,
    /// Names of benchmarks that violated at least once.
    pub violating_benchmarks: Vec<String>,
}

/// The Fig. 10 report.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Report {
    /// One row per policy.
    pub rows: Vec<PolicyRow>,
}

impl Fig10Report {
    /// Looks up one policy's row.
    pub fn row(&self, policy: &str) -> Option<&PolicyRow> {
        self.rows.iter().find(|r| r.policy == policy)
    }
}

impl fmt::Display for Fig10Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 10 — single-application workloads (unseen apps, QoS reachable on LITTLE)"
        )?;
        writeln!(
            f,
            "{:<16} {:>16} {:>12}   violating apps",
            "policy", "avg temp [°C]", "violations"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<16} {:>16} {:>7}/{:<4}   {}",
                row.policy,
                row.avg_temperature.to_string(),
                row.violating_executions,
                row.executions,
                row.violating_benchmarks.join(", ")
            )?;
        }
        Ok(())
    }
}

/// Regenerates Fig. 10.
pub fn run(artifacts: &TrainedArtifacts, effort: Effort) -> Fig10Report {
    let sim = SimConfig {
        max_duration: SimDuration::from_secs(300),
        ..SimConfig::default()
    };
    // "QoS targets are set such that they can be met at the highest V/f
    // level on the LITTLE cluster" — 85 % of the measured (phase-averaged)
    // max-LITTLE throughput leaves the small margin a physical measurement
    // would also leave.
    let suite: Vec<(Benchmark, Workload)> = Benchmark::unseen_set()
        .iter()
        .map(|&b| {
            let mut w = Workload::single(b, QosSpec::FractionOfMaxLittle(0.85));
            let mut arrivals: Vec<_> = w.iter().copied().collect();
            arrivals[0].total_instructions = Some(effort.app_instructions());
            w = Workload::new(arrivals);
            (b, w)
        })
        .collect();

    let mut rows = Vec::new();
    let mut eval =
        |policy_name: &str, mut make: Box<dyn FnMut(usize) -> Box<dyn Policy>>, reps: usize| {
            let mut temps = Vec::new();
            let mut violating = 0usize;
            let mut violators: Vec<String> = Vec::new();
            let mut executions = 0usize;
            for (benchmark, workload) in &suite {
                for rep in 0..reps {
                    let mut policy = make(rep);
                    let report = Simulator::new(sim).run(workload, policy.as_mut());
                    temps.push(report.metrics.avg_temperature().value());
                    executions += 1;
                    if report.metrics.qos_violations() > 0 {
                        violating += 1;
                        let name = benchmark.name().to_string();
                        if !violators.contains(&name) {
                            violators.push(name);
                        }
                    }
                }
            }
            rows.push(PolicyRow {
                policy: policy_name.to_string(),
                avg_temperature: Stat::of(&temps),
                violating_executions: violating,
                executions,
                violating_benchmarks: violators,
            });
        };

    let models = artifacts.il_models.clone();
    eval(
        "TOP-IL",
        Box::new(move |rep| Box::new(TopIlGovernor::new(models[rep % models.len()].clone()))),
        artifacts.il_models.len(),
    );
    let tables = artifacts.rl_tables.clone();
    eval(
        "TOP-RL",
        Box::new(move |rep| {
            Box::new(TopRlGovernor::with_qtable(
                tables[rep % tables.len()].clone(),
                rep as u64,
            ))
        }),
        artifacts.rl_tables.len(),
    );
    eval(
        "GTS/ondemand",
        Box::new(|_| Box::new(LinuxGovernor::gts_ondemand())),
        1,
    );
    eval(
        "GTS/powersave",
        Box::new(|_| Box::new(LinuxGovernor::gts_powersave())),
        1,
    );

    Fig10Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::train_artifacts;

    #[test]
    fn single_app_shape_matches_paper() {
        let artifacts = train_artifacts(Effort::Quick);
        let report = run(&artifacts, Effort::Quick);

        let il = report.row("TOP-IL").unwrap();
        let on = report.row("GTS/ondemand").unwrap();
        let ps = report.row("GTS/powersave").unwrap();

        assert_eq!(il.violating_executions, 0, "TOP-IL must meet every target");
        assert!(
            on.avg_temperature.mean > il.avg_temperature.mean + 1.0,
            "ondemand should be hottest"
        );
        // powersave violates almost everything...
        assert!(ps.violating_executions as f64 / ps.executions as f64 > 0.7);
        // ...except memory-bound canneal.
        assert!(
            !ps.violating_benchmarks.contains(&"canneal".to_string()),
            "canneal survives powersave (frequency-insensitive)"
        );
    }
}

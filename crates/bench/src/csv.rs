//! CSV serialization of the data-bearing reports, for external plotting.

use std::fmt::Write as _;

use hmc_types::Cluster;

use crate::fig10::Fig10Report;
use crate::fig11::Fig11Report;
use crate::fig8::Fig8Report;
use crate::fig9::Fig9Report;
use crate::robustness::RobustnessReport;
use crate::sensitivity::SensitivityReport;

/// Escapes one CSV field (quotes fields containing separators).
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Fig. 8 rows: `cooling,interarrival_s,policy,avg_temp_c,avg_temp_std,violations,violations_std`.
pub fn fig8_csv(report: &Fig8Report) -> String {
    let mut out = String::from(
        "cooling,mean_interarrival_s,policy,avg_temp_c,avg_temp_std,violations,violations_std\n",
    );
    for rate in &report.rates {
        for (policy, temp, viol) in rate.summary() {
            let _ = writeln!(
                out,
                "{},{},{},{:.3},{:.3},{:.3},{:.3}",
                report.cooling,
                rate.mean_interarrival.as_secs_f64(),
                field(&policy),
                temp.mean,
                temp.std,
                viol.mean,
                viol.std
            );
        }
    }
    out
}

/// Fig. 9 rows: `policy,cluster,level,busy_seconds`.
pub fn fig9_csv(report: &Fig9Report) -> String {
    let mut out = String::from("policy,cluster,level,busy_seconds\n");
    for (policy, profile) in &report.profiles {
        for (cluster, levels) in [
            (Cluster::Little, &profile.little),
            (Cluster::Big, &profile.big),
        ] {
            for (level, secs) in levels.iter().enumerate() {
                let _ = writeln!(out, "{},{cluster},{level},{secs:.3}", field(policy));
            }
        }
    }
    out
}

/// Fig. 10 rows: `policy,avg_temp_c,violating,executions,violating_apps`.
pub fn fig10_csv(report: &Fig10Report) -> String {
    let mut out =
        String::from("policy,avg_temp_c,avg_temp_std,violating,executions,violating_apps\n");
    for row in &report.rows {
        let _ = writeln!(
            out,
            "{},{:.3},{:.3},{},{},{}",
            field(&row.policy),
            row.avg_temperature.mean,
            row.avg_temperature.std,
            row.violating_executions,
            row.executions,
            field(&row.violating_benchmarks.join(";"))
        );
    }
    out
}

/// Fig. 11 rows: `apps,dvfs_ms_per_s,migration_npu_ms_per_s,migration_cpu_ms_per_s`.
pub fn fig11_csv(report: &Fig11Report) -> String {
    let mut out =
        String::from("apps,dvfs_ms_per_s,migration_npu_ms_per_s,migration_cpu_ms_per_s\n");
    for row in &report.rows {
        let _ = writeln!(
            out,
            "{},{:.4},{:.4},{:.4}",
            row.apps, row.dvfs_ms_per_s, row.migration_npu_ms_per_s, row.migration_cpu_ms_per_s
        );
    }
    out
}

/// Sensitivity rows: `perturbation,policy,avg_temp_c,violations,conclusions_hold`.
pub fn sensitivity_csv(report: &SensitivityReport) -> String {
    let mut out = String::from("perturbation,policy,avg_temp_c,violations,conclusions_hold\n");
    for row in &report.rows {
        for (policy, temp, violations) in &row.outcomes {
            let _ = writeln!(
                out,
                "{},{},{temp:.3},{violations},{}",
                field(&row.label),
                field(policy),
                row.conclusions_hold()
            );
        }
    }
    out
}

/// Robustness rows: one per fault point × ladder setting.
pub fn robustness_csv(report: &RobustnessReport) -> String {
    let mut out = String::from(
        "npu_failure_rate,sensor_dropout_rate,ladder,avg_temp_c,peak_temp_c,\
         violations,executions,degraded_epochs,cpu_fallback_epochs,npu_failures,\
         breaker_opens,failsafe_events\n",
    );
    for p in &report.points {
        let _ = writeln!(
            out,
            "{},{},{},{:.3},{:.3},{},{},{},{},{},{},{}",
            p.npu_failure_rate,
            p.sensor_dropout_rate,
            p.ladder,
            p.avg_temp_c,
            p.peak_temp_c,
            p.violations,
            p.executions,
            p.degraded_epochs,
            p.cpu_fallback_epochs,
            p.npu_failures,
            p.breaker_opens,
            p.failsafe_events
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_escaping() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn fig10_csv_shape() {
        use crate::harness::Stat;
        let report = Fig10Report {
            rows: vec![crate::fig10::PolicyRow {
                policy: "TOP-IL".to_string(),
                avg_temperature: Stat {
                    mean: 28.4,
                    std: 0.2,
                },
                violating_executions: 0,
                executions: 27,
                violating_benchmarks: vec![],
            }],
        };
        let csv = fig10_csv(&report);
        assert!(csv
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("TOP-IL,28.400,0.200,0,27,"));
    }

    #[test]
    fn sensitivity_csv_shape() {
        let report = SensitivityReport {
            rows: vec![crate::sensitivity::SensitivityRow {
                label: "lateral x2.0".to_string(),
                outcomes: vec![
                    ("TOP-IL".to_string(), 32.0, 1),
                    ("GTS/ondemand".to_string(), 40.0, 0),
                    ("GTS/powersave".to_string(), 31.0, 9),
                ],
            }],
        };
        let csv = sensitivity_csv(&report);
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.contains("lateral x2.0,TOP-IL,32.000,1,true"));
    }

    #[test]
    fn robustness_csv_shape() {
        let report = RobustnessReport {
            points: vec![crate::robustness::RobustnessPoint {
                npu_failure_rate: 0.2,
                sensor_dropout_rate: 0.1,
                ladder: true,
                avg_temp_c: 31.25,
                peak_temp_c: 44.5,
                violations: 1,
                executions: 12,
                degraded_epochs: 0,
                cpu_fallback_epochs: 7,
                npu_failures: 30,
                breaker_opens: 2,
                failsafe_events: 3,
            }],
        };
        let csv = robustness_csv(&report);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("npu_failure_rate,"));
        assert_eq!(
            lines.next().unwrap(),
            "0.2,0.1,true,31.250,44.500,1,12,0,7,30,2,3"
        );
        assert!(lines.next().is_none());
    }

    #[test]
    fn fig11_csv_shape() {
        let report = Fig11Report {
            rows: vec![crate::fig11::OverheadRow {
                apps: 4,
                dvfs_ms_per_s: 2.5,
                migration_npu_ms_per_s: 8.1,
                migration_cpu_ms_per_s: 2.7,
            }],
        };
        let csv = fig11_csv(&report);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("apps,"));
        assert_eq!(lines.next().unwrap(), "4,2.5000,8.1000,2.7000");
        assert!(lines.next().is_none());
    }
}

//! CSV serialization of the data-bearing reports, for external plotting.

use std::fmt::Write as _;

use hmc_types::Cluster;

use crate::chaos::ChaosReport;
use crate::fig10::Fig10Report;
use crate::fig11::Fig11Report;
use crate::fig8::Fig8Report;
use crate::fig9::Fig9Report;
use crate::fleet::FleetReport;
use crate::overload::OverloadReport;
use crate::robustness::RobustnessReport;
use crate::sensitivity::SensitivityReport;
use edge_sim::EdgeReport;

/// Escapes one CSV field (quotes fields containing separators).
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Fig. 8 rows: `cooling,interarrival_s,policy,avg_temp_c,avg_temp_std,violations,violations_std`.
pub fn fig8_csv(report: &Fig8Report) -> String {
    let mut out = String::from(
        "cooling,mean_interarrival_s,policy,avg_temp_c,avg_temp_std,violations,violations_std\n",
    );
    for rate in &report.rates {
        for (policy, temp, viol) in rate.summary() {
            let _ = writeln!(
                out,
                "{},{},{},{:.3},{:.3},{:.3},{:.3}",
                report.cooling,
                rate.mean_interarrival.as_secs_f64(),
                field(&policy),
                temp.mean,
                temp.std,
                viol.mean,
                viol.std
            );
        }
    }
    out
}

/// Fig. 9 rows: `policy,cluster,level,busy_seconds`.
pub fn fig9_csv(report: &Fig9Report) -> String {
    let mut out = String::from("policy,cluster,level,busy_seconds\n");
    for (policy, profile) in &report.profiles {
        for (cluster, levels) in [
            (Cluster::Little, &profile.little),
            (Cluster::Big, &profile.big),
        ] {
            for (level, secs) in levels.iter().enumerate() {
                let _ = writeln!(out, "{},{cluster},{level},{secs:.3}", field(policy));
            }
        }
    }
    out
}

/// Fig. 10 rows: `policy,avg_temp_c,violating,executions,violating_apps`.
pub fn fig10_csv(report: &Fig10Report) -> String {
    let mut out =
        String::from("policy,avg_temp_c,avg_temp_std,violating,executions,violating_apps\n");
    for row in &report.rows {
        let _ = writeln!(
            out,
            "{},{:.3},{:.3},{},{},{}",
            field(&row.policy),
            row.avg_temperature.mean,
            row.avg_temperature.std,
            row.violating_executions,
            row.executions,
            field(&row.violating_benchmarks.join(";"))
        );
    }
    out
}

/// Fig. 11 rows: `apps,dvfs_ms_per_s,migration_npu_ms_per_s,migration_cpu_ms_per_s`.
pub fn fig11_csv(report: &Fig11Report) -> String {
    let mut out =
        String::from("apps,dvfs_ms_per_s,migration_npu_ms_per_s,migration_cpu_ms_per_s\n");
    for row in &report.rows {
        let _ = writeln!(
            out,
            "{},{:.4},{:.4},{:.4}",
            row.apps, row.dvfs_ms_per_s, row.migration_npu_ms_per_s, row.migration_cpu_ms_per_s
        );
    }
    out
}

/// Sensitivity rows: `perturbation,policy,avg_temp_c,violations,conclusions_hold`.
pub fn sensitivity_csv(report: &SensitivityReport) -> String {
    let mut out = String::from("perturbation,policy,avg_temp_c,violations,conclusions_hold\n");
    for row in &report.rows {
        for (policy, temp, violations) in &row.outcomes {
            let _ = writeln!(
                out,
                "{},{},{temp:.3},{violations},{}",
                field(&row.label),
                field(policy),
                row.conclusions_hold()
            );
        }
    }
    out
}

/// Robustness rows: one per fault point × ladder setting.
pub fn robustness_csv(report: &RobustnessReport) -> String {
    let mut out = String::from(
        "npu_failure_rate,sensor_dropout_rate,ladder,avg_temp_c,peak_temp_c,\
         violations,executions,degraded_epochs,cpu_fallback_epochs,npu_failures,\
         breaker_opens,failsafe_events\n",
    );
    for p in &report.points {
        let _ = writeln!(
            out,
            "{},{},{},{:.3},{:.3},{},{},{},{},{},{},{}",
            p.npu_failure_rate,
            p.sensor_dropout_rate,
            p.ladder,
            p.avg_temp_c,
            p.peak_temp_c,
            p.violations,
            p.executions,
            p.degraded_epochs,
            p.cpu_fallback_epochs,
            p.npu_failures,
            p.breaker_opens,
            p.failsafe_events
        );
    }
    out
}

/// Fleet rows, long format: `section,index,metric,value`.
///
/// Three sections: `summary` (aggregate service metrics, index empty),
/// `hist` (index = requests per batch, value = batch count) and `board`
/// (index = board number, one row per per-board metric). The output is
/// byte-deterministic for a given [`crate::fleet::FleetConfig`] — the CI
/// smoke gate hashes it across two runs.
pub fn fleet_csv(report: &FleetReport) -> String {
    let mut out = String::from("section,index,metric,value\n");
    let mut summary = |metric: &str, value: String| {
        let _ = writeln!(out, "summary,,{metric},{value}");
    };
    summary("boards", report.config.boards.to_string());
    summary("epochs", report.config.epochs.to_string());
    summary("devices", report.config.devices.to_string());
    summary("max_batch", report.config.max_batch.to_string());
    summary("submitted", report.submitted.to_string());
    summary(
        "rejected_submissions",
        report.rejected_submissions.to_string(),
    );
    summary("served", report.served.to_string());
    summary("dropped", report.dropped.to_string());
    summary("batches", report.batches.to_string());
    summary("mean_batch_size", format!("{:.4}", report.mean_batch_size));
    summary("p50_ms", format!("{:.6}", report.p50.as_secs_f64() * 1e3));
    summary("p95_ms", format!("{:.6}", report.p95.as_secs_f64() * 1e3));
    summary("p99_ms", format!("{:.6}", report.p99.as_secs_f64() * 1e3));
    summary(
        "serial_device_s",
        format!("{:.6}", report.serial_device_time.as_secs_f64()),
    );
    summary(
        "pool_device_s",
        format!("{:.6}", report.pool_device_time.as_secs_f64()),
    );
    summary(
        "speedup_vs_serial",
        format!("{:.4}", report.speedup_vs_serial),
    );
    summary("throughput_rps", format!("{:.4}", report.throughput_rps));
    summary("mismatches", report.mismatches.to_string());
    summary("saturation_events", report.saturation_events.to_string());
    summary("cache_hits", report.cache_hits.to_string());
    summary("cache_misses", report.cache_misses.to_string());
    summary("churn_events", report.churn_events.to_string());
    summary(
        "reassigned_inflight",
        report.reassigned_inflight.to_string(),
    );
    summary(
        "checkpoint_restores",
        report.checkpoint_restores.to_string(),
    );
    summary("availability", format!("{:.6}", report.availability));
    for (n, &count) in report.batch_histogram.iter().enumerate() {
        if count > 0 {
            let _ = writeln!(out, "hist,{n},batches,{count}");
        }
    }
    for b in &report.boards {
        let i = b.board;
        let _ = writeln!(out, "board,{i},avg_temp_c,{:.3}", b.avg_temp_c);
        let _ = writeln!(out, "board,{i},peak_temp_c,{:.3}", b.peak_temp_c);
        let _ = writeln!(out, "board,{i},violations,{}", b.violations);
        let _ = writeln!(out, "board,{i},executions,{}", b.executions);
        let _ = writeln!(out, "board,{i},migrations,{}", b.migrations);
        let _ = writeln!(out, "board,{i},degraded_epochs,{}", b.degraded_epochs);
        let _ = writeln!(out, "board,{i},fallback_epochs,{}", b.fallback_epochs);
        let _ = writeln!(out, "board,{i},crashes,{}", b.crashes);
        let _ = writeln!(out, "board,{i},down_epochs,{}", b.down_epochs);
        let _ = writeln!(out, "board,{i},reassigned,{}", b.reassigned);
        let _ = writeln!(out, "board,{i},adopted_arrivals,{}", b.adopted_arrivals);
    }
    out
}

/// Overload rows, long format: `section,index,metric,value`.
///
/// Two sections: `summary` (whole-run metrics, index empty) and `epoch`
/// (index = metric epoch, one row per per-epoch metric). The output is
/// byte-deterministic for a given [`crate::overload::OverloadConfig`] —
/// the CI overload gate greps the invariants and diffs it across thread
/// budgets.
pub fn overload_csv(report: &OverloadReport) -> String {
    let mut out = String::from("section,index,metric,value\n");
    let mut summary = |metric: &str, value: String| {
        let _ = writeln!(out, "summary,,{metric},{value}");
    };
    summary("overload", format!("{:.2}", report.config.overload));
    summary("clients", report.config.clients.to_string());
    summary("loris_clients", report.config.loris_clients.to_string());
    summary("epochs", report.config.epochs.to_string());
    summary("devices", report.config.devices.to_string());
    summary(
        "fault_storm",
        u8::from(report.config.fault_storm).to_string(),
    );
    summary("attempts", report.attempts.to_string());
    summary("admitted", report.admitted.to_string());
    summary("served", report.served.to_string());
    summary("expired", report.expired.to_string());
    summary("shed", report.shed.to_string());
    summary("rate_limited", report.rate_limited.to_string());
    summary("degraded", report.degraded.to_string());
    summary("retries", report.retries.to_string());
    summary("deadline_misses", report.deadline_misses.to_string());
    summary("dropped", report.dropped.to_string());
    summary("shed_rate", format!("{:.6}", report.shed_rate));
    summary(
        "p99_queue_wait_ms",
        format!("{:.6}", report.p99_queue_wait.as_secs_f64() * 1e3),
    );
    summary("utilization", format!("{:.6}", report.utilization));
    summary("breaker_opens", report.breaker_opens.to_string());
    for (i, epoch) in report.epochs.iter().enumerate() {
        let _ = writeln!(out, "epoch,{i},queue_depth,{}", epoch.queue_depth);
        let _ = writeln!(out, "epoch,{i},utilization,{:.6}", epoch.utilization);
        let _ = writeln!(out, "epoch,{i},shed_rate,{:.6}", epoch.shed_rate);
        let p99 = epoch.p99_queue_wait.map_or(0.0, |d| d.as_secs_f64() * 1e3);
        let _ = writeln!(out, "epoch,{i},p99_queue_wait_ms,{p99:.6}");
        let _ = writeln!(out, "epoch,{i},admitted,{}", epoch.admitted);
        let _ = writeln!(out, "epoch,{i},served,{}", epoch.served);
        let _ = writeln!(out, "epoch,{i},shed,{}", epoch.shed);
        let _ = writeln!(out, "epoch,{i},expired,{}", epoch.expired);
    }
    out
}

/// Chaos rows, long format: `section,index,metric,value`.
///
/// Two sections: `summary` (whole-storm metrics, index empty) and
/// `violation` (index = violation number, one row per invariant breach —
/// absent when the run is clean). The chaos CI gate greps
/// `summary,,invariant_violations,0` and diffs the full output across
/// thread budgets and drivers, so every value must be byte-deterministic
/// for a given [`crate::chaos::ChaosConfig`].
pub fn chaos_csv(report: &ChaosReport) -> String {
    let mut out = String::from("section,index,metric,value\n");
    let mut summary = |metric: &str, value: String| {
        let _ = writeln!(out, "summary,,{metric},{value}");
    };
    summary("storm", report.config.storm.name().to_string());
    summary("boards", report.config.boards.to_string());
    summary("racks", report.config.racks.to_string());
    summary("epochs", report.config.epochs.to_string());
    summary("seed", report.config.seed.to_string());
    summary("storm_events", report.storm_events.to_string());
    summary("submitted", report.submitted.to_string());
    summary("replies", report.replies.to_string());
    summary("failed", report.failed.to_string());
    summary("rack_served", report.rack_served.to_string());
    summary("regional_served", report.regional_served.to_string());
    summary("cpu_served", report.cpu_served.to_string());
    summary("failovers", report.failovers.to_string());
    summary("hedges", report.hedges.to_string());
    summary("hedge_wins", report.hedge_wins.to_string());
    summary("hedge_overhead", format!("{:.6}", report.hedge_overhead));
    summary("heartbeats", report.heartbeats.to_string());
    summary("suspects", report.suspects.to_string());
    summary("recoveries", report.recoveries.to_string());
    summary(
        "detection_avg_ms",
        format!("{:.6}", report.detection_latency_avg.as_secs_f64() * 1e3),
    );
    summary(
        "detection_max_ms",
        format!("{:.6}", report.detection_latency_max.as_secs_f64() * 1e3),
    );
    summary(
        "breaker_transitions",
        report.breaker_transitions.to_string(),
    );
    summary("p50_ms", format!("{:.6}", report.p50.as_secs_f64() * 1e3));
    summary("p99_ms", format!("{:.6}", report.p99.as_secs_f64() * 1e3));
    summary("availability", format!("{:.6}", report.availability));
    summary("invariant_violations", report.violations.len().to_string());
    for (i, violation) in report.violations.iter().enumerate() {
        let _ = writeln!(out, "violation,{i},text,{}", field(violation));
    }
    out
}

/// Edge-fleet rows, long format: `section,index,metric,value`.
///
/// Three sections: `summary` (fleet-wide metrics, index empty), `region`
/// (index = region number, one row per per-region metric, regions in
/// ascending order) and `violation` (index = violation number, absent on
/// a clean run). The edge CI gate greps
/// `summary,,invariant_violations,0` and diffs the full output across
/// thread budgets and drivers, so every value must be byte-deterministic
/// for a given [`edge_sim::EdgeConfig`]. Wall-clock quantities
/// (boards/second) deliberately never appear here — they go to stderr
/// and the BENCH json.
pub fn edge_csv(report: &EdgeReport) -> String {
    let mut out = String::from("section,index,metric,value\n");
    let mut summary = |metric: &str, value: String| {
        let _ = writeln!(out, "summary,,{metric},{value}");
    };
    summary("boards", report.boards.to_string());
    summary("users", report.users.to_string());
    summary("active_users", report.active_users.to_string());
    summary("regions", report.regions.len().to_string());
    summary("epochs", report.epochs.to_string());
    summary("seed", report.seed.to_string());
    summary("generated", report.generated.to_string());
    summary("truncated", report.truncated.to_string());
    summary("submitted", report.submitted.to_string());
    summary("replies", report.replies.to_string());
    summary("failed", report.failed.to_string());
    summary("rack_served", report.rack_served.to_string());
    summary("regional_served", report.regional_served.to_string());
    summary("cpu_served", report.cpu_served.to_string());
    summary("failovers", report.failovers.to_string());
    summary("hedges", report.hedges.to_string());
    summary("hedges_infeasible", report.hedges_infeasible.to_string());
    summary(
        "breaker_transitions",
        report.breaker_transitions.to_string(),
    );
    summary("storm_events", report.storm_events.to_string());
    summary("outage_epochs", report.outage_epochs.to_string());
    summary("shed_rate", format!("{:.6}", report.shed_rate));
    summary("hedge_rate", format!("{:.6}", report.hedge_rate));
    summary(
        "qos_p50_ms",
        format!("{:.6}", report.qos_p50.as_secs_f64() * 1e3),
    );
    summary(
        "qos_p99_ms",
        format!("{:.6}", report.qos_p99.as_secs_f64() * 1e3),
    );
    summary("thermal_violations", report.thermal_violations.to_string());
    summary(
        "thermal_violation_rate",
        format!("{:.6}", report.thermal_violation_rate),
    );
    summary("peak_temp_c", format!("{:.3}", report.peak_temp));
    summary("invariant_violations", report.violations.len().to_string());
    for r in &report.regions {
        let i = r.region;
        let _ = writeln!(out, "region,{i},boards,{}", r.boards);
        let _ = writeln!(out, "region,{i},users,{}", r.users);
        let _ = writeln!(out, "region,{i},active_users,{}", r.active_users);
        let _ = writeln!(out, "region,{i},generated,{}", r.generated);
        let _ = writeln!(out, "region,{i},truncated,{}", r.truncated);
        let _ = writeln!(out, "region,{i},submitted,{}", r.submitted);
        let _ = writeln!(out, "region,{i},replies,{}", r.replies);
        let _ = writeln!(out, "region,{i},failed,{}", r.failed);
        let _ = writeln!(out, "region,{i},rack_served,{}", r.rack_served);
        let _ = writeln!(out, "region,{i},regional_served,{}", r.regional_served);
        let _ = writeln!(out, "region,{i},cpu_served,{}", r.cpu_served);
        let _ = writeln!(out, "region,{i},failovers,{}", r.failovers);
        let _ = writeln!(out, "region,{i},hedges,{}", r.hedges);
        let _ = writeln!(out, "region,{i},hedges_infeasible,{}", r.hedges_infeasible);
        let _ = writeln!(
            out,
            "region,{i},breaker_transitions,{}",
            r.breaker_transitions
        );
        let _ = writeln!(out, "region,{i},storm_events,{}", r.storm_events);
        let _ = writeln!(out, "region,{i},outage_epochs,{}", r.outage_epochs);
        let _ = writeln!(
            out,
            "region,{i},qos_p50_ms,{:.6}",
            r.qos_p50.as_secs_f64() * 1e3
        );
        let _ = writeln!(
            out,
            "region,{i},qos_p99_ms,{:.6}",
            r.qos_p99.as_secs_f64() * 1e3
        );
        let _ = writeln!(
            out,
            "region,{i},thermal_violations,{}",
            r.thermal_violations
        );
        let _ = writeln!(out, "region,{i},peak_temp_c,{:.3}", r.peak_temp);
    }
    for (i, violation) in report.violations.iter().enumerate() {
        let _ = writeln!(out, "violation,{i},text,{}", field(violation));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_escaping() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(field("two\nlines"), "\"two\nlines\"");
        assert_eq!(field(""), "");
    }

    /// The headers are a contract with external plotting scripts: any
    /// rename or reorder must be deliberate (and versioned), not a
    /// side effect of a refactor.
    #[test]
    fn long_format_headers_are_stable() {
        let edge = edge_csv(&edge_sim::run(&small_edge()));
        let chaos = chaos_csv(&crate::chaos::run(&crate::chaos::ChaosConfig {
            boards: 4,
            racks: 2,
            epochs: 6,
            ..crate::chaos::ChaosConfig::default()
        }));
        for csv in [&edge, &chaos] {
            assert_eq!(csv.lines().next().unwrap(), "section,index,metric,value");
        }
    }

    fn small_edge() -> edge_sim::EdgeConfig {
        edge_sim::EdgeConfig {
            boards: 16,
            users: 1_000,
            regions: 2,
            racks_per_region: 2,
            epochs: 8,
            ..edge_sim::EdgeConfig::default()
        }
    }

    #[test]
    fn edge_csv_carries_the_gate_row() {
        let csv = edge_csv(&edge_sim::run(&small_edge()));
        assert!(csv.starts_with("section,index,metric,value\n"));
        assert!(csv.contains("\nsummary,,invariant_violations,0\n"));
        assert!(csv.contains("\nsummary,,boards,16\n"));
        assert!(!csv.contains("\nviolation,"));
        // Wall-clock metrics must never leak into the deterministic CSV.
        assert!(!csv.contains("boards_per_sec"));
    }

    #[test]
    fn edge_csv_rows_are_deterministically_ordered_across_budgets() {
        let config = small_edge();
        let serial = edge_csv(&edge_sim::run(&config));
        let threaded = edge_csv(&edge_sim::run(&edge_sim::EdgeConfig {
            budget: par::Budget::with_threads(4),
            ..config
        }));
        assert_eq!(
            serial, threaded,
            "edge CSV must be byte-identical at every thread budget"
        );
        // Region sections appear in ascending region order.
        let first = serial.find("\nregion,0,").expect("region 0 rows");
        let second = serial.find("\nregion,1,").expect("region 1 rows");
        assert!(first < second, "region rows out of order");
    }

    #[test]
    fn fig10_csv_shape() {
        use crate::harness::Stat;
        let report = Fig10Report {
            rows: vec![crate::fig10::PolicyRow {
                policy: "TOP-IL".to_string(),
                avg_temperature: Stat {
                    mean: 28.4,
                    std: 0.2,
                },
                violating_executions: 0,
                executions: 27,
                violating_benchmarks: vec![],
            }],
        };
        let csv = fig10_csv(&report);
        assert!(csv
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("TOP-IL,28.400,0.200,0,27,"));
    }

    #[test]
    fn sensitivity_csv_shape() {
        let report = SensitivityReport {
            rows: vec![crate::sensitivity::SensitivityRow {
                label: "lateral x2.0".to_string(),
                outcomes: vec![
                    ("TOP-IL".to_string(), 32.0, 1),
                    ("GTS/ondemand".to_string(), 40.0, 0),
                    ("GTS/powersave".to_string(), 31.0, 9),
                ],
            }],
        };
        let csv = sensitivity_csv(&report);
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.contains("lateral x2.0,TOP-IL,32.000,1,true"));
    }

    #[test]
    fn robustness_csv_shape() {
        let report = RobustnessReport {
            points: vec![crate::robustness::RobustnessPoint {
                npu_failure_rate: 0.2,
                sensor_dropout_rate: 0.1,
                ladder: true,
                avg_temp_c: 31.25,
                peak_temp_c: 44.5,
                violations: 1,
                executions: 12,
                degraded_epochs: 0,
                cpu_fallback_epochs: 7,
                npu_failures: 30,
                breaker_opens: 2,
                failsafe_events: 3,
            }],
        };
        let csv = robustness_csv(&report);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("npu_failure_rate,"));
        assert_eq!(
            lines.next().unwrap(),
            "0.2,0.1,true,31.250,44.500,1,12,0,7,30,2,3"
        );
        assert!(lines.next().is_none());
    }

    #[test]
    fn chaos_csv_carries_the_gate_row() {
        let config = crate::chaos::ChaosConfig {
            boards: 6,
            racks: 2,
            epochs: 10,
            seed: 3,
            ..crate::chaos::ChaosConfig::default()
        };
        let csv = chaos_csv(&crate::chaos::run(&config));
        assert!(csv.starts_with("section,index,metric,value\n"));
        assert!(csv.contains("\nsummary,,invariant_violations,0\n"));
        assert!(csv.contains("\nsummary,,storm,all\n"));
        assert!(!csv.contains("\nviolation,"));
    }

    #[test]
    fn fig11_csv_shape() {
        let report = Fig11Report {
            rows: vec![crate::fig11::OverheadRow {
                apps: 4,
                dvfs_ms_per_s: 2.5,
                migration_npu_ms_per_s: 8.1,
                migration_cpu_ms_per_s: 2.7,
            }],
        };
        let csv = fig11_csv(&report);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("apps,"));
        assert_eq!(lines.next().unwrap(), "4,2.5000,8.1000,2.7000");
        assert!(lines.next().is_none());
    }
}

//! Fleet experiment: N independent simulated boards sharing one
//! `npu-serve` inference service.
//!
//! Every board runs its own platform, workload and TOP-IL migration
//! policy, stepped in lockstep. At each 500 ms migration epoch all boards
//! prepare their feature batches ([`topil::MigrationPolicy::prepare`]),
//! submit them to the shared service with a small per-board jitter, and
//! complete the epoch from the batched replies
//! ([`topil::MigrationPolicy::complete`]). The dynamic batcher coalesces
//! the fleet's requests into a few large device calls, amortizing the
//! Kirin 970's ~3.9 ms driver round-trip that dominates solo inference —
//! while per-request quantization groups keep every reply bit-identical
//! to dedicated-device issuance (verified request-by-request during the
//! run).
//!
//! The whole experiment runs in virtual time and is fully deterministic:
//! the same configuration produces byte-identical CSV output.
//!
//! Two drivers execute the run. The **lockstep** reference visits every
//! board at every 500 ms barrier. The **event-driven** driver (the
//! default) hosts the barriers on the `sim-core` kernel: one `Barrier`
//! event per *active* barrier instant carries the set of boards due
//! there, and a board with no running applications is not due again
//! until the barrier covering its next workload arrival — its platform
//! ticks are replayed lazily (in the exact per-tick order of the
//! reference loop) when it is next visited, so QoS and thermal
//! aggregates are bit-identical while idle boards skip the per-barrier
//! coordination entirely. [`FleetKernelStats`] counts the skipped
//! board-epoch visits; the `event_kernel_equivalence` suite asserts
//! report and CSV equality between the drivers.

use std::collections::BTreeMap;
use std::fmt;

use hikey_platform::{default_placement, Platform, PlatformConfig, SimDriver};
use hmc_types::{SimDuration, SimTime};
use npu::{NpuDevice, NpuModel};
use npu_serve::{NpuService, RequestTicket, ServeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_core::{ComponentId, Kernel, Scheduler};
use topil::dvfs::DvfsControlLoop;
use topil::governor::{DVFS_PERIOD, MIGRATION_PERIOD};
use topil::oracle::Scenario;
use topil::training::{IlTrainer, TrainSettings};
use topil::{ClientReply, IlModel, InferenceBackend, MigrationPolicy, PreparedEpoch};
use trace::TraceEvent;
use workloads::{ArrivalSpec, MixedWorkloadConfig, WorkloadGenerator};

/// Configuration of one fleet run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Simulated boards sharing the service.
    pub boards: usize,
    /// Lockstep 500 ms migration epochs to simulate.
    pub epochs: u64,
    /// NPU devices in the shared pool.
    pub devices: usize,
    /// Maximum requests coalesced into one device call.
    pub max_batch: usize,
    /// Worker threads computing ready batches.
    pub workers: usize,
    /// Master seed (model training and per-board workloads derive from
    /// it).
    pub seed: u64,
    /// Host-thread budget for stepping boards between lockstep barriers.
    /// Boards only interact at migration epochs, so each one is advanced
    /// to the next barrier independently; the report and CSV are
    /// byte-identical at every budget.
    pub budget: par::Budget,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            boards: 16,
            epochs: 200,
            devices: 2,
            max_batch: 16,
            workers: 4,
            seed: 7,
            budget: par::Budget::serial(),
        }
    }
}

/// Per-board outcome of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct BoardOutcome {
    /// Board index.
    pub board: usize,
    /// Average die temperature over the run.
    pub avg_temp_c: f64,
    /// Peak die temperature over the run.
    pub peak_temp_c: f64,
    /// Applications that finished with a violated QoS target.
    pub violations: usize,
    /// Applications that finished.
    pub executions: usize,
    /// Migrations the board's policy executed.
    pub migrations: u64,
    /// Epochs that produced no decision (reply missing or rejected).
    pub degraded_epochs: u64,
    /// Epochs served by a CPU fallback path.
    pub fallback_epochs: u64,
}

/// Aggregate result of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// The configuration that produced this report.
    pub config: FleetConfig,
    /// Requests admitted by the service.
    pub submitted: u64,
    /// Submissions bounced by admission control (before retry).
    pub rejected_submissions: u64,
    /// Requests served with a reply.
    pub served: u64,
    /// Requests admitted but never served (must be zero after a run).
    pub dropped: u64,
    /// Device calls dispatched.
    pub batches: u64,
    /// Mean requests per device call.
    pub mean_batch_size: f64,
    /// `histogram[n]` = device calls that coalesced `n` requests.
    pub batch_histogram: Vec<u64>,
    /// Median per-request inference latency (submit → completion).
    pub p50: SimDuration,
    /// 95th-percentile per-request inference latency.
    pub p95: SimDuration,
    /// 99th-percentile per-request inference latency.
    pub p99: SimDuration,
    /// Device time the same requests would cost served solo on dedicated
    /// NPUs (one driver round-trip each).
    pub serial_device_time: SimDuration,
    /// Device time the shared pool actually spent.
    pub pool_device_time: SimDuration,
    /// `serial_device_time / pool_device_time` — the batching speedup.
    pub speedup_vs_serial: f64,
    /// Served requests per second of pool device time.
    pub throughput_rps: f64,
    /// Replies that differed from dedicated-device inference (must be
    /// zero: batching is bit-exact).
    pub mismatches: u64,
    /// `QueueSaturated` events the service emitted.
    pub saturation_events: u64,
    /// Per-board QoS/thermal outcomes.
    pub boards: Vec<BoardOutcome>,
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fleet: {} boards x {} epochs on {} shared NPU(s), max batch {}",
            self.config.boards, self.config.epochs, self.config.devices, self.config.max_batch
        )?;
        writeln!(
            f,
            "  requests: {} served / {} submitted ({} rejected submissions, {} dropped)",
            self.served, self.submitted, self.rejected_submissions, self.dropped
        )?;
        writeln!(
            f,
            "  batches:  {} (mean size {:.2}), latency p50/p95/p99 = {} / {} / {}",
            self.batches, self.mean_batch_size, self.p50, self.p95, self.p99
        )?;
        writeln!(
            f,
            "  device time: {} pooled vs {} serial -> {:.2}x speedup, {:.1} req/s, {} mismatches",
            self.pool_device_time,
            self.serial_device_time,
            self.speedup_vs_serial,
            self.throughput_rps,
            self.mismatches
        )?;
        writeln!(f, "  batch-size histogram:")?;
        for (n, &count) in self.batch_histogram.iter().enumerate() {
            if count > 0 {
                writeln!(f, "    {n:>3} requests: {count}")?;
            }
        }
        let violations: usize = self.boards.iter().map(|b| b.violations).sum();
        let executions: usize = self.boards.iter().map(|b| b.executions).sum();
        let degraded: u64 = self.boards.iter().map(|b| b.degraded_epochs).sum();
        writeln!(
            f,
            "  boards: {}/{} QoS violations, {} degraded epochs",
            violations, executions, degraded
        )
    }
}

/// One simulated board: platform, pending arrivals, policy and DVFS loop.
struct Board {
    platform: Platform,
    policy: MigrationPolicy,
    dvfs: DvfsControlLoop,
    arrivals: Vec<ArrivalSpec>,
    next_arrival: usize,
    dvfs_skip: u8,
    /// Submission offset within the epoch, staggering the fleet's
    /// requests across the batching window.
    jitter: SimDuration,
    migrations: u64,
    degraded_epochs: u64,
    fallback_epochs: u64,
}

/// Trains the small IL model the fleet deploys on every board.
pub fn fleet_model(seed: u64) -> IlModel {
    let settings = TrainSettings {
        nn: nn::TrainConfig {
            max_epochs: 60,
            patience: 12,
            ..nn::TrainConfig::default()
        },
        ..TrainSettings::default()
    };
    IlTrainer::new(settings).train(&Scenario::standard_set(8, 0xF1EE7), seed)
}

/// Trains a model and runs the fleet.
pub fn run(config: &FleetConfig) -> FleetReport {
    run_with_model(&fleet_model(config.seed), config)
}

/// As [`run`], on an explicitly chosen driver (`experiments fleet
/// --driver ...`).
pub fn run_driver(config: &FleetConfig, driver: SimDriver) -> FleetReport {
    run_with_model_driver(&fleet_model(config.seed), config, driver)
}

/// Kernel-side counters of one event-driven fleet run: how much
/// per-barrier coordination the virtual-time skipping avoided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetKernelStats {
    /// Board-barrier visits the event driver actually performed.
    pub board_epoch_visits: u64,
    /// Barrier instants that had at least one board due (each is one
    /// kernel event / handler invocation).
    pub active_barriers: u64,
    /// Visits the lockstep reference performs unconditionally
    /// (`epochs * boards`).
    pub lockstep_visits: u64,
    /// Kernel handler invocations over the run.
    pub handler_invocations: u64,
    /// Events pushed onto the kernel queue over the run.
    pub events_scheduled: u64,
}

impl FleetKernelStats {
    /// `lockstep_visits / board_epoch_visits` — how many times fewer
    /// board-barrier visits the event driver performed.
    pub fn visit_reduction(&self) -> f64 {
        if self.board_epoch_visits > 0 {
            self.lockstep_visits as f64 / self.board_epoch_visits as f64
        } else {
            f64::INFINITY
        }
    }
}

/// Runs the fleet with an already-trained model on the default driver
/// ([`SimDriver::EventDriven`]).
///
/// # Panics
///
/// Panics on a zero board or epoch count.
pub fn run_with_model(model: &IlModel, config: &FleetConfig) -> FleetReport {
    run_with_model_driver(model, config, SimDriver::default())
}

/// Runs the fleet on an explicitly chosen driver. Both drivers produce
/// identical [`FleetReport`]s (and therefore byte-identical CSV).
///
/// # Panics
///
/// Panics on a zero board or epoch count.
pub fn run_with_model_driver(
    model: &IlModel,
    config: &FleetConfig,
    driver: SimDriver,
) -> FleetReport {
    match driver {
        SimDriver::Lockstep => run_lockstep_with_model(model, config),
        SimDriver::EventDriven => run_event_with_stats(model, config).0,
    }
}

/// The shared-service configuration derived from a fleet config.
fn serve_config(config: &FleetConfig) -> ServeConfig {
    ServeConfig {
        devices: config.devices,
        workers: config.workers,
        max_batch: config.max_batch,
        // Admit at least one pending request per board so a full fleet
        // wave is never bounced.
        queue_capacity: config.boards.max(ServeConfig::default().queue_capacity),
        ..ServeConfig::default()
    }
}

/// Builds the per-board platforms, policies and workloads.
fn make_boards(model: &IlModel, config: &FleetConfig, serve: &ServeConfig) -> Vec<Board> {
    (0..config.boards)
        .map(|i| {
            let workload_cfg = MixedWorkloadConfig {
                num_apps: 4,
                mean_interarrival: SimDuration::from_secs(8),
                total_instructions: Some(12_000_000_000),
                ..MixedWorkloadConfig::default()
            };
            let seed = config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64);
            let workload =
                WorkloadGenerator::mixed(&workload_cfg, &mut StdRng::seed_from_u64(seed));
            Board {
                platform: Platform::new(PlatformConfig::default()),
                policy: MigrationPolicy::new(model.clone()),
                dvfs: DvfsControlLoop::new(),
                arrivals: workload.iter().copied().collect(),
                next_arrival: 0,
                dvfs_skip: 0,
                jitter: SimDuration::from_nanos(
                    (i as u64).wrapping_mul(997_000) % serve.max_wait.as_nanos(),
                ),
                migrations: 0,
                degraded_epochs: 0,
                fallback_epochs: 0,
            }
        })
        .collect()
}

/// The fixed-barrier reference loop: every board visited at every
/// barrier. The event-driven driver is proven equivalent to this
/// implementation; keep the two in sync.
fn run_lockstep_with_model(model: &IlModel, config: &FleetConfig) -> FleetReport {
    assert!(config.boards > 0, "need at least one board");
    assert!(config.epochs > 0, "need at least one epoch");
    let serve = serve_config(config);
    let mut service = NpuService::new(model.mlp(), serve);
    // Reference for the serial baseline and the bit-identity check: one
    // dedicated device per board, each request served alone.
    let dedicated = NpuModel::compile(model.mlp());
    let device = NpuDevice::kirin970();
    let mut boards = make_boards(model, config, &serve);
    let all_boards: Vec<usize> = (0..config.boards).collect();

    let end = SimTime::ZERO + MIGRATION_PERIOD * config.epochs;
    let mut serial_device_time = SimDuration::ZERO;
    let mut mismatches = 0u64;

    // Boards only interact at migration barriers, so the run alternates
    // between a serial barrier (admissions due at the barrier instant,
    // then the shared-service epoch) and a parallel stretch where every
    // board is stepped to the next barrier independently. Each board sees
    // the exact per-tick operation order of the serial loop — admit(t),
    // DVFS(t), tick — so the outcome is bit-identical at every budget.
    loop {
        let now = boards[0].platform.now();
        if now >= end {
            break;
        }
        debug_assert!(now.is_multiple_of(MIGRATION_PERIOD), "boards left lockstep");
        par::par_for_each_mut(&config.budget, &mut boards, |_, board| {
            admit_due(board, now);
        });
        fleet_epoch(
            &mut boards,
            &all_boards,
            &mut service,
            &dedicated,
            &device,
            now,
            &mut serial_device_time,
            &mut mismatches,
            &config.budget,
        );
        let next_barrier = now + MIGRATION_PERIOD;
        par::par_for_each_mut(&config.budget, &mut boards, |_, board| {
            step_to_barrier(board, now, next_barrier);
        });
    }
    finalize(config, boards, service, end, serial_device_time, mismatches)
}

/// Flushes the service at `end` and assembles the report — shared by
/// both drivers (boards must already be stepped to `end`).
fn finalize(
    config: &FleetConfig,
    boards: Vec<Board>,
    mut service: NpuService,
    end: SimTime,
    serial_device_time: SimDuration,
    mismatches: u64,
) -> FleetReport {
    let mut saturation_events = 0u64;
    service.flush(end);
    for event in service.drain_events() {
        if matches!(event, TraceEvent::QueueSaturated { .. }) {
            saturation_events += 1;
        }
    }

    let stats = service.stats().clone();
    let pool_device_time: SimDuration = service.device_busy_times().into_iter().sum();
    let pool_secs = pool_device_time.as_secs_f64();
    let serial_secs = serial_device_time.as_secs_f64();
    let outcomes: Vec<BoardOutcome> = boards
        .into_iter()
        .enumerate()
        .map(|(i, board)| {
            let (metrics, _) = board.platform.finish();
            BoardOutcome {
                board: i,
                avg_temp_c: metrics.avg_temperature().value(),
                peak_temp_c: metrics.peak_temperature().value(),
                violations: metrics.qos_violations(),
                executions: metrics.outcomes().len(),
                migrations: board.migrations,
                degraded_epochs: board.degraded_epochs,
                fallback_epochs: board.fallback_epochs,
            }
        })
        .collect();
    FleetReport {
        config: *config,
        submitted: stats.submitted,
        rejected_submissions: stats.rejected,
        served: stats.served,
        dropped: stats.dropped(),
        batches: stats.batches,
        mean_batch_size: stats.mean_batch_size(),
        batch_histogram: stats.batch_histogram().to_vec(),
        p50: stats.latency_percentile(0.50).unwrap_or(SimDuration::ZERO),
        p95: stats.latency_percentile(0.95).unwrap_or(SimDuration::ZERO),
        p99: stats.latency_percentile(0.99).unwrap_or(SimDuration::ZERO),
        serial_device_time,
        pool_device_time,
        speedup_vs_serial: if pool_secs > 0.0 {
            serial_secs / pool_secs
        } else {
            0.0
        },
        throughput_rps: if pool_secs > 0.0 {
            stats.served as f64 / pool_secs
        } else {
            0.0
        },
        mismatches,
        saturation_events,
        boards: outcomes,
    }
}

/// Shared state of the event-driven driver.
struct FleetState {
    boards: Vec<Board>,
    service: NpuService,
    dedicated: NpuModel,
    device: NpuDevice,
    serial_device_time: SimDuration,
    mismatches: u64,
    /// Barrier instant -> boards due there (each key has exactly one
    /// scheduled `Barrier` event).
    due: BTreeMap<SimTime, Vec<usize>>,
    visits: u64,
    active_barriers: u64,
}

/// The single fleet event kind: a barrier instant with boards due.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BarrierDue;

/// Marks board `i` due at `at`, scheduling the barrier's kernel event
/// if `at` is a new barrier instant.
fn mark_due(
    due: &mut BTreeMap<SimTime, Vec<usize>>,
    sched: &mut Scheduler<BarrierDue>,
    barrier: ComponentId,
    at: SimTime,
    i: usize,
) {
    let boards = due.entry(at).or_insert_with(|| {
        sched.schedule(at, barrier, 0, BarrierDue);
        Vec::new()
    });
    boards.push(i);
}

/// The barrier at or after a board's next arrival — the earliest one
/// where it can have a running application again.
fn next_due_barrier(board: &Board, after: SimTime) -> Option<SimTime> {
    let at = board.arrivals.get(board.next_arrival)?.at;
    let period = MIGRATION_PERIOD.as_nanos();
    let aligned = SimTime::from_nanos(at.as_nanos().div_ceil(period) * period);
    Some(aligned.max(after))
}

/// Replays one board's platform ticks from wherever it last stopped up
/// to `to`, in the reference loop's exact per-tick order. Admissions at
/// the board's resume instant were already performed when it was last
/// visited, which is precisely `step_to_barrier`'s contract.
fn catch_up(board: &mut Board, to: SimTime) {
    let resumed_at = board.platform.now();
    step_to_barrier(board, resumed_at, to);
}

/// The event-driven driver, returning the report plus kernel counters.
/// Equivalent to [`run_with_model_driver`] with [`SimDriver::Lockstep`]
/// — same report, byte-identical CSV — while visiting each board only
/// at barriers where it can have work.
///
/// # Panics
///
/// Panics on a zero board or epoch count.
pub fn run_event_with_stats(
    model: &IlModel,
    config: &FleetConfig,
) -> (FleetReport, FleetKernelStats) {
    assert!(config.boards > 0, "need at least one board");
    assert!(config.epochs > 0, "need at least one epoch");
    let serve = serve_config(config);
    let end = SimTime::ZERO + MIGRATION_PERIOD * config.epochs;
    let mut state = FleetState {
        boards: make_boards(model, config, &serve),
        service: NpuService::new(model.mlp(), serve),
        dedicated: NpuModel::compile(model.mlp()),
        device: NpuDevice::kirin970(),
        serial_device_time: SimDuration::ZERO,
        mismatches: 0,
        due: BTreeMap::new(),
        visits: 0,
        active_barriers: 0,
    };

    let cfg = *config;
    let mut kernel: Kernel<BarrierDue, FleetState> = Kernel::new(config.seed);
    let barrier = kernel.register(
        "fleet-barrier",
        move |state: &mut FleetState, sched, event| {
            let now = event.time;
            let mut due = state
                .due
                .remove(&now)
                .expect("barrier event without due boards");
            due.sort_unstable();
            state.visits += due.len() as u64;
            state.active_barriers += 1;

            // Replay deferred ticks up to the barrier and admit due
            // arrivals — board-local, so the stretch runs under the thread
            // budget exactly like the reference loop's parallel phases.
            let due_ref = &due;
            par::par_for_each_mut(&cfg.budget, &mut state.boards, |i, board| {
                if due_ref.binary_search(&i).is_ok() {
                    catch_up(board, now);
                    admit_due(board, now);
                }
            });

            // Boards not due here provably have no running applications, so
            // the epoch over the due set equals the reference epoch over
            // all boards (whose first step filters on `app_count > 0`).
            fleet_epoch(
                &mut state.boards,
                due_ref,
                &mut state.service,
                &state.dedicated,
                &state.device,
                now,
                &mut state.serial_device_time,
                &mut state.mismatches,
                &cfg.budget,
            );

            // Re-arm: busy boards are due at the next barrier; idle boards
            // sleep until the barrier covering their next arrival.
            for i in due {
                let board = &state.boards[i];
                let next = if board.platform.app_count() > 0 {
                    Some(now + MIGRATION_PERIOD)
                } else {
                    next_due_barrier(board, now + MIGRATION_PERIOD)
                };
                match next {
                    Some(at) if at < end => mark_due(&mut state.due, sched, event.dst, at, i),
                    _ => {} // dormant until the final catch-up
                }
            }
        },
    );

    for i in 0..state.boards.len() {
        if let Some(at) = next_due_barrier(&state.boards[i], SimTime::ZERO) {
            if at < end {
                mark_due(&mut state.due, kernel.scheduler(), barrier, at, i);
            }
        }
    }
    kernel.run_to_idle(&mut state);

    // Every board still owes its deferred ticks up to `end`.
    par::par_for_each_mut(&cfg.budget, &mut state.boards, |_, board| {
        catch_up(board, end);
    });

    let kernel_stats = FleetKernelStats {
        board_epoch_visits: state.visits,
        active_barriers: state.active_barriers,
        lockstep_visits: config.epochs * config.boards as u64,
        handler_invocations: kernel.stats().handler_invocations,
        events_scheduled: kernel.scheduler().queue_stats().scheduled,
    };
    let report = finalize(
        config,
        state.boards,
        state.service,
        end,
        state.serial_device_time,
        state.mismatches,
    );
    (report, kernel_stats)
}

/// Admits every arrival due at or before `now` on one board.
fn admit_due(board: &mut Board, now: SimTime) {
    while let Some(spec) = board.arrivals.get(board.next_arrival) {
        if spec.at > now {
            break;
        }
        let core = default_placement(&board.platform);
        board.platform.admit(spec, core);
        board.next_arrival += 1;
    }
}

/// Steps one board from the `barrier` instant up to (exclusive)
/// `next_barrier`, replaying the serial loop's per-tick order: admissions
/// (already done at the barrier itself), then DVFS, then the platform
/// tick.
fn step_to_barrier(board: &mut Board, barrier: SimTime, next_barrier: SimTime) {
    loop {
        let t = board.platform.now();
        if t >= next_barrier {
            break;
        }
        if t != barrier {
            admit_due(board, t);
        }
        if t.is_multiple_of(DVFS_PERIOD) {
            if board.dvfs_skip > 0 {
                board.dvfs_skip -= 1;
            } else {
                // `run` charges its own CPU cost to the platform.
                let _ = board.dvfs.run(&mut board.platform);
            }
        }
        board.platform.tick();
    }
}

/// One migration epoch over `candidates`: prepare on every candidate
/// board with running applications, submit jittered, flush, complete
/// from the batched replies. The lockstep driver passes every board;
/// the event driver passes only the boards due at this barrier (the
/// rest have no running applications, so the filter below would drop
/// them anyway).
#[allow(clippy::too_many_arguments)]
fn fleet_epoch(
    boards: &mut [Board],
    candidates: &[usize],
    service: &mut NpuService,
    dedicated: &NpuModel,
    device: &NpuDevice,
    now: SimTime,
    serial_device_time: &mut SimDuration,
    mismatches: &mut u64,
    budget: &par::Budget,
) {
    // Boards submit in jitter order — the arrival interleaving the shared
    // service actually sees.
    let mut order: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&i| boards[i].platform.app_count() > 0)
        .collect();
    order.sort_by_key(|&i| (boards[i].jitter, i));

    let mut pending: Vec<(usize, PreparedEpoch, Option<RequestTicket>)> = Vec::new();
    for i in order {
        let board = &mut boards[i];
        let Some(prepared) = board.policy.prepare(&board.platform) else {
            continue;
        };
        *serial_device_time += device.inference_latency(dedicated, prepared.batch().rows());
        let mut at = now + board.jitter;
        let mut ticket = None;
        for _ in 0..=service.config().retry.max_attempts {
            match service.submit(prepared.batch(), at) {
                Ok(t) => {
                    ticket = Some(t);
                    break;
                }
                Err(rejected) => at += rejected.retry_after,
            }
        }
        pending.push((i, prepared, ticket));
    }
    // Everything this epoch submitted is served before the next one.
    service.flush(now + MIGRATION_PERIOD);

    // Collect replies serially (the service is shared mutable state) …
    let completed: Vec<(usize, PreparedEpoch, ClientReply)> = pending
        .into_iter()
        .map(|(i, prepared, ticket)| {
            let reply = match ticket.and_then(|t| service.take_reply(t)) {
                Some(reply) => reply,
                // Admission control bounced every retry: the epoch
                // degrades.
                None => ClientReply {
                    output: None,
                    latency: SimDuration::ZERO,
                    cpu_time: SimDuration::ZERO,
                    backend: InferenceBackend::Npu,
                    npu_failures: 0,
                    fallback_active: false,
                    jobs: Vec::new(),
                    breaker_opened: false,
                },
            };
            (i, prepared, reply)
        })
        .collect();
    // … then run the dedicated-device bit-identity checks in parallel:
    // each is a pure re-inference of one board's batch, and the flags are
    // folded in submission order.
    let mismatch_flags = par::par_map(budget, &completed, |_, (_, prepared, reply)| {
        reply
            .output
            .as_ref()
            .is_some_and(|output| *output != dedicated.infer(prepared.batch()))
    });
    *mismatches += mismatch_flags.iter().filter(|&&m| m).count() as u64;

    for (i, prepared, reply) in completed {
        let board = &mut boards[i];
        let outcome = board.policy.complete(&mut board.platform, &prepared, reply);
        if outcome.migrated.is_some() {
            board.migrations += 1;
        }
        if outcome.deadline_missed {
            board.degraded_epochs += 1;
        } else {
            // Mirror the governor: skip two DVFS iterations around a
            // completed migration epoch.
            board.dvfs_skip = 2;
        }
        if outcome.fallback_active {
            board.fallback_epochs += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FleetConfig {
        FleetConfig {
            boards: 6,
            epochs: 12,
            devices: 2,
            max_batch: 8,
            workers: 2,
            seed: 3,
            budget: par::Budget::serial(),
        }
    }

    #[test]
    fn fleet_serves_every_request_and_beats_serial() {
        let model = fleet_model(0);
        let report = run_with_model(&model, &small_config());
        assert!(report.submitted > 0, "boards must issue requests");
        assert_eq!(report.dropped, 0);
        assert_eq!(report.mismatches, 0, "batching must be bit-exact");
        assert!(
            report.speedup_vs_serial >= 3.0,
            "batched speedup {:.2}x below 3x",
            report.speedup_vs_serial
        );
        assert!(report.mean_batch_size > 1.5, "requests must coalesce");
        assert_eq!(report.boards.len(), 6);
        assert!(report.boards.iter().any(|b| b.executions > 0));
        // Histogram counts exactly the dispatched batches.
        let hist_total: u64 = report.batch_histogram.iter().sum();
        assert_eq!(hist_total, report.batches);
    }

    #[test]
    fn fleet_is_deterministic() {
        let model = fleet_model(0);
        let config = FleetConfig {
            boards: 4,
            epochs: 6,
            ..small_config()
        };
        let a = run_with_model(&model, &config);
        let b = run_with_model(&model, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn drivers_agree_and_event_driver_skips_visits() {
        let model = fleet_model(0);
        let config = small_config();
        let lockstep = run_with_model_driver(&model, &config, SimDriver::Lockstep);
        let (event, kernel) = run_event_with_stats(&model, &config);
        assert_eq!(lockstep, event);
        assert_eq!(kernel.lockstep_visits, config.epochs * config.boards as u64);
        assert!(
            kernel.board_epoch_visits <= kernel.lockstep_visits,
            "event driver visited more board-epochs than lockstep"
        );
        assert!(kernel.active_barriers <= config.epochs);
        assert_eq!(kernel.handler_invocations, kernel.active_barriers);
    }
}

//! Fleet experiment: N independent simulated boards sharing one
//! `npu-serve` inference service.
//!
//! Every board runs its own platform, workload and TOP-IL migration
//! policy, stepped in lockstep. At each 500 ms migration epoch all boards
//! prepare their feature batches ([`topil::MigrationPolicy::prepare`]),
//! submit them to the shared service with a small per-board jitter, and
//! complete the epoch from the batched replies
//! ([`topil::MigrationPolicy::complete`]). The dynamic batcher coalesces
//! the fleet's requests into a few large device calls, amortizing the
//! Kirin 970's ~3.9 ms driver round-trip that dominates solo inference —
//! while per-request quantization groups keep every reply bit-identical
//! to dedicated-device issuance (verified request-by-request during the
//! run).
//!
//! The whole experiment runs in virtual time and is fully deterministic:
//! the same configuration produces byte-identical CSV output.
//!
//! Two drivers execute the run. The **lockstep** reference visits every
//! board at every 500 ms barrier. The **event-driven** driver (the
//! default) hosts the barriers on the `sim-core` kernel: one `Barrier`
//! event per *active* barrier instant carries the set of boards due
//! there, and a board with no running applications is not due again
//! until the barrier covering its next workload arrival — its platform
//! ticks are replayed lazily (in the exact per-tick order of the
//! reference loop) when it is next visited, so QoS and thermal
//! aggregates are bit-identical while idle boards skip the per-barrier
//! coordination entirely. [`FleetKernelStats`] counts the skipped
//! board-epoch visits; the `event_kernel_equivalence` suite asserts
//! report and CSV equality between the drivers.

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use checkpoint::CheckpointStore;
use faults::{FleetFault, FleetSchedule, StormBuilder};
use hikey_platform::{default_placement, Platform, PlatformConfig, SimDriver};
use hmc_types::{SimDuration, SimTime};
use npu::{KernelMode, NpuDevice, NpuModel};
use npu_serve::{NpuService, RequestTicket, ServeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_core::{ComponentId, Kernel, Scheduler};
use topil::dvfs::DvfsControlLoop;
use topil::governor::{DVFS_PERIOD, MIGRATION_PERIOD};
use topil::oracle::Scenario;
use topil::training::{IlTrainer, TrainSettings};
use topil::{ClientReply, IlModel, InferenceBackend, MigrationPolicy, PreparedEpoch};
use trace::TraceEvent;
use workloads::{ArrivalSpec, MixedWorkloadConfig, WorkloadGenerator};

/// Configuration of one fleet run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Simulated boards sharing the service.
    pub boards: usize,
    /// Lockstep 500 ms migration epochs to simulate.
    pub epochs: u64,
    /// NPU devices in the shared pool.
    pub devices: usize,
    /// Maximum requests coalesced into one device call.
    pub max_batch: usize,
    /// Worker threads computing ready batches.
    pub workers: usize,
    /// Master seed (model training and per-board workloads derive from
    /// it).
    pub seed: u64,
    /// Host-thread budget for stepping boards between lockstep barriers.
    /// Boards only interact at migration epochs, so each one is advanced
    /// to the next barrier independently; the report and CSV are
    /// byte-identical at every budget.
    pub budget: par::Budget,
    /// Seeded board churn: boards crash, drain and later rejoin on a
    /// fixed cadence (see [`ChurnSpec`]). `None` runs a stable fleet.
    pub churn: Option<ChurnSpec>,
    /// Numeric inference kernel of the shared service. Both modes are
    /// bit-identical, so the report and CSV do not depend on this; the
    /// kernel CI gate diffs a scalar-forced run against the default to
    /// prove it.
    pub kernel: KernelMode,
    /// Capacity of the service's policy-output cache (0 disables it).
    /// The cache replays numeric outputs for repeated quantized feature
    /// vectors; simulated device time and batching are unaffected.
    pub policy_cache: usize,
}

/// Periodic crash/rejoin churn injected into a fleet run.
///
/// The schedule itself is derived from the fleet seed through the
/// [`faults::StormBuilder`] fleet-fault family, so the same configuration
/// always crashes the same boards at the same epochs. A crashed board's
/// in-flight request is absorbed by its next alive sibling, its running
/// applications are killed (drained at the crash instant), its pending
/// arrivals are rerouted to the sibling, and its policy is checkpointed
/// through the `checkpoint` crate; on rejoin the policy is restored from
/// that checkpoint and the board's deferred platform ticks are replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnSpec {
    /// A crash is drawn every `period` epochs (the first at `period`).
    pub period: u64,
    /// Epochs a crashed board stays down before rejoining.
    pub down: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            boards: 16,
            epochs: 200,
            devices: 2,
            max_batch: 16,
            workers: 4,
            seed: 7,
            budget: par::Budget::serial(),
            churn: None,
            kernel: KernelMode::default(),
            policy_cache: 1024,
        }
    }
}

/// Per-board outcome of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct BoardOutcome {
    /// Board index.
    pub board: usize,
    /// Average die temperature over the run.
    pub avg_temp_c: f64,
    /// Peak die temperature over the run.
    pub peak_temp_c: f64,
    /// Applications that finished with a violated QoS target.
    pub violations: usize,
    /// Applications that finished.
    pub executions: usize,
    /// Migrations the board's policy executed.
    pub migrations: u64,
    /// Epochs that produced no decision (reply missing or rejected).
    pub degraded_epochs: u64,
    /// Epochs served by a CPU fallback path.
    pub fallback_epochs: u64,
    /// Times this board crashed out of the fleet.
    pub crashes: u64,
    /// Epochs this board spent down (crashed, not yet rejoined).
    pub down_epochs: u64,
    /// In-flight sibling requests this board absorbed at a crash barrier.
    pub reassigned: u64,
    /// Pending arrivals rerouted to this board from crashed siblings.
    pub adopted_arrivals: u64,
}

/// Aggregate result of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// The configuration that produced this report.
    pub config: FleetConfig,
    /// Requests admitted by the service.
    pub submitted: u64,
    /// Submissions bounced by admission control (before retry).
    pub rejected_submissions: u64,
    /// Requests served with a reply.
    pub served: u64,
    /// Requests admitted but never served (must be zero after a run).
    pub dropped: u64,
    /// Device calls dispatched.
    pub batches: u64,
    /// Mean requests per device call.
    pub mean_batch_size: f64,
    /// `histogram[n]` = device calls that coalesced `n` requests.
    pub batch_histogram: Vec<u64>,
    /// Median per-request inference latency (submit → completion).
    pub p50: SimDuration,
    /// 95th-percentile per-request inference latency.
    pub p95: SimDuration,
    /// 99th-percentile per-request inference latency.
    pub p99: SimDuration,
    /// Device time the same requests would cost served solo on dedicated
    /// NPUs (one driver round-trip each).
    pub serial_device_time: SimDuration,
    /// Device time the shared pool actually spent.
    pub pool_device_time: SimDuration,
    /// `serial_device_time / pool_device_time` — the batching speedup.
    pub speedup_vs_serial: f64,
    /// Served requests per second of pool device time.
    pub throughput_rps: f64,
    /// Replies that differed from dedicated-device inference (must be
    /// zero: batching is bit-exact).
    pub mismatches: u64,
    /// `QueueSaturated` events the service emitted.
    pub saturation_events: u64,
    /// Policy-cache hits across the run (0 when the cache is disabled).
    pub cache_hits: u64,
    /// Policy-cache misses across the run (0 when the cache is disabled).
    pub cache_misses: u64,
    /// Timed fleet-fault events in the churn schedule (zero without
    /// churn).
    pub churn_events: u64,
    /// In-flight requests absorbed by a sibling at a crash barrier.
    pub reassigned_inflight: u64,
    /// Policies restored from a crash-time checkpoint on rejoin.
    pub checkpoint_restores: u64,
    /// Fraction of board-epochs the fleet was up:
    /// `1 - down_board_epochs / (boards * epochs)`.
    pub availability: f64,
    /// Per-board QoS/thermal outcomes.
    pub boards: Vec<BoardOutcome>,
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fleet: {} boards x {} epochs on {} shared NPU(s), max batch {}",
            self.config.boards, self.config.epochs, self.config.devices, self.config.max_batch
        )?;
        writeln!(
            f,
            "  requests: {} served / {} submitted ({} rejected submissions, {} dropped)",
            self.served, self.submitted, self.rejected_submissions, self.dropped
        )?;
        writeln!(
            f,
            "  batches:  {} (mean size {:.2}), latency p50/p95/p99 = {} / {} / {}",
            self.batches, self.mean_batch_size, self.p50, self.p95, self.p99
        )?;
        writeln!(
            f,
            "  device time: {} pooled vs {} serial -> {:.2}x speedup, {:.1} req/s, {} mismatches",
            self.pool_device_time,
            self.serial_device_time,
            self.speedup_vs_serial,
            self.throughput_rps,
            self.mismatches
        )?;
        if self.cache_hits + self.cache_misses > 0 {
            writeln!(
                f,
                "  policy cache: {} hits / {} probes ({:.1}% hit rate)",
                self.cache_hits,
                self.cache_hits + self.cache_misses,
                100.0 * self.cache_hits as f64 / (self.cache_hits + self.cache_misses) as f64
            )?;
        }
        writeln!(f, "  batch-size histogram:")?;
        for (n, &count) in self.batch_histogram.iter().enumerate() {
            if count > 0 {
                writeln!(f, "    {n:>3} requests: {count}")?;
            }
        }
        if self.churn_events > 0 {
            let crashes: u64 = self.boards.iter().map(|b| b.crashes).sum();
            writeln!(
                f,
                "  churn: {} crashes, availability {:.4}, {} in-flight reassigned, {} checkpoint restores",
                crashes, self.availability, self.reassigned_inflight, self.checkpoint_restores
            )?;
        }
        let violations: usize = self.boards.iter().map(|b| b.violations).sum();
        let executions: usize = self.boards.iter().map(|b| b.executions).sum();
        let degraded: u64 = self.boards.iter().map(|b| b.degraded_epochs).sum();
        writeln!(
            f,
            "  boards: {}/{} QoS violations, {} degraded epochs",
            violations, executions, degraded
        )
    }
}

/// One simulated board: platform, pending arrivals, policy and DVFS loop.
struct Board {
    platform: Platform,
    policy: MigrationPolicy,
    dvfs: DvfsControlLoop,
    arrivals: Vec<ArrivalSpec>,
    next_arrival: usize,
    dvfs_skip: u8,
    /// Submission offset within the epoch, staggering the fleet's
    /// requests across the batching window.
    jitter: SimDuration,
    migrations: u64,
    degraded_epochs: u64,
    fallback_epochs: u64,
    /// False while the board is crashed out of the fleet. Dead boards
    /// take no barriers; their platform ticks replay on rejoin (or at the
    /// final catch-up), exactly like dormant idle boards.
    alive: bool,
    crashes: u64,
    reassigned: u64,
    adopted_arrivals: u64,
}

/// Trains the small IL model the fleet deploys on every board.
pub fn fleet_model(seed: u64) -> IlModel {
    let settings = TrainSettings {
        nn: nn::TrainConfig {
            max_epochs: 60,
            patience: 12,
            ..nn::TrainConfig::default()
        },
        ..TrainSettings::default()
    };
    IlTrainer::new(settings).train(&Scenario::standard_set(8, 0xF1EE7), seed)
}

/// Trains a model and runs the fleet.
pub fn run(config: &FleetConfig) -> FleetReport {
    run_with_model(&fleet_model(config.seed), config)
}

/// As [`run`], on an explicitly chosen driver (`experiments fleet
/// --driver ...`).
pub fn run_driver(config: &FleetConfig, driver: SimDriver) -> FleetReport {
    run_with_model_driver(&fleet_model(config.seed), config, driver)
}

/// Kernel-side counters of one event-driven fleet run: how much
/// per-barrier coordination the virtual-time skipping avoided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetKernelStats {
    /// Board-barrier visits the event driver actually performed.
    pub board_epoch_visits: u64,
    /// Barrier instants that had at least one board due (each is one
    /// kernel event / handler invocation).
    pub active_barriers: u64,
    /// Visits the lockstep reference performs unconditionally
    /// (`epochs * boards`).
    pub lockstep_visits: u64,
    /// Kernel handler invocations over the run.
    pub handler_invocations: u64,
    /// Events pushed onto the kernel queue over the run.
    pub events_scheduled: u64,
}

impl FleetKernelStats {
    /// `lockstep_visits / board_epoch_visits` — how many times fewer
    /// board-barrier visits the event driver performed.
    pub fn visit_reduction(&self) -> f64 {
        if self.board_epoch_visits > 0 {
            self.lockstep_visits as f64 / self.board_epoch_visits as f64
        } else {
            f64::INFINITY
        }
    }
}

/// Runs the fleet with an already-trained model on the default driver
/// ([`SimDriver::EventDriven`]).
///
/// # Panics
///
/// Panics on a zero board or epoch count.
pub fn run_with_model(model: &IlModel, config: &FleetConfig) -> FleetReport {
    run_with_model_driver(model, config, SimDriver::default())
}

/// Runs the fleet on an explicitly chosen driver. Both drivers produce
/// identical [`FleetReport`]s (and therefore byte-identical CSV).
///
/// # Panics
///
/// Panics on a zero board or epoch count.
pub fn run_with_model_driver(
    model: &IlModel,
    config: &FleetConfig,
    driver: SimDriver,
) -> FleetReport {
    match driver {
        SimDriver::Lockstep => run_lockstep_with_model(model, config),
        SimDriver::EventDriven => run_event_with_stats(model, config).0,
    }
}

/// The shared-service configuration derived from a fleet config.
fn serve_config(config: &FleetConfig) -> ServeConfig {
    ServeConfig {
        devices: config.devices,
        workers: config.workers,
        max_batch: config.max_batch,
        // Admit at least one pending request per board so a full fleet
        // wave is never bounced.
        queue_capacity: config.boards.max(ServeConfig::default().queue_capacity),
        kernel: config.kernel,
        policy_cache: config.policy_cache,
        ..ServeConfig::default()
    }
}

/// Builds the per-board platforms, policies and workloads.
fn make_boards(model: &IlModel, config: &FleetConfig, serve: &ServeConfig) -> Vec<Board> {
    (0..config.boards)
        .map(|i| {
            let workload_cfg = MixedWorkloadConfig {
                num_apps: 4,
                mean_interarrival: SimDuration::from_secs(8),
                total_instructions: Some(12_000_000_000),
                ..MixedWorkloadConfig::default()
            };
            let seed = config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64);
            let workload =
                WorkloadGenerator::mixed(&workload_cfg, &mut StdRng::seed_from_u64(seed));
            Board {
                platform: Platform::new(PlatformConfig::default()),
                policy: MigrationPolicy::new(model.clone()),
                dvfs: DvfsControlLoop::new(),
                arrivals: workload.iter().copied().collect(),
                next_arrival: 0,
                dvfs_skip: 0,
                jitter: SimDuration::from_nanos(
                    (i as u64).wrapping_mul(997_000) % serve.max_wait.as_nanos(),
                ),
                migrations: 0,
                degraded_epochs: 0,
                fallback_epochs: 0,
                alive: true,
                crashes: 0,
                reassigned: 0,
                adopted_arrivals: 0,
            }
        })
        .collect()
}

/// Uniquifies checkpoint directories across runs within one process.
static CHURN_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Runtime state of an active churn schedule.
struct ChurnState {
    schedule: FleetSchedule,
    /// Per-board checkpoint stores live under here; removed at finalize.
    base_dir: PathBuf,
    restores: u64,
}

/// Derives the seeded crash/rejoin schedule from the fleet config.
fn churn_state(config: &FleetConfig) -> Option<ChurnState> {
    let spec = config.churn?;
    let schedule = StormBuilder::new(config.seed, config.boards, config.epochs)
        .churn(spec.period, spec.down)
        .build();
    let base_dir = std::env::temp_dir().join(format!(
        "topil-fleet-churn-{}-{}",
        std::process::id(),
        CHURN_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    Some(ChurnState {
        schedule,
        base_dir,
        restores: 0,
    })
}

/// Serializes a board policy's model for the crash-time checkpoint.
fn policy_snapshot(policy: &MigrationPolicy) -> Vec<u8> {
    let model = policy.model();
    let mut bytes = Vec::new();
    nn::persist::write_standardizer(model.standardizer(), &mut bytes)
        .expect("serialize standardizer");
    nn::persist::write_mlp(model.mlp(), &mut bytes).expect("serialize mlp");
    bytes
}

/// Rebuilds a board policy from a checkpoint payload.
fn restore_policy(bytes: &[u8]) -> MigrationPolicy {
    let mut reader = bytes;
    let standardizer = nn::persist::read_standardizer(&mut reader).expect("restore standardizer");
    let mlp = nn::persist::read_mlp(&mut reader).expect("restore mlp");
    MigrationPolicy::new(IlModel::new(mlp, standardizer))
}

/// First alive board in the cyclic scan after `board` — the schedule's
/// min-alive guarantee ensures one exists at every crash epoch.
fn sibling_of(schedule: &FleetSchedule, epoch: u64, board: usize) -> usize {
    let boards = schedule.boards();
    (1..boards)
        .map(|step| (board + step) % boards)
        .find(|&j| schedule.alive(j, epoch))
        .expect("storm schedule keeps at least one board alive")
}

/// Boards crashing at `epoch`, each paired with the sibling absorbing
/// its in-flight request and rerouted arrivals.
fn crashes_at(schedule: &FleetSchedule, epoch: u64) -> Vec<(usize, usize)> {
    schedule
        .events_at(epoch)
        .filter_map(|event| match event.fault {
            FleetFault::BoardCrash { board } => Some((board, sibling_of(schedule, epoch, board))),
            _ => None,
        })
        .collect()
}

/// The rejoin epoch of the down span starting at `epoch` (clamped to the
/// run length for spans that never close).
fn rejoin_epoch(schedule: &FleetSchedule, board: usize, epoch: u64) -> u64 {
    schedule
        .down_spans(board)
        .into_iter()
        .find(|&(from, _)| from == epoch)
        .map(|(_, until)| until.min(schedule.epochs()))
        .unwrap_or(schedule.epochs())
}

/// Brings every board rejoining at `epoch` back: replays its deferred
/// platform ticks up to the barrier and restores its policy from the
/// crash-time checkpoint (a fresh store open, exactly like a process
/// restart would).
fn apply_rejoins(boards: &mut [Board], churn: &mut ChurnState, epoch: u64, now: SimTime) {
    let rejoining: Vec<usize> = churn
        .schedule
        .events_at(epoch)
        .filter_map(|event| match event.fault {
            FleetFault::BoardRejoin { board } => Some(board),
            _ => None,
        })
        .collect();
    for i in rejoining {
        let board = &mut boards[i];
        debug_assert!(!board.alive, "rejoin of a board that never crashed");
        catch_up(board, now);
        let mut store =
            CheckpointStore::open(churn.base_dir.join(format!("board-{i}")), "fleet-policy", 2)
                .expect("reopen checkpoint store");
        let recovery = store.load_latest().expect("load policy checkpoint");
        let snapshot = recovery
            .snapshot
            .expect("crashed board saved a policy checkpoint");
        board.policy = restore_policy(&snapshot.payload);
        board.alive = true;
        churn.restores += 1;
    }
}

/// Executes the crash half of a barrier, after the epoch's replies were
/// redeemed: checkpoints each dying board's policy, kills its running
/// applications (outcomes recorded at the crash instant), reroutes the
/// arrivals landing inside its down window to the sibling and marks it
/// dead. Deterministic: the order is the schedule's event order.
fn execute_crashes(
    boards: &mut [Board],
    churn: &mut ChurnState,
    crashes: &[(usize, usize)],
    epoch: u64,
) {
    for &(i, sibling) in crashes {
        let bytes = policy_snapshot(&boards[i].policy);
        let mut store =
            CheckpointStore::open(churn.base_dir.join(format!("board-{i}")), "fleet-policy", 2)
                .expect("open checkpoint store");
        store
            .save(&bytes, churn.schedule.seed())
            .expect("save policy checkpoint");

        let rejoin = rejoin_epoch(&churn.schedule, i, epoch);
        let rejoin_time = SimTime::ZERO + MIGRATION_PERIOD * rejoin;
        let dying = &mut boards[i];
        let ids: Vec<_> = dying.platform.snapshots().iter().map(|s| s.id).collect();
        for id in ids {
            dying.platform.kill(id);
        }
        let mut moved = Vec::new();
        while dying
            .arrivals
            .get(dying.next_arrival)
            .is_some_and(|spec| spec.at < rejoin_time)
        {
            moved.push(dying.arrivals.remove(dying.next_arrival));
        }
        dying.alive = false;
        dying.crashes += 1;

        let sib = &mut boards[sibling];
        for spec in moved {
            let pos = sib.arrivals[sib.next_arrival..].partition_point(|a| a.at <= spec.at)
                + sib.next_arrival;
            sib.arrivals.insert(pos, spec);
            sib.adopted_arrivals += 1;
        }
    }
}

/// The fixed-barrier reference loop: every board visited at every
/// barrier. The event-driven driver is proven equivalent to this
/// implementation; keep the two in sync.
fn run_lockstep_with_model(model: &IlModel, config: &FleetConfig) -> FleetReport {
    assert!(config.boards > 0, "need at least one board");
    assert!(config.epochs > 0, "need at least one epoch");
    let serve = serve_config(config);
    let mut service = NpuService::new(model.mlp(), serve);
    // Reference for the serial baseline and the bit-identity check: one
    // dedicated device per board, each request served alone.
    let dedicated = NpuModel::compile(model.mlp());
    let device = NpuDevice::kirin970();
    let mut boards = make_boards(model, config, &serve);
    let mut churn = churn_state(config);

    let end = SimTime::ZERO + MIGRATION_PERIOD * config.epochs;
    let mut serial_device_time = SimDuration::ZERO;
    let mut mismatches = 0u64;

    // Boards only interact at migration barriers, so the run alternates
    // between a serial barrier (admissions due at the barrier instant,
    // then the shared-service epoch) and a parallel stretch where every
    // board is stepped to the next barrier independently. Each board sees
    // the exact per-tick operation order of the serial loop — admit(t),
    // DVFS(t), tick — so the outcome is bit-identical at every budget.
    let mut now = SimTime::ZERO;
    let mut epoch = 0u64;
    while now < end {
        // Barrier order: rejoins first (so a returning board takes this
        // epoch), then admissions, then the shared-service epoch (a board
        // crashing *this* barrier still submits — its reply is absorbed by
        // the sibling), then the crash drain, then the parallel stretch.
        let crashes = match &mut churn {
            Some(state) => {
                apply_rejoins(&mut boards, state, epoch, now);
                crashes_at(&state.schedule, epoch)
            }
            None => Vec::new(),
        };
        debug_assert!(
            boards.iter().all(|b| !b.alive || b.platform.now() == now),
            "boards left lockstep"
        );
        par::par_for_each_mut(&config.budget, &mut boards, |_, board| {
            if board.alive {
                admit_due(board, now);
            }
        });
        let candidates: Vec<usize> = (0..config.boards).filter(|&i| boards[i].alive).collect();
        fleet_epoch(
            &mut boards,
            &candidates,
            &mut service,
            &dedicated,
            &device,
            now,
            &mut serial_device_time,
            &mut mismatches,
            &crashes,
            &config.budget,
        );
        if let Some(state) = &mut churn {
            execute_crashes(&mut boards, state, &crashes, epoch);
        }
        let next_barrier = now + MIGRATION_PERIOD;
        par::par_for_each_mut(&config.budget, &mut boards, |_, board| {
            if board.alive {
                step_to_barrier(board, now, next_barrier);
            }
        });
        now = next_barrier;
        epoch += 1;
    }
    // Boards dead at the end still owe their deferred cooling ticks.
    par::par_for_each_mut(&config.budget, &mut boards, |_, board| {
        catch_up(board, end);
    });
    finalize(
        config,
        boards,
        service,
        end,
        serial_device_time,
        mismatches,
        churn,
    )
}

/// Flushes the service at `end` and assembles the report — shared by
/// both drivers (boards must already be stepped to `end`).
fn finalize(
    config: &FleetConfig,
    boards: Vec<Board>,
    mut service: NpuService,
    end: SimTime,
    serial_device_time: SimDuration,
    mismatches: u64,
    churn: Option<ChurnState>,
) -> FleetReport {
    // Churn aggregates come from the pure schedule (identical in both
    // drivers); the checkpoint directory is gone after this.
    let (churn_events, checkpoint_restores, down_by_board) = match &churn {
        Some(state) => {
            let down: Vec<u64> = (0..config.boards)
                .map(|i| {
                    state
                        .schedule
                        .down_spans(i)
                        .into_iter()
                        .map(|(from, until)| until.min(config.epochs) - from)
                        .sum()
                })
                .collect();
            (state.schedule.events().len() as u64, state.restores, down)
        }
        None => (0, 0, vec![0; config.boards]),
    };
    if let Some(state) = &churn {
        let _ = std::fs::remove_dir_all(&state.base_dir);
    }
    let down_total: u64 = down_by_board.iter().sum();
    let availability = 1.0 - down_total as f64 / (config.boards as u64 * config.epochs) as f64;

    let mut saturation_events = 0u64;
    service.flush(end);
    for event in service.drain_events() {
        if matches!(event, TraceEvent::QueueSaturated { .. }) {
            saturation_events += 1;
        }
    }

    let stats = service.stats().clone();
    let pool_device_time: SimDuration = service.device_busy_times().into_iter().sum();
    let pool_secs = pool_device_time.as_secs_f64();
    let serial_secs = serial_device_time.as_secs_f64();
    let outcomes: Vec<BoardOutcome> = boards
        .into_iter()
        .enumerate()
        .map(|(i, board)| {
            let (metrics, _) = board.platform.finish();
            BoardOutcome {
                board: i,
                avg_temp_c: metrics.avg_temperature().value(),
                peak_temp_c: metrics.peak_temperature().value(),
                violations: metrics.qos_violations(),
                executions: metrics.outcomes().len(),
                migrations: board.migrations,
                degraded_epochs: board.degraded_epochs,
                fallback_epochs: board.fallback_epochs,
                crashes: board.crashes,
                down_epochs: down_by_board[i],
                reassigned: board.reassigned,
                adopted_arrivals: board.adopted_arrivals,
            }
        })
        .collect();
    let reassigned_inflight: u64 = outcomes.iter().map(|b| b.reassigned).sum();
    FleetReport {
        config: *config,
        submitted: stats.submitted,
        rejected_submissions: stats.rejected,
        served: stats.served,
        dropped: stats.dropped(),
        batches: stats.batches,
        mean_batch_size: stats.mean_batch_size(),
        batch_histogram: stats.batch_histogram().to_vec(),
        p50: stats.latency_percentile(0.50).unwrap_or(SimDuration::ZERO),
        p95: stats.latency_percentile(0.95).unwrap_or(SimDuration::ZERO),
        p99: stats.latency_percentile(0.99).unwrap_or(SimDuration::ZERO),
        serial_device_time,
        pool_device_time,
        speedup_vs_serial: if pool_secs > 0.0 {
            serial_secs / pool_secs
        } else {
            0.0
        },
        throughput_rps: if pool_secs > 0.0 {
            stats.served as f64 / pool_secs
        } else {
            0.0
        },
        mismatches,
        saturation_events,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        churn_events,
        reassigned_inflight,
        checkpoint_restores,
        availability,
        boards: outcomes,
    }
}

/// Shared state of the event-driven driver.
struct FleetState {
    boards: Vec<Board>,
    service: NpuService,
    dedicated: NpuModel,
    device: NpuDevice,
    serial_device_time: SimDuration,
    mismatches: u64,
    /// Barrier instant -> boards due there (each key has exactly one
    /// scheduled `Barrier` event). A board may be marked more than once
    /// at one instant (e.g. a pre-marked churn barrier plus its regular
    /// arming); the handler dedups.
    due: BTreeMap<SimTime, Vec<usize>>,
    visits: u64,
    active_barriers: u64,
    churn: Option<ChurnState>,
}

/// The single fleet event kind: a barrier instant with boards due.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BarrierDue;

/// Marks board `i` due at `at`, scheduling the barrier's kernel event
/// if `at` is a new barrier instant.
fn mark_due(
    due: &mut BTreeMap<SimTime, Vec<usize>>,
    sched: &mut Scheduler<BarrierDue>,
    barrier: ComponentId,
    at: SimTime,
    i: usize,
) {
    let boards = due.entry(at).or_insert_with(|| {
        sched.schedule(at, barrier, 0, BarrierDue);
        Vec::new()
    });
    boards.push(i);
}

/// The barrier at or after a board's next arrival — the earliest one
/// where it can have a running application again.
fn next_due_barrier(board: &Board, after: SimTime) -> Option<SimTime> {
    let at = board.arrivals.get(board.next_arrival)?.at;
    let period = MIGRATION_PERIOD.as_nanos();
    let aligned = SimTime::from_nanos(at.as_nanos().div_ceil(period) * period);
    Some(aligned.max(after))
}

/// Replays one board's platform ticks from wherever it last stopped up
/// to `to`, in the reference loop's exact per-tick order. Admissions at
/// the board's resume instant were already performed when it was last
/// visited, which is precisely `step_to_barrier`'s contract.
fn catch_up(board: &mut Board, to: SimTime) {
    let resumed_at = board.platform.now();
    step_to_barrier(board, resumed_at, to);
}

/// The event-driven driver, returning the report plus kernel counters.
/// Equivalent to [`run_with_model_driver`] with [`SimDriver::Lockstep`]
/// — same report, byte-identical CSV — while visiting each board only
/// at barriers where it can have work.
///
/// # Panics
///
/// Panics on a zero board or epoch count.
pub fn run_event_with_stats(
    model: &IlModel,
    config: &FleetConfig,
) -> (FleetReport, FleetKernelStats) {
    assert!(config.boards > 0, "need at least one board");
    assert!(config.epochs > 0, "need at least one epoch");
    let serve = serve_config(config);
    let end = SimTime::ZERO + MIGRATION_PERIOD * config.epochs;
    let mut state = FleetState {
        boards: make_boards(model, config, &serve),
        service: NpuService::new(model.mlp(), serve),
        dedicated: NpuModel::compile(model.mlp()),
        device: NpuDevice::kirin970(),
        serial_device_time: SimDuration::ZERO,
        mismatches: 0,
        due: BTreeMap::new(),
        visits: 0,
        active_barriers: 0,
        churn: churn_state(config),
    };

    let cfg = *config;
    let mut kernel: Kernel<BarrierDue, FleetState> = Kernel::new(config.seed);
    let barrier = kernel.register(
        "fleet-barrier",
        move |state: &mut FleetState, sched, event| {
            let now = event.time;
            let epoch = now.as_nanos() / MIGRATION_PERIOD.as_nanos();
            let mut due = state
                .due
                .remove(&now)
                .expect("barrier event without due boards");
            due.sort_unstable();
            due.dedup();
            state.visits += due.len() as u64;
            state.active_barriers += 1;

            // Mirror the reference barrier order: rejoins first, then
            // admissions, the epoch, the crash drain, and re-arming.
            let crashes = match &mut state.churn {
                Some(churn) => {
                    apply_rejoins(&mut state.boards, churn, epoch, now);
                    crashes_at(&churn.schedule, epoch)
                }
                None => Vec::new(),
            };

            // Replay deferred ticks up to the barrier and admit due
            // arrivals — board-local, so the stretch runs under the thread
            // budget exactly like the reference loop's parallel phases.
            // Dead boards stay frozen (a board armed before its crash can
            // still be in the due set).
            let due_ref = &due;
            par::par_for_each_mut(&cfg.budget, &mut state.boards, |i, board| {
                if board.alive && due_ref.binary_search(&i).is_ok() {
                    catch_up(board, now);
                    admit_due(board, now);
                }
            });

            // Boards not due here provably have no running applications, so
            // the epoch over the due set equals the reference epoch over
            // all boards (whose first step filters on `app_count > 0`).
            // Dead boards in the due set have no applications either —
            // their crash killed them — so the same filter drops them.
            fleet_epoch(
                &mut state.boards,
                due_ref,
                &mut state.service,
                &state.dedicated,
                &state.device,
                now,
                &mut state.serial_device_time,
                &mut state.mismatches,
                &crashes,
                &cfg.budget,
            );

            if let Some(churn) = &mut state.churn {
                execute_crashes(&mut state.boards, churn, &crashes, epoch);
                // Wake each sibling at the barrier covering its adopted
                // arrivals. Extra markings are harmless: duplicates at one
                // instant collapse in the handler's dedup, and a visit
                // never changes epoch participation (that is decided by
                // `app_count > 0`, exactly as in the reference loop).
                for &(_, sibling) in &crashes {
                    if let Some(at) =
                        next_due_barrier(&state.boards[sibling], now + MIGRATION_PERIOD)
                    {
                        if at < end {
                            mark_due(&mut state.due, sched, event.dst, at, sibling);
                        }
                    }
                }
            }

            // Re-arm: busy boards are due at the next barrier; idle boards
            // sleep until the barrier covering their next arrival. Boards
            // that crashed this barrier are pre-marked at their rejoin.
            for i in due {
                let board = &state.boards[i];
                if !board.alive {
                    continue;
                }
                let next = if board.platform.app_count() > 0 {
                    Some(now + MIGRATION_PERIOD)
                } else {
                    next_due_barrier(board, now + MIGRATION_PERIOD)
                };
                match next {
                    Some(at) if at < end => mark_due(&mut state.due, sched, event.dst, at, i),
                    _ => {} // dormant until the final catch-up
                }
            }
        },
    );

    for i in 0..state.boards.len() {
        if let Some(at) = next_due_barrier(&state.boards[i], SimTime::ZERO) {
            if at < end {
                mark_due(&mut state.due, kernel.scheduler(), barrier, at, i);
            }
        }
    }
    // Churn barriers are known upfront (the schedule is pure data): every
    // crash and rejoin instant is a barrier the affected board must take,
    // even if it would otherwise be dormant there.
    let churn_marks: Vec<(SimTime, usize)> = match &state.churn {
        Some(churn) => churn
            .schedule
            .events()
            .iter()
            .filter_map(|event| match event.fault {
                FleetFault::BoardCrash { board } | FleetFault::BoardRejoin { board } => {
                    Some((SimTime::ZERO + MIGRATION_PERIOD * event.epoch, board))
                }
                _ => None,
            })
            .filter(|&(at, _)| at < end)
            .collect(),
        None => Vec::new(),
    };
    for (at, i) in churn_marks {
        mark_due(&mut state.due, kernel.scheduler(), barrier, at, i);
    }
    kernel.run_to_idle(&mut state);

    // Every board still owes its deferred ticks up to `end`.
    par::par_for_each_mut(&cfg.budget, &mut state.boards, |_, board| {
        catch_up(board, end);
    });

    let kernel_stats = FleetKernelStats {
        board_epoch_visits: state.visits,
        active_barriers: state.active_barriers,
        lockstep_visits: config.epochs * config.boards as u64,
        handler_invocations: kernel.stats().handler_invocations,
        events_scheduled: kernel.scheduler().queue_stats().scheduled,
    };
    let report = finalize(
        config,
        state.boards,
        state.service,
        end,
        state.serial_device_time,
        state.mismatches,
        state.churn,
    );
    (report, kernel_stats)
}

/// Admits every arrival due at or before `now` on one board.
fn admit_due(board: &mut Board, now: SimTime) {
    while let Some(spec) = board.arrivals.get(board.next_arrival) {
        if spec.at > now {
            break;
        }
        let core = default_placement(&board.platform);
        board.platform.admit(spec, core);
        board.next_arrival += 1;
    }
}

/// Steps one board from the `barrier` instant up to (exclusive)
/// `next_barrier`, replaying the serial loop's per-tick order: admissions
/// (already done at the barrier itself), then DVFS, then the platform
/// tick.
fn step_to_barrier(board: &mut Board, barrier: SimTime, next_barrier: SimTime) {
    loop {
        let t = board.platform.now();
        if t >= next_barrier {
            break;
        }
        if t != barrier {
            admit_due(board, t);
        }
        if t.is_multiple_of(DVFS_PERIOD) {
            if board.dvfs_skip > 0 {
                board.dvfs_skip -= 1;
            } else {
                // `run` charges its own CPU cost to the platform.
                let _ = board.dvfs.run(&mut board.platform);
            }
        }
        board.platform.tick();
    }
}

/// One migration epoch over `candidates`: prepare on every candidate
/// board with running applications, submit jittered, flush, complete
/// from the batched replies. The lockstep driver passes every board;
/// the event driver passes only the boards due at this barrier (the
/// rest have no running applications, so the filter below would drop
/// them anyway).
///
/// `reassigned` lists `(dying, sibling)` pairs for boards crashing at
/// this barrier: the dying board's reply is still redeemed (conserving
/// the request and keeping the bit-identity check) but its decision
/// lands nowhere — the sibling absorbs it.
#[allow(clippy::too_many_arguments)]
fn fleet_epoch(
    boards: &mut [Board],
    candidates: &[usize],
    service: &mut NpuService,
    dedicated: &NpuModel,
    device: &NpuDevice,
    now: SimTime,
    serial_device_time: &mut SimDuration,
    mismatches: &mut u64,
    reassigned: &[(usize, usize)],
    budget: &par::Budget,
) {
    // Boards submit in jitter order — the arrival interleaving the shared
    // service actually sees.
    let mut order: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&i| boards[i].platform.app_count() > 0)
        .collect();
    order.sort_by_key(|&i| (boards[i].jitter, i));

    let mut pending: Vec<(usize, PreparedEpoch, Option<RequestTicket>)> = Vec::new();
    for i in order {
        let board = &mut boards[i];
        let Some(prepared) = board.policy.prepare(&board.platform) else {
            continue;
        };
        *serial_device_time += device.inference_latency(dedicated, prepared.batch().rows());
        let mut at = now + board.jitter;
        let mut ticket = None;
        for _ in 0..=service.config().retry.max_attempts {
            match service.submit(prepared.batch(), at) {
                Ok(t) => {
                    ticket = Some(t);
                    break;
                }
                Err(rejected) => at += rejected.retry_after,
            }
        }
        pending.push((i, prepared, ticket));
    }
    // Everything this epoch submitted is served before the next one.
    service.flush(now + MIGRATION_PERIOD);

    // Collect replies serially (the service is shared mutable state) …
    let completed: Vec<(usize, PreparedEpoch, ClientReply)> = pending
        .into_iter()
        .map(|(i, prepared, ticket)| {
            let reply = match ticket.and_then(|t| service.take_reply(t)) {
                Some(reply) => reply,
                // Admission control bounced every retry: the epoch
                // degrades.
                None => ClientReply {
                    output: None,
                    latency: SimDuration::ZERO,
                    cpu_time: SimDuration::ZERO,
                    backend: InferenceBackend::Npu,
                    npu_failures: 0,
                    fallback_active: false,
                    jobs: Vec::new(),
                    breaker_opened: false,
                },
            };
            (i, prepared, reply)
        })
        .collect();
    // … then run the dedicated-device bit-identity checks in parallel:
    // each is a pure re-inference of one board's batch, and the flags are
    // folded in submission order.
    let mismatch_flags = par::par_map(budget, &completed, |_, (_, prepared, reply)| {
        reply
            .output
            .as_ref()
            .is_some_and(|output| *output != dedicated.infer(prepared.batch()))
    });
    *mismatches += mismatch_flags.iter().filter(|&&m| m).count() as u64;

    for (i, prepared, reply) in completed {
        if let Some(&(_, sibling)) = reassigned.iter().find(|&&(dying, _)| dying == i) {
            // The board dies at this barrier; its in-flight reply was
            // redeemed above but completes nowhere.
            let _ = (prepared, reply);
            boards[sibling].reassigned += 1;
            continue;
        }
        let board = &mut boards[i];
        let outcome = board.policy.complete(&mut board.platform, &prepared, reply);
        if outcome.migrated.is_some() {
            board.migrations += 1;
        }
        if outcome.deadline_missed {
            board.degraded_epochs += 1;
        } else {
            // Mirror the governor: skip two DVFS iterations around a
            // completed migration epoch.
            board.dvfs_skip = 2;
        }
        if outcome.fallback_active {
            board.fallback_epochs += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FleetConfig {
        FleetConfig {
            boards: 6,
            epochs: 12,
            devices: 2,
            max_batch: 8,
            workers: 2,
            seed: 3,
            budget: par::Budget::serial(),
            ..FleetConfig::default()
        }
    }

    fn churn_config() -> FleetConfig {
        // Long outages relative to the 8 s mean interarrival, so crashes
        // reliably catch both in-flight requests and future arrivals.
        FleetConfig {
            boards: 6,
            epochs: 24,
            churn: Some(ChurnSpec { period: 3, down: 8 }),
            ..small_config()
        }
    }

    #[test]
    fn fleet_serves_every_request_and_beats_serial() {
        let model = fleet_model(0);
        let report = run_with_model(&model, &small_config());
        assert!(report.submitted > 0, "boards must issue requests");
        assert_eq!(report.dropped, 0);
        assert_eq!(report.mismatches, 0, "batching must be bit-exact");
        assert!(
            report.speedup_vs_serial >= 3.0,
            "batched speedup {:.2}x below 3x",
            report.speedup_vs_serial
        );
        assert!(report.mean_batch_size > 1.5, "requests must coalesce");
        assert_eq!(report.boards.len(), 6);
        assert!(report.boards.iter().any(|b| b.executions > 0));
        // Histogram counts exactly the dispatched batches.
        let hist_total: u64 = report.batch_histogram.iter().sum();
        assert_eq!(hist_total, report.batches);
    }

    #[test]
    fn fleet_is_deterministic() {
        let model = fleet_model(0);
        let config = FleetConfig {
            boards: 4,
            epochs: 6,
            ..small_config()
        };
        let a = run_with_model(&model, &config);
        let b = run_with_model(&model, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn drivers_agree_and_event_driver_skips_visits() {
        let model = fleet_model(0);
        let config = small_config();
        let lockstep = run_with_model_driver(&model, &config, SimDriver::Lockstep);
        let (event, kernel) = run_event_with_stats(&model, &config);
        assert_eq!(lockstep, event);
        assert_eq!(kernel.lockstep_visits, config.epochs * config.boards as u64);
        assert!(
            kernel.board_epoch_visits <= kernel.lockstep_visits,
            "event driver visited more board-epochs than lockstep"
        );
        assert!(kernel.active_barriers <= config.epochs);
        assert_eq!(kernel.handler_invocations, kernel.active_barriers);
    }

    #[test]
    fn churn_crashes_drain_and_rejoin_through_checkpoints() {
        let model = fleet_model(0);
        let report = run_with_model(&model, &churn_config());
        assert!(report.churn_events > 0, "churn must schedule events");
        let crashes: u64 = report.boards.iter().map(|b| b.crashes).sum();
        assert!(crashes > 0, "churn must crash at least one board");
        assert!(
            report.availability < 1.0,
            "crashed boards must cost availability"
        );
        assert!(
            report.checkpoint_restores > 0,
            "a rejoining board must restore its policy from a checkpoint"
        );
        assert!(
            report.reassigned_inflight > 0,
            "a crashing board's in-flight request must move to a sibling"
        );
        // Request conservation survives the crashes: nothing admitted is
        // lost, and batching stays bit-exact.
        assert_eq!(report.dropped, 0);
        assert_eq!(report.mismatches, 0);
        // Down spans are bounded by the configured outage length (a crash
        // near the end is clamped to the run).
        let down: u64 = report.boards.iter().map(|b| b.down_epochs).sum();
        let window = churn_config().churn.unwrap().down;
        assert!(down >= crashes, "every crash costs at least one epoch");
        assert!(
            down <= crashes * window,
            "no crash is down beyond its window"
        );
    }

    #[test]
    fn churn_drivers_agree_at_every_thread_budget() {
        let model = fleet_model(0);
        let config = churn_config();
        let lockstep = run_with_model_driver(&model, &config, SimDriver::Lockstep);
        let (event, _) = run_event_with_stats(&model, &config);
        assert_eq!(lockstep, event, "drivers must agree under churn");
        let threaded_cfg = FleetConfig {
            budget: par::Budget::with_threads(4),
            ..config
        };
        let mut threaded = run_with_model_driver(&model, &threaded_cfg, SimDriver::Lockstep);
        threaded.config = config;
        assert_eq!(threaded, lockstep, "churn must be budget-invariant");
    }

    #[test]
    fn rerouted_arrivals_land_on_the_sibling() {
        let model = fleet_model(0);
        let report = run_with_model(&model, &churn_config());
        let adopted: u64 = report.boards.iter().map(|b| b.adopted_arrivals).sum();
        let stable = run_with_model(
            &model,
            &FleetConfig {
                churn: None,
                ..churn_config()
            },
        );
        // The churn run admits work on siblings that the stable run ran
        // on the crashed boards; total executions stay comparable because
        // nothing is silently dropped (killed apps record outcomes too).
        let churn_execs: usize = report.boards.iter().map(|b| b.executions).sum();
        let stable_execs: usize = stable.boards.iter().map(|b| b.executions).sum();
        assert!(adopted > 0, "a crash inside the run must reroute arrivals");
        assert!(
            churn_execs >= stable_execs / 2,
            "churn must not silently lose most executions ({churn_execs} vs {stable_execs})"
        );
    }
}

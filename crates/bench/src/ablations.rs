//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! * **α (Eq. 4)** — label sharpness: the trade-off between tolerating
//!   slightly hotter mappings and noise susceptibility,
//! * **migration epoch length** — 250/500/1000 ms,
//! * **DVFS skip-after-migration** — 0 vs. 2 skipped iterations,
//! * **migration hysteresis threshold** — 0 / 0.1 / 0.3.

use std::fmt;

use hikey_platform::{SimConfig, Simulator};
use hmc_types::SimDuration;
use rand::rngs::StdRng;
use rand::SeedableRng;
use topil::eval::evaluate_model;
use topil::oracle::{ExtractionConfig, Scenario, SourcePolicy};
use topil::training::{IlTrainer, TrainSettings};
use topil::TopIlGovernor;
use workloads::{MixedWorkloadConfig, WorkloadGenerator};

use crate::harness::Effort;
use crate::model_eval::unseen_test_cases;

/// One ablation row: a configuration label and its outcome metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Configuration label.
    pub label: String,
    /// Primary metric (context-dependent, see the section title).
    pub metrics: Vec<(String, f64)>,
}

/// One ablation section.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationSection {
    /// Section title.
    pub title: String,
    /// Rows.
    pub rows: Vec<AblationRow>,
}

/// The full ablation report.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationReport {
    /// All sections.
    pub sections: Vec<AblationSection>,
}

impl AblationReport {
    /// Finds a section by title prefix.
    pub fn section(&self, prefix: &str) -> Option<&AblationSection> {
        self.sections.iter().find(|s| s.title.starts_with(prefix))
    }
}

impl fmt::Display for AblationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablations")?;
        for section in &self.sections {
            writeln!(f, "\n## {}", section.title)?;
            for row in &section.rows {
                write!(f, "  {:<14}", row.label)?;
                for (name, value) in &row.metrics {
                    write!(f, "  {name}={value:.3}")?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

fn training_settings(effort: Effort) -> TrainSettings {
    TrainSettings {
        nn: effort.train_config(),
        ..TrainSettings::default()
    }
}

/// α sweep: retrain with different label sharpness, evaluate in isolation.
fn alpha_sweep(effort: Effort) -> AblationSection {
    let scenarios = Scenario::standard_set(effort.scenario_count().min(20), 0xC0FFEE);
    let test_cases = unseen_test_cases(5, 0xBEEF);
    let rows = [0.25f64, 1.0, 4.0]
        .into_iter()
        .map(|alpha| {
            let mut settings = training_settings(effort);
            settings.extraction = ExtractionConfig {
                alpha,
                ..ExtractionConfig::default()
            };
            let model = IlTrainer::new(settings).train(&scenarios, 0);
            let result = evaluate_model(&model, &test_cases);
            AblationRow {
                label: format!("alpha={alpha}"),
                metrics: vec![
                    ("within_1c".to_string(), result.within_1c),
                    ("mean_excess_K".to_string(), result.mean_excess),
                    ("infeasible".to_string(), result.infeasible_rate),
                ],
            }
        })
        .collect();
    AblationSection {
        title: "label sharpness α (Eq. 4) — model quality on unseen AoIs".to_string(),
        rows,
    }
}

/// Source exhaustiveness: the paper argues DAgger is unnecessary because
/// one example is created for *every* free source core ("the policy is
/// trained to recover from each potential mapping"). Training only on the
/// optimal source (naive behavioural cloning) should degrade decisions
/// made from suboptimal mappings.
fn source_exhaustiveness(effort: Effort) -> AblationSection {
    let scenarios = Scenario::standard_set(effort.scenario_count().min(20), 0xC0FFEE);
    // Test cases always contain every source, so the evaluation covers
    // recovery from arbitrary (including bad) current mappings.
    let test_cases = unseen_test_cases(5, 0xBEEF);
    let rows = [
        ("every-source", SourcePolicy::EveryFreeCore),
        ("optimal-only", SourcePolicy::OptimalCoreOnly),
    ]
    .into_iter()
    .map(|(label, sources)| {
        let mut settings = training_settings(effort);
        settings.extraction = ExtractionConfig {
            sources,
            ..ExtractionConfig::default()
        };
        let model = IlTrainer::new(settings).train(&scenarios, 0);
        let result = evaluate_model(&model, &test_cases);
        AblationRow {
            label: label.to_string(),
            metrics: vec![
                ("within_1c".to_string(), result.within_1c),
                ("mean_excess_K".to_string(), result.mean_excess),
            ],
        }
    })
    .collect();
    AblationSection {
        title: "source exhaustiveness (why DAgger is unnecessary, §4.2)".to_string(),
        rows,
    }
}

/// Runs one mixed workload under a configured governor and summarizes.
fn governor_run(governor: &mut TopIlGovernor, effort: Effort) -> Vec<(String, f64)> {
    let workload_cfg = MixedWorkloadConfig {
        num_apps: 12,
        mean_interarrival: SimDuration::from_secs(6),
        total_instructions: Some(effort.app_instructions()),
        ..MixedWorkloadConfig::default()
    };
    let workload = WorkloadGenerator::mixed(&workload_cfg, &mut StdRng::seed_from_u64(17));
    let sim = SimConfig {
        max_duration: SimDuration::from_secs(1200),
        ..SimConfig::default()
    };
    let report = Simulator::new(sim).run(&workload, governor);
    vec![
        (
            "avg_temp_C".to_string(),
            report.metrics.avg_temperature().value(),
        ),
        (
            "violations".to_string(),
            report.metrics.qos_violations() as f64,
        ),
        ("migrations".to_string(), report.metrics.migrations() as f64),
    ]
}

/// Regenerates all ablation sections.
pub fn run(effort: Effort) -> AblationReport {
    let scenarios = Scenario::standard_set(effort.scenario_count().min(20), 0xC0FFEE);
    let trainer = IlTrainer::new(training_settings(effort));
    let cases = trainer.collect_cases(&scenarios);
    let model = trainer.train_from_cases(&cases, 0);

    let mut sections = vec![alpha_sweep(effort), source_exhaustiveness(effort)];

    // Migration epoch length.
    sections.push(AblationSection {
        title: "migration epoch length (paper: 500 ms)".to_string(),
        rows: [250u64, 500, 1000]
            .into_iter()
            .map(|ms| {
                let mut governor = TopIlGovernor::new(model.clone())
                    .with_migration_period(SimDuration::from_millis(ms));
                AblationRow {
                    label: format!("{ms} ms"),
                    metrics: governor_run(&mut governor, effort),
                }
            })
            .collect(),
    });

    // DVFS skips around migrations.
    sections.push(AblationSection {
        title: "DVFS iterations skipped after migration (paper: 2)".to_string(),
        rows: [0u8, 2]
            .into_iter()
            .map(|skips| {
                let mut governor = TopIlGovernor::new(model.clone()).with_dvfs_skip(skips);
                AblationRow {
                    label: format!("skip={skips}"),
                    metrics: governor_run(&mut governor, effort),
                }
            })
            .collect(),
    });

    // Migration hysteresis threshold.
    sections.push(AblationSection {
        title: "migration hysteresis threshold".to_string(),
        rows: [0.0f32, 0.1, 0.3]
            .into_iter()
            .map(|threshold| {
                let mut governor = TopIlGovernor::new(model.clone()).with_threshold(threshold);
                AblationRow {
                    label: format!("thr={threshold}"),
                    metrics: governor_run(&mut governor, effort),
                }
            })
            .collect(),
    });

    AblationReport { sections }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_produce_expected_trends() {
        let report = run(Effort::Quick);
        assert_eq!(report.sections.len(), 5);

        // Zero hysteresis migrates at least as much as strong hysteresis.
        let thr = report.section("migration hysteresis").unwrap();
        let migrations = |row: &AblationRow| {
            row.metrics
                .iter()
                .find(|(n, _)| n == "migrations")
                .unwrap()
                .1
        };
        assert!(migrations(&thr.rows[0]) >= migrations(&thr.rows[2]));

        // All α settings still produce usable models.
        let alpha = report.section("label sharpness").unwrap();
        for row in &alpha.rows {
            let within = row
                .metrics
                .iter()
                .find(|(n, _)| n == "within_1c")
                .unwrap()
                .1;
            assert!(within > 0.4, "{}: within_1c {within}", row.label);
        }
    }
}
